"""Differential lane: bitmask traversal kernels ≡ legacy sets.

The ``"bitmask"`` kernel (precomputed integer bit-row adjacency, wave
BFS by word ops, memoized rule descents — see
:mod:`repro.queries.kernels`) must answer every frontier query
*bit-identically* to the original ``"legacy"`` dict/set evaluation.
This lane holds that line on all smoke corpora, unsharded and through
2- and 4-shard containers, across every frontier query kind:
reachability, neighborhoods, paths (BFS distances + shortest path) and
the RPQ product-automaton BFS fallback (which steps on the memoized
labeled descent).

Kernel selection is process-global and read at construction time, so
each handle pair is built under an explicitly pinned default.
"""

import random

import pytest

from repro.api import CompressedGraph
from repro.bench import SMOKE_CORPORA
from repro.queries import set_default_kernel
from repro.queries.kernels import default_kernel
from repro.queries.traversal import bfs_distances, shortest_path
from repro.sharding import ShardedCompressedGraph


def _pinned(kernel, build):
    """Run ``build`` with the process-default kernel pinned."""
    previous = set_default_kernel(kernel)
    try:
        return build()
    finally:
        set_default_kernel(previous)


def _handle_pair(name):
    """(legacy, bitmask) unsharded handles over one grammar."""
    graph, alphabet = SMOKE_CORPORA[name]()
    base = CompressedGraph.compress(graph, alphabet)
    legacy = _pinned("legacy",
                     lambda: CompressedGraph.from_grammar(base.grammar))
    bitmask = _pinned("bitmask",
                      lambda: CompressedGraph.from_grammar(base.grammar))
    return legacy, bitmask


def _sharded_pair(name, shards):
    """(legacy, bitmask) sharded handles over one container."""
    graph, alphabet = SMOKE_CORPORA[name]()
    blob = _pinned("legacy", lambda: ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards, partitioner="bfs",
        validate=False)).to_bytes()
    legacy = _pinned("legacy",
                     lambda: ShardedCompressedGraph.from_bytes(blob))
    bitmask = _pinned("bitmask",
                      lambda: ShardedCompressedGraph.from_bytes(blob))
    return legacy, bitmask


def _probe_pairs(total, count, seed=7):
    rng = random.Random(seed)
    pairs = [(1, total), (total, 1), (1, 1)]
    pairs += [(rng.randint(1, total), rng.randint(1, total))
              for _ in range(count)]
    return pairs


def _probe_nodes(total, count, seed=11):
    rng = random.Random(seed)
    nodes = {1, total}
    nodes.update(rng.randint(1, total) for _ in range(count))
    return sorted(nodes)


def _first_label_name(handle):
    alphabet = handle.alphabet
    for label in alphabet.terminals():
        name = alphabet.name(label)
        if name is not None:
            return name
    return None


def _assert_frontier_queries_agree(legacy, bitmask, pair_count,
                                   node_count):
    total = legacy.node_count()
    assert bitmask.node_count() == total
    for source, target in _probe_pairs(total, pair_count):
        assert legacy.reachable(source, target) == \
            bitmask.reachable(source, target), (source, target)
    for node in _probe_nodes(total, node_count):
        assert legacy.out_neighbors(node) == bitmask.out_neighbors(node)
        assert legacy.in_neighbors(node) == bitmask.in_neighbors(node)
        assert legacy.neighbors(node) == bitmask.neighbors(node)


def _assert_paths_agree(legacy, bitmask, pair_count):
    total = legacy.node_count()
    sources = _probe_nodes(total, 3, seed=5)
    for source in sources:
        assert bfs_distances(legacy, source) == \
            bfs_distances(bitmask, source)
    for source, target in _probe_pairs(total, pair_count, seed=13):
        path_legacy = shortest_path(legacy, source, target)
        path_bitmask = shortest_path(bitmask, source, target)
        # BFS over sorted neighbor lists is deterministic, so the
        # actual paths match, not just their lengths.
        assert path_legacy == path_bitmask, (source, target)


@pytest.mark.parametrize("name", sorted(SMOKE_CORPORA))
def test_unsharded_kernels_agree(name):
    legacy, bitmask = _handle_pair(name)
    _assert_frontier_queries_agree(legacy, bitmask,
                                   pair_count=40, node_count=30)
    _assert_paths_agree(legacy, bitmask, pair_count=8)


@pytest.mark.parametrize("name", sorted(SMOKE_CORPORA))
def test_unsharded_rpq_product_bfs_agrees(name):
    legacy, bitmask = _handle_pair(name)
    label = _first_label_name(legacy)
    if label is None:
        pytest.skip("corpus has no named labels")
    # Pin the BFS fallback on both engines: it steps the product
    # automaton on ``out_edges``, the labeled memoized descent.
    legacy._rpq_engine().force = "bfs"
    bitmask._rpq_engine().force = "bfs"
    pattern = f"<{label}>+"
    total = legacy.node_count()
    for source, target in _probe_pairs(total, 15, seed=3):
        assert legacy.rpq(pattern, source, target) == \
            bitmask.rpq(pattern, source, target), (source, target)


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(SMOKE_CORPORA))
def test_sharded_kernels_agree(name, shards):
    legacy, bitmask = _sharded_pair(name, shards)
    _assert_frontier_queries_agree(legacy, bitmask,
                                   pair_count=12, node_count=8)
    _assert_paths_agree(legacy, bitmask, pair_count=3)
    label = _first_label_name(legacy)
    if label is None:
        return
    # In-shard RPQ engines pinned to the product-BFS fallback; the
    # cross-shard route is whatever the planner picks on both sides.
    for shard in legacy.shards:
        shard._rpq_engine().force = "bfs"
    for shard in bitmask.shards:
        shard._rpq_engine().force = "bfs"
    pattern = f"<{label}>+"
    total = legacy.node_count()
    for source, target in _probe_pairs(total, 5, seed=3):
        assert legacy.rpq(pattern, source, target) == \
            bitmask.rpq(pattern, source, target), (source, target)


def test_default_kernel_roundtrip():
    previous = set_default_kernel("legacy")
    try:
        assert default_kernel() == "legacy"
        set_default_kernel("bitmask")
        assert default_kernel() == "bitmask"
    finally:
        set_default_kernel(previous)
    with pytest.raises(Exception, match="unknown traversal kernel"):
        set_default_kernel("simd")
