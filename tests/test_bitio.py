"""Unit tests for the MSB-first bit stream reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_stream(self):
        writer = BitWriter()
        assert len(writer) == 0
        assert writer.to_bytes() == b""

    def test_single_bit_msb_first(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.to_bytes() == b"\x80"

    def test_mixed_bits_pack_left_to_right(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bits(0b101, 3)
        assert writer.to_bytes() == bytes([0b11010000])
        assert len(writer) == 4

    def test_write_bits_wide_value(self):
        writer = BitWriter()
        writer.write_bits(0xABCD, 16)
        assert writer.to_bytes() == b"\xab\xcd"

    def test_write_bits_rejects_overflow(self):
        writer = BitWriter()
        with pytest.raises(EncodingError):
            writer.write_bits(8, 3)

    def test_write_bits_rejects_negative(self):
        writer = BitWriter()
        with pytest.raises(EncodingError):
            writer.write_bits(-1, 4)
        with pytest.raises(EncodingError):
            writer.write_bits(1, -1)

    def test_to_bytes_does_not_consume(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        first = writer.to_bytes()
        second = writer.to_bytes()
        assert first == second

    def test_extend_concatenates_bit_exact(self):
        left = BitWriter()
        left.write_bits(0b101, 3)
        right = BitWriter()
        right.write_bits(0b11, 2)
        left.extend(right)
        assert len(left) == 5
        assert left.to_bytes() == bytes([0b10111000])

    def test_write_bools(self):
        writer = BitWriter()
        writer.write_bools([True, False, True, True])
        assert writer.to_bytes() == bytes([0b10110000])


class TestBitReader:
    def test_read_back_bits(self):
        writer = BitWriter()
        writer.write_bits(0b110101, 6)
        reader = BitReader(writer.to_bytes(), len(writer))
        assert [reader.read_bit() for _ in range(6)] == [1, 1, 0, 1, 0, 1]

    def test_exhaustion_raises(self):
        reader = BitReader(b"\x80", 1)
        reader.read_bit()
        with pytest.raises(EncodingError):
            reader.read_bit()

    def test_bit_length_bound_checked(self):
        with pytest.raises(EncodingError):
            BitReader(b"\x00", 9)

    def test_read_bits_value(self):
        reader = BitReader(b"\xab\xcd")
        assert reader.read_bits(16) == 0xABCD

    def test_remaining_and_position(self):
        reader = BitReader(b"\xff", 8)
        assert reader.remaining == 8
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.remaining == 5

    def test_align_to_byte(self):
        reader = BitReader(b"\xff\x0f")
        reader.read_bits(3)
        reader.align_to_byte()
        assert reader.position == 8
        assert reader.read_bits(8) == 0x0F

    def test_align_noop_when_aligned(self):
        reader = BitReader(b"\xff\xff")
        reader.read_bits(8)
        reader.align_to_byte()
        assert reader.position == 8


@given(st.lists(st.booleans(), max_size=200))
def test_roundtrip_any_bit_sequence(bits):
    writer = BitWriter()
    writer.write_bools(bits)
    reader = BitReader(writer.to_bytes(), len(writer))
    assert reader.read_bools(len(bits)) == bits


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**32),
                          st.integers(min_value=33, max_value=40)),
                max_size=50))
def test_roundtrip_fixed_width_values(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value, width)
    reader = BitReader(writer.to_bytes(), len(writer))
    for value, width in pairs:
        assert reader.read_bits(width) == value
