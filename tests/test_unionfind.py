"""Unit tests for the disjoint-set forest."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.util.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(range(5))
        assert len(uf) == 5
        assert uf.set_count == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges_and_counts(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1)
        assert uf.set_count == 3
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert not uf.union("a", "b")
        assert uf.set_count == 1

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert 42 in uf

    def test_groups_partition_everything(self):
        uf = UnionFind(range(10))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(5, 6)
        groups = sorted(sorted(g) for g in uf.groups())
        flattened = sorted(x for g in groups for x in g)
        assert flattened == list(range(10))
        assert [0, 1, 2] in groups
        assert [5, 6] in groups
        assert uf.set_count == len(groups)

    def test_transitive_connectivity_chain(self):
        uf = UnionFind()
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.connected(0, 99)
        assert uf.set_count == 1


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                max_size=80),
       st.integers(0, 1000))
def test_matches_naive_partition(unions, seed):
    """Union-find agrees with a brute-force partition refinement."""
    uf = UnionFind(range(31))
    naive = {i: {i} for i in range(31)}
    rng = random.Random(seed)
    for a, b in unions:
        uf.union(a, b)
        if naive[a] is not naive[b]:
            merged = naive[a] | naive[b]
            for member in merged:
                naive[member] = merged
    for _ in range(50):
        a, b = rng.randrange(31), rng.randrange(31)
        assert uf.connected(a, b) == (naive[a] is naive[b])
    assert uf.set_count == len({id(s) for s in naive.values()})
