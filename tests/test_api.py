"""Tests for the :class:`repro.api.CompressedGraph` facade.

Covers the acceptance criteria of the API redesign:

* round-trip ``compress -> save -> open -> query -> decompress``
  across every smoke-corpus family,
* facade query answers match the legacy ``GrammarQueries`` path (and
  the ground truth on the decompressed graph) exactly,
* the lazy index canonicalizes the grammar exactly once per handle,
  even under concurrent query threads,
* streaming construction, batching, persistence accounting and the
  compatibility shims.
"""

import threading
import time

import pytest

from helpers import copies_graph, random_simple_graph, star_graph, \
    theta_graph

from repro import (
    CompressedGraph,
    CompressionResult,
    GRePairSettings,
    compress,
    derive,
)
from repro.bench.corpora import SMOKE_CORPORA
from repro.core.grammar import SLHRGrammar
from repro.exceptions import GrammarError, QueryError
from repro.queries import GrammarQueries

#: Small families for the exhaustive (all-node) equivalence checks.
_SMALL_BUILDERS = {
    "theta": theta_graph,
    "copies": lambda: copies_graph(24),
    "star": lambda: star_graph(60),
    "random": lambda: random_simple_graph(5),
}


def _adjacency(graph):
    out, inc = {}, {}
    for _, edge in graph.edges():
        source, target = edge.att
        out.setdefault(source, set()).add(target)
        inc.setdefault(target, set()).add(source)
    return out, inc


class TestRoundTrip:
    """compress -> save -> open -> query -> decompress, per family."""

    @pytest.mark.parametrize("name", list(SMOKE_CORPORA))
    def test_smoke_corpus_family(self, name, tmp_path):
        graph, alphabet = SMOKE_CORPORA[name]()
        handle = CompressedGraph.compress(graph, alphabet,
                                          validate=False)
        path = tmp_path / f"{name}.grpr"
        handle.save(path, include_names=False)
        reopened = CompressedGraph.open(path)

        # Counts survive the round trip and match the input graph.
        assert reopened.node_count() == handle.node_count()
        assert reopened.edge_count() == handle.edge_count()
        assert reopened.edge_count() == graph.num_edges

        # Query answers agree between the fresh and the opened handle.
        total = reopened.node_count()
        sample = range(1, min(total, 12) + 1)
        for node in sample:
            assert reopened.out(node) == handle.out(node)
            assert reopened.in_(node) == handle.in_(node)
        assert reopened.components() == handle.components()
        assert reopened.reach(1, total) == handle.reach(1, total)

        # Decompression from both sides yields the identical graph
        # (deterministic canonical numbering).
        derived = handle.decompress()
        rederived = reopened.decompress()
        assert derived.node_size == rederived.node_size
        assert sorted((e.label, e.att) for _, e in derived.edges()) == \
            sorted((e.label, e.att) for _, e in rederived.edges())

        # One canonicalization per handle despite the full query mix.
        assert handle.canonicalizations == 1
        assert reopened.canonicalizations == 1

    def test_bytes_round_trip(self):
        graph, alphabet = copies_graph(16)
        handle = CompressedGraph.compress(graph, alphabet)
        blob = handle.to_bytes()
        reopened = CompressedGraph.from_bytes(blob)
        assert reopened.to_bytes() == blob
        assert reopened.node_count() == handle.node_count()


class TestQueryEquivalence:
    """Facade answers == legacy GrammarQueries == decompressed truth."""

    @pytest.mark.parametrize("family", list(_SMALL_BUILDERS))
    def test_all_nodes_all_queries(self, family):
        graph, alphabet = _SMALL_BUILDERS[family]()
        handle = CompressedGraph.compress(graph, alphabet)
        legacy = GrammarQueries(handle.grammar)
        truth_out, truth_in = _adjacency(handle.decompress())

        total = handle.node_count()
        assert legacy.node_count() == total
        for node in range(1, total + 1):
            expected_out = sorted(truth_out.get(node, ()))
            expected_in = sorted(truth_in.get(node, ()))
            assert handle.out(node) == expected_out
            assert handle.out(node) == legacy.out_neighbors(node)
            assert handle.in_(node) == expected_in
            assert handle.in_(node) == legacy.in_neighbors(node)
            assert handle.neighborhood(node) == legacy.neighbors(node)
        assert handle.components() == legacy.connected_components()
        assert handle.edge_count() == legacy.edge_count()
        extrema = handle.degree()
        legacy_degrees = legacy.degrees()
        assert extrema["max_out"] == legacy_degrees.max_out_degree()
        assert extrema["min_in"] == legacy_degrees.min_in_degree()
        for source in range(1, min(total, 6) + 1):
            for target in range(1, min(total, 6) + 1):
                assert handle.reach(source, target) == \
                    legacy.reachable(source, target)

    def test_path_consistent_with_reach(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        path = handle.path(1, 2)
        assert path is not None and path[0] == 1 and path[-1] == 2
        # Every hop of the path is a real edge.
        for hop_from, hop_to in zip(path, path[1:]):
            assert hop_to in handle.out(hop_from)
        assert handle.path(2, 1) is None
        assert not handle.reach(2, 1)


class TestLazyIndexConcurrency:
    """The acceptance gate: one canonicalization, even under threads."""

    def test_index_builds_exactly_once_under_threads(self):
        graph, alphabet = copies_graph(24)
        handle = CompressedGraph.compress(graph, alphabet)
        assert not handle.index_built
        assert handle.canonicalizations == 0

        calls = []
        original = SLHRGrammar.canonicalize

        def slow_counting(grammar):
            calls.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return original(grammar)

        SLHRGrammar.canonicalize = slow_counting
        barrier = threading.Barrier(8)
        results = []
        errors = []

        def worker():
            try:
                barrier.wait()
                results.append((
                    handle.node_count(),
                    tuple(handle.out(1)),
                    handle.reach(1, 2),
                    handle.components(),
                ))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [threading.Thread(target=worker)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            SLHRGrammar.canonicalize = original

        assert not errors
        assert len(calls) == 1, "index must build exactly once"
        assert handle.canonicalizations == 1
        assert len(set(results)) == 1, "all threads see one index"

    def test_repeated_queries_never_rebuild(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        for _ in range(3):
            handle.node_count()
            handle.out(1)
            handle.reach(1, 2)
            handle.components()
            handle.degree()
            handle.edge_count()
        assert handle.canonicalizations == 1


class TestBatch:
    def test_mixed_batch_matches_single_queries(self):
        graph, alphabet = copies_graph(16)
        handle = CompressedGraph.compress(graph, alphabet)
        requests = [
            ("reach", 1, 2),
            ("out", 1),
            ("in", 2),
            ("neighborhood", 3),
            ("degree", 1),
            ("degree",),
            ("components",),
            ("nodes",),
            ("edges",),
            ("path", 1, 2),
        ]
        answers = handle.batch(requests)
        assert answers[0] == handle.reach(1, 2)
        assert answers[1] == handle.out(1)
        assert answers[2] == handle.in_(2)
        assert answers[3] == handle.neighborhood(3)
        assert answers[4] == handle.degree(1)
        assert answers[5] == handle.degree()
        assert answers[6] == handle.components()
        assert answers[7] == handle.node_count()
        assert answers[8] == handle.edge_count()
        assert answers[9] == handle.path(1, 2)
        assert handle.canonicalizations == 1

    def test_unknown_kind_rejected(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError):
            handle.batch([("frobnicate", 1)])
        with pytest.raises(QueryError):
            handle.batch([()])

    def test_wrong_arity_raises_query_error(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError):
            handle.batch([("reach", 1)])  # needs two IDs
        with pytest.raises(QueryError):
            handle.batch([("out", 1, 2)])  # needs one ID


class TestStreaming:
    def test_from_stream_matches_batch_compression_counts(self):
        graph, alphabet = copies_graph(32)
        edges = [(edge.label, edge.att) for _, edge in graph.edges()]
        chunks = [edges[i:i + 40] for i in range(0, len(edges), 40)]
        streamed = CompressedGraph.from_stream(
            chunks, alphabet, GRePairSettings(order="natural"))
        assert streamed.edge_count() == graph.num_edges
        assert streamed.node_count() == graph.node_size
        assert streamed.stats["recount_passes"] == 0

    def test_from_stream_rejects_recount_engine(self):
        _, alphabet = theta_graph()
        with pytest.raises(GrammarError):
            CompressedGraph.from_stream(
                [], alphabet, GRePairSettings(engine="recount"))


class TestPersistence:
    def test_sizes_reports_sections_for_fresh_and_opened(self):
        graph, alphabet = copies_graph(16)
        handle = CompressedGraph.compress(graph, alphabet)
        fresh = handle.sizes
        assert set(fresh) == {"header", "alphabet", "start", "rules"}
        reopened = CompressedGraph.from_bytes(handle.to_bytes())
        assert reopened.sizes == fresh
        assert reopened.total_bytes == handle.total_bytes

    def test_decompress_does_not_build_query_index(self):
        graph, alphabet = copies_graph(8)
        handle = CompressedGraph.compress(graph, alphabet)
        handle.decompress()
        # Derivation needs only the canonical grammar, not the index.
        assert not handle.index_built
        assert handle.canonicalizations == 1
        # A later query reuses the cached canonical grammar.
        handle.node_count()
        assert handle.index_built
        assert handle.canonicalizations == 1

    def test_opened_handle_reencodes_on_parameter_mismatch(self):
        graph, alphabet = copies_graph(8)
        fresh = CompressedGraph.compress(graph, alphabet)
        k4_blob = fresh.to_bytes(k=4)
        opened = CompressedGraph.from_bytes(k4_blob)
        # Matching parameters reuse the loaded bytes verbatim...
        assert opened.to_bytes(k=4) == k4_blob
        # ...a different k re-encodes instead of returning stale bytes.
        k2_blob = opened.to_bytes(k=2)
        assert k2_blob != k4_blob
        assert CompressedGraph.from_bytes(k2_blob).node_count() == \
            opened.node_count()

    def test_bits_per_edge(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        expected = 8.0 * handle.total_bytes / graph.num_edges
        assert handle.bits_per_edge(graph.num_edges) == \
            pytest.approx(expected)
        assert handle.bits_per_edge() == \
            pytest.approx(8.0 * handle.total_bytes / handle.edge_count())

    def test_save_returns_container(self, tmp_path):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        container = handle.save(tmp_path / "g.grpr")
        assert (tmp_path / "g.grpr").read_bytes() == container.data
        assert container.bits_per_edge(graph.num_edges) > 0

    def test_stats_for_each_construction_path(self, tmp_path):
        graph, alphabet = theta_graph()
        compressed = CompressedGraph.compress(graph, alphabet)
        assert compressed.stats["passes"] >= 1
        assert compressed.result is not None

        compressed.save(tmp_path / "g.grpr")
        opened = CompressedGraph.open(tmp_path / "g.grpr")
        assert opened.stats == {}
        assert opened.result is None
        assert "rules" in opened.summary()


class TestShims:
    """The legacy entry points delegate to the facade and still work."""

    def test_compress_returns_compression_result(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        assert isinstance(result, CompressionResult)
        assert result.original_edges == graph.num_edges
        assert result.stats["passes"] >= 1

    def test_grammar_queries_matches_facade(self):
        graph, alphabet = copies_graph(8)
        handle = CompressedGraph.compress(graph, alphabet)
        legacy = GrammarQueries(handle.grammar)
        # Legacy construction is eager: canonical grammar + index.
        assert legacy.grammar is not handle.grammar
        assert legacy.index.total_nodes == handle.node_count()
        assert legacy.out_neighbors(1) == handle.out(1)

    def test_decompress_matches_derive_of_canonical(self):
        graph, alphabet = copies_graph(8)
        handle = CompressedGraph.compress(graph, alphabet)
        via_facade = handle.decompress()
        via_derive = derive(handle.grammar.canonicalize())
        assert sorted((e.label, e.att)
                      for _, e in via_facade.edges()) == \
            sorted((e.label, e.att) for _, e in via_derive.edges())


class TestSettingsValidation:
    """GRePairSettings fails at construction, not deep in the run."""

    def test_bad_max_rank(self):
        with pytest.raises(GrammarError):
            GRePairSettings(max_rank=1)

    def test_bad_engine(self):
        with pytest.raises(GrammarError):
            GRePairSettings(engine="bogus")

    def test_bad_order(self):
        from repro.exceptions import HypergraphError
        with pytest.raises(HypergraphError):
            GRePairSettings(order="bogus")

    def test_valid_settings_untouched(self):
        settings = GRePairSettings(max_rank=3, order="bfs",
                                   engine="recount")
        assert settings.max_rank == 3

    def test_degree_direction_validated(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError):
            handle.degree(1, "sideways")
