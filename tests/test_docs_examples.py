"""Doc-sync gate: every fenced python block in the docs must run.

Delegates to ``scripts/check_docs_examples.py`` (the CI entry point)
and also unit-tests its block extraction, so a silently-matching-
nothing regex cannot fake a green check.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "scripts"))

import check_docs_examples  # noqa: E402


class TestBlockExtraction:
    def test_finds_python_blocks(self):
        text = ("prose\n```python\nx = 1\n```\nmore\n"
                "```bash\necho hi\n```\n"
                "```python\ny = x + 1\n```\n")
        blocks = check_docs_examples.python_blocks(text)
        assert blocks == ["x = 1", "y = x + 1"]

    def test_ignores_unterminated_fence(self):
        assert check_docs_examples.python_blocks(
            "```python\nx = 1\n") == []

    def test_docs_actually_contain_blocks(self):
        """The regex must match the real docs, not just the fixture."""
        documents = check_docs_examples.default_documents()
        assert len(documents) >= 4  # index, api, architecture, queries
        total = sum(len(check_docs_examples.python_blocks(
            path.read_text(encoding="utf-8"))) for path in documents)
        assert total >= 10


class TestExecution:
    def test_failing_block_reported(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("```python\nraise ValueError('boom')\n```\n")
        count, failures = check_docs_examples.run_document(bad)
        assert count == 1
        assert len(failures) == 1
        assert "boom" in failures[0]

    def test_blocks_share_a_namespace(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\nvalue = 41\n```\n"
                       "```python\nassert value + 1 == 42\n```\n")
        count, failures = check_docs_examples.run_document(doc)
        assert count == 2 and not failures

    def test_missing_document_fails(self, capsys):
        assert check_docs_examples.main(["/nonexistent/doc.md"]) == 1


def test_all_docs_execute_cleanly(capsys):
    """The acceptance gate: the real docs, end to end."""
    assert check_docs_examples.main() == 0
    out = capsys.readouterr().out
    assert "executed cleanly" in out
