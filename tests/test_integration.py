"""End-to-end integration tests over registry datasets.

Each test exercises the complete production pipeline the paper's
system would run: generate -> compress -> serialize -> deserialize ->
query, with cross-validation at every stage.
"""

import random

import networkx as nx
import pytest

from helpers import isomorphic

from repro import GRePairSettings, compress, derive
from repro.baselines import K2Compressor
from repro.datasets import identical_copies, fig13_base_graph, \
    load_dataset
from repro.encoding import decode_grammar, encode_grammar
from repro.queries import GrammarQueries


@pytest.mark.parametrize("name", ["ca-grqc", "rdf-types-ru",
                                  "rdf-identica", "tic-tac-toe"])
def test_full_pipeline_on_datasets(name):
    graph, alphabet = load_dataset(name)
    result = compress(graph, alphabet, validate=True)

    # 1. Lossless compression.
    derived = derive(result.grammar)
    assert derived.node_size == graph.node_size
    assert derived.num_edges == graph.num_edges

    # 2. Exact binary round-trip.
    blob = encode_grammar(result.grammar, include_names=False)
    decoded = decode_grammar(blob)
    canonical_val = derive(result.grammar.canonicalize())
    decoded_val = derive(decoded)
    assert canonical_val.edge_multiset() == decoded_val.edge_multiset()

    # 3. Queries on the decoded grammar agree with the derived graph.
    queries = GrammarQueries(decoded)
    truth = nx.DiGraph()
    truth.add_nodes_from(decoded_val.nodes())
    for _, edge in decoded_val.edges():
        truth.add_edge(*edge.att)
    rng = random.Random(42)
    nodes = sorted(truth.nodes())
    for _ in range(25):
        node = rng.choice(nodes)
        assert queries.out_neighbors(node) == sorted(
            truth.successors(node))
    for _ in range(25):
        source, target = rng.choice(nodes), rng.choice(nodes)
        assert queries.reachable(source, target) == nx.has_path(
            truth, source, target)


def test_rdf_types_beats_k2_by_an_order_of_magnitude():
    """The paper's headline RDF result (Table V)."""
    graph, alphabet = load_dataset("rdf-types-ru")
    result = compress(graph, alphabet, validate=False)
    ours = encode_grammar(result.grammar,
                          include_names=False).total_bytes
    baseline = len(K2Compressor().compress(graph))
    assert ours * 5 < baseline


def test_version_graph_beats_k2():
    """The paper's Table VI shape."""
    graph, alphabet = load_dataset("tic-tac-toe")
    result = compress(graph, alphabet, validate=False)
    ours = encode_grammar(result.grammar,
                          include_names=False).total_bytes
    baseline = len(K2Compressor().compress(graph))
    assert ours * 4 < baseline


def test_identical_copies_compress_superlinearly():
    """Fig. 13: doubling the copies must not double the output."""
    sizes = []
    for count in (64, 256):
        graph, alphabet = identical_copies(fig13_base_graph(), count)
        result = compress(graph, alphabet, validate=False)
        sizes.append(encode_grammar(result.grammar,
                                    include_names=False).total_bytes)
    assert sizes[1] < 2.5 * sizes[0]  # far below linear growth (4x)


def test_isomorphism_on_copies():
    graph, alphabet = identical_copies(fig13_base_graph(), 48)
    result = compress(graph, alphabet)
    assert isomorphic(derive(result.grammar), graph)


def test_settings_sweep_on_one_dataset():
    """Every settings combination round-trips on a real dataset."""
    graph, alphabet = load_dataset("tic-tac-toe")
    for max_rank in (2, 4):
        for order in ("fp", "bfs"):
            result = compress(
                graph, alphabet,
                GRePairSettings(max_rank=max_rank, order=order),
                validate=True)
            derived = derive(result.grammar)
            assert derived.num_edges == graph.num_edges
            assert derived.node_size == graph.node_size
