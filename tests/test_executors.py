"""Executor conformance: four strategies, one set of answers.

The acceptance bar for the serving redesign: every executor —
Inline (sequential), Thread (planned fan-out), Process (forked
workers), Socket (a served endpoint behind the wire codec) — must
answer the full §V query family **bit-identically** on both handle
types.  The differential suite runs Process and Socket against Inline
on *every* smoke corpus for the unsharded handle, and on a corpus
sample at 2 and 4 shards for the sharded one; a fast ``smoke``-marked
lane covers one corpus per axis for tier-1 speed.

Also covered: ``fork_map`` (the primitive behind process-parallel
shard builds), process-parallel ``ShardedCompressedGraph.compress``,
error-channel conformance across process/socket boundaries, and
executor construction by name.
"""

from __future__ import annotations

import random

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import QueryError
from repro.serving import (
    GraphServer,
    InlineExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
    fork_map,
    make_executor,
)

CORPORA = list(SMOKE_CORPORA)
SHARDED_CORPORA = ["er-random", "communication", "rdf-types"]


def serving_workload(total_nodes, count=70, seed=13, labels=()):
    """A mixed request stream covering the full §V family.

    ``labels`` (terminal label names) turns on the RPQ extension
    kinds — ``rpq``, ``pattern_count``, ``out_edges`` — so the
    conformance lanes exercise the full served surface.
    """
    rng = random.Random(seed)
    requests = [("degree",), ("components",), ("nodes",), ("edges",)]
    for _ in range(count):
        kind = rng.choice(["out", "in", "neighborhood", "reach",
                           "degree", "path"])
        if kind in ("reach", "path"):
            requests.append((kind, rng.randint(1, min(total_nodes, 25)),
                             rng.randint(1, total_nodes)))
        else:
            requests.append((kind,
                             rng.randint(1, min(total_nodes, 50))))
    labels = list(labels)
    if labels:
        patterns = [labels[0], f"{labels[0]}+",
                    f"(<{labels[0]}>|<{labels[-1]}>) .*"]
        for index in range(max(count // 6, 3)):
            requests.append(("rpq", patterns[index % len(patterns)],
                             rng.randint(1, min(total_nodes, 25)),
                             rng.randint(1, total_nodes)))
        requests.extend([
            ("pattern_count", "label", labels[0]),
            ("pattern_count", "digram", labels[0], labels[-1]),
            ("pattern_count", "star", labels[0], 2),
            ("pattern_count", "node_out", labels[-1],
             rng.randint(1, total_nodes)),
            ("out_edges", rng.randint(1, total_nodes)),
            ("out_edges", rng.randint(1, total_nodes)),
        ])
    return requests


def label_names(handle):
    """Terminal label names of a handle, report order."""
    alphabet = handle.alphabet
    return [alphabet.name(label) for label in alphabet.terminals()]


def assert_identical(reference, candidate):
    """Value *and* type equality, element by element (bit-identical)."""
    assert len(reference) == len(candidate)
    for expected, actual in zip(reference, candidate):
        assert actual == expected
        assert type(actual) is type(expected)


# ----------------------------------------------------------------------
# Shared, lazily built handles and servers (compression dominates the
# suite's cost; every executor axis reuses one build per corpus)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def unsharded(request):
    handles = {}

    def build(corpus):
        if corpus not in handles:
            graph, alphabet = SMOKE_CORPORA[corpus]()
            handles[corpus] = CompressedGraph.compress(
                graph, alphabet, validate=False)
        return handles[corpus]

    return build


@pytest.fixture(scope="module")
def sharded(request):
    handles = {}

    def build(corpus, shards):
        key = (corpus, shards)
        if key not in handles:
            graph, alphabet = SMOKE_CORPORA[corpus]()
            handles[key] = ShardedCompressedGraph.compress(
                graph, alphabet, shards=shards, validate=False)
        return handles[key]

    return build


@pytest.fixture(scope="module")
def served(request, unsharded, sharded):
    """Socket servers over the same grammars, one per handle key."""
    servers = {}

    def start(corpus, shards=None):
        key = (corpus, shards)
        if key not in servers:
            handle = (unsharded(corpus) if shards is None
                      else sharded(corpus, shards))
            server = GraphServer(handle.to_bytes()).start()
            servers[key] = server
        return servers[key]

    yield start
    for server in servers.values():
        server.close()


def run_through(executor, handle, requests):
    try:
        results = handle.execute(requests, executor=executor)
    finally:
        executor.close()
    errors = [result for result in results if not result.ok]
    assert not errors, f"unexpected errors: {errors[:3]}"
    return [result.value for result in results]


# ----------------------------------------------------------------------
# The differential: Process and Socket vs Inline, every smoke corpus
# ----------------------------------------------------------------------
class TestUnshardedConformance:
    @pytest.mark.parametrize("corpus", CORPORA)
    def test_every_corpus_every_executor(self, corpus, unsharded,
                                         served):
        handle = unsharded(corpus)
        requests = serving_workload(handle.node_count(),
                                    labels=label_names(handle))
        reference = run_through(InlineExecutor(), handle, requests)
        assert_identical(reference, run_through(
            ThreadExecutor(max_workers=4), handle, requests))
        assert_identical(reference, run_through(
            ProcessExecutor(max_workers=2), handle, requests))
        server = served(corpus)
        assert_identical(reference, run_through(
            SocketExecutor(server.endpoint), handle, requests))

    @pytest.mark.smoke
    def test_smoke_lane(self, unsharded, served):
        handle = unsharded("er-random")
        requests = serving_workload(handle.node_count(), count=30,
                                    labels=label_names(handle))
        reference = run_through(InlineExecutor(), handle, requests)
        server = served("er-random")
        for executor in (ThreadExecutor(), ProcessExecutor(),
                         SocketExecutor(server.endpoint)):
            assert_identical(reference,
                             run_through(executor, handle, requests))


class TestShardedConformance:
    @pytest.mark.parametrize("corpus,shards",
                             [(corpus, 2) for corpus in SHARDED_CORPORA]
                             + [("communication", 4)])
    def test_executors_agree(self, corpus, shards, sharded, served):
        handle = sharded(corpus, shards)
        requests = serving_workload(handle.node_count(),
                                    labels=label_names(handle))
        reference = run_through(InlineExecutor(), handle, requests)
        assert_identical(reference, run_through(
            ThreadExecutor(max_workers=4), handle, requests))
        assert_identical(reference, run_through(
            ProcessExecutor(max_workers=2), handle, requests))
        server = served(corpus, shards)
        assert_identical(reference, run_through(
            SocketExecutor(server.endpoint), handle, requests))

    def test_served_router_equals_in_process_router(self, sharded,
                                                    served):
        """A second client-facing path: `GraphClient.batch` against
        the router (which plans + multiplexes to shard processes)
        must equal the in-process sharded handle verbatim."""
        handle = sharded("er-random", 2)
        requests = serving_workload(handle.node_count(), count=40,
                                    labels=label_names(handle))
        truth = handle.batch(requests)
        server = served("er-random", 2)
        with server.connect() as client:
            assert_identical(truth, client.batch(requests))

    @pytest.mark.parametrize("corpus,shards,codec", [
        (corpus, 2, "json") for corpus in SHARDED_CORPORA
    ] + [("communication", 4, "json"),
         ("er-random", 2, "binary"),
         ("communication", 4, "binary")])
    @pytest.mark.timeout(120)
    def test_replicated_socket_with_one_dead_replica(self, corpus,
                                                     shards, codec,
                                                     sharded):
        """The fifth conformance axis: a *replicated* served endpoint
        with one replica of every shard killed mid-session must stay
        bit-identical to the inline reference — Inline ≡ Thread ≡
        Process ≡ Socket already holds above, so Inline is the only
        oracle needed here."""
        handle = sharded(corpus, shards)
        requests = serving_workload(handle.node_count(),
                                    labels=label_names(handle))
        reference = run_through(InlineExecutor(), handle, requests)
        server = GraphServer(handle.to_bytes(), codec=codec,
                             replicas=2, cache_size=0).start()
        try:
            assert_identical(reference, run_through(
                SocketExecutor(server.endpoint, codec=codec),
                handle, requests))
            for shard in range(server.num_shards):
                server.kill_replica(shard, 0)
            assert_identical(reference, run_through(
                SocketExecutor(server.endpoint, codec=codec),
                handle, requests))
        finally:
            server.close()

    @pytest.mark.smoke
    def test_pipelined_client_equals_in_process_router(self, sharded,
                                                       served):
        """Conformance must survive pipelining: a multiplexing client
        with many concurrent in-flight batches gets answers
        bit-identical to the in-process sharded handle — reply order
        is free, answer content is not."""
        handle = sharded("er-random", 2)
        requests = serving_workload(handle.node_count(), count=40,
                                    labels=label_names(handle))
        truth = handle.batch(requests)
        server = served("er-random", 2)
        with server.connect(pipeline=True, pool_size=2) as client:
            futures = [client.execute_async(requests)
                       for _ in range(8)]
            for future in futures:
                got = [result.unwrap() for result in future.result(60)]
                assert_identical(truth, got)


# ----------------------------------------------------------------------
# Error-channel conformance across process/socket boundaries
# ----------------------------------------------------------------------
class TestRemoteErrorChannel:
    def test_process_executor_preserves_errors(self, unsharded):
        handle = unsharded("er-random")
        total = handle.node_count()
        requests = [("out", 1), ("out", total + 9), ("nodes",)]
        inline = handle.execute(requests)
        forked = handle.execute(requests,
                                executor=ProcessExecutor(max_workers=2))
        assert [r.ok for r in forked] == [r.ok for r in inline]
        assert forked[1].error == inline[1].error
        assert forked[0].value == inline[0].value

    def test_socket_executor_preserves_errors(self, unsharded, served):
        handle = unsharded("er-random")
        server = served("er-random")
        total = handle.node_count()
        executor = SocketExecutor(server.endpoint)
        try:
            results = handle.execute(
                [("out", total + 9), ("bogus",), ("nodes",)],
                executor=executor)
        finally:
            executor.close()
        assert "out of range" in results[0].error
        assert "unknown batch query" in results[1].error
        assert results[2].value == total

    def test_batch_adapter_raises_through_any_executor(self, unsharded):
        handle = unsharded("er-random")
        with pytest.raises(QueryError, match="unknown batch query"):
            handle.batch([("bogus",)],
                         executor=ProcessExecutor(max_workers=2))


# ----------------------------------------------------------------------
# fork_map and process-parallel shard builds
# ----------------------------------------------------------------------
class TestForkMap:
    def test_results_in_order(self):
        assert fork_map([lambda i=i: i * i for i in range(10)],
                        max_workers=3) == [i * i for i in range(10)]

    def test_failure_propagates_with_its_original_type(self):
        def boom():
            raise ValueError("broken task")

        with pytest.raises(ValueError, match="broken task"):
            fork_map([lambda: 1, boom, lambda: 3], max_workers=2)

    def test_library_errors_survive_the_fork(self):
        """`parallel=\"process\"` builds must keep the error contract
        of the thread path: a GrammarError stays a GrammarError (the
        CLI's ReproError -> exit-2 handling depends on it)."""
        from repro.exceptions import GrammarError

        def fail_like_a_build():
            raise GrammarError("shard went sideways")

        with pytest.raises(GrammarError, match="went sideways"):
            fork_map([fail_like_a_build, lambda: 2], max_workers=2)

    def test_single_task_runs_inline(self):
        assert fork_map([lambda: 41]) == [41]


class TestProcessParallelBuild:
    @pytest.mark.parametrize("partitioner", ["hash", "connectivity"])
    def test_identical_to_sequential(self, partitioner):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        sequential = ShardedCompressedGraph.compress(
            graph, alphabet, shards=3, partitioner=partitioner,
            validate=False)
        forked = ShardedCompressedGraph.compress(
            graph, alphabet, shards=3, partitioner=partitioner,
            parallel="process", validate=False)
        assert forked.to_bytes() == sequential.to_bytes()
        requests = serving_workload(sequential.node_count(), count=30)
        assert forked.batch(requests) == sequential.batch(requests)

    def test_build_stats_survive_the_fork(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        forked = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, parallel="process",
            validate=False)
        per_shard = forked.stats["per_shard"]
        assert len(per_shard) == 2
        assert all(shard_stats for shard_stats in per_shard)

    def test_unknown_mode_rejected(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        with pytest.raises(Exception, match="parallel mode"):
            ShardedCompressedGraph.compress(graph, alphabet, shards=2,
                                            parallel="quantum")


# ----------------------------------------------------------------------
# Construction by name
# ----------------------------------------------------------------------
class TestMakeExecutor:
    def test_by_name(self):
        assert isinstance(make_executor("inline"), InlineExecutor)
        assert isinstance(make_executor("thread", max_workers=2),
                          ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        assert isinstance(make_executor("socket",
                                        address="127.0.0.1:1"),
                          SocketExecutor)

    def test_unknown_rejected(self):
        with pytest.raises(QueryError, match="unknown executor"):
            make_executor("carrier-pigeon")
