"""The per-handle query-result LRU: counters, eviction, equivalence.

Covers the satellite contract: hit/miss counters, eviction at
capacity, and — the property that actually matters for serving —
cached answers identical to uncached ones under a randomized mixed
workload, on both handle types.
"""

from __future__ import annotations

import random

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.queries.cache import QueryCache

from helpers import random_simple_graph, theta_graph


# ----------------------------------------------------------------------
# The LRU itself
# ----------------------------------------------------------------------
class TestQueryCacheUnit:
    def test_miss_then_hit(self):
        cache = QueryCache(capacity=4)
        hit, _ = cache.lookup(("out", 1))
        assert not hit
        cache.store(("out", 1), [2, 3])
        hit, value = cache.lookup(("out", 1))
        assert hit and value == [2, 3]
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = QueryCache(capacity=2)
        cache.store(("out", 1), [1])
        cache.store(("out", 2), [2])
        cache.store(("out", 3), [3])
        assert len(cache) == 2
        assert cache.evictions == 1
        hit, _ = cache.lookup(("out", 1))  # oldest entry evicted
        assert not hit
        hit, _ = cache.lookup(("out", 3))
        assert hit

    def test_lru_order_refreshes_on_hit(self):
        cache = QueryCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")          # "a" becomes most recent
        cache.store("c", 3)        # evicts "b"
        assert cache.peek("a")[0]
        assert not cache.peek("b")[0]
        assert cache.peek("c")[0]

    def test_zero_capacity_disables(self):
        cache = QueryCache(capacity=0)
        cache.store("a", 1)
        assert len(cache) == 0
        hit, _ = cache.lookup("a")
        assert not hit
        assert cache.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=-1)

    def test_cached_none_is_a_hit(self):
        """path() legitimately answers None; it must still cache."""
        cache = QueryCache(capacity=4)
        cache.store(("path", 1, 9), None)
        hit, value = cache.lookup(("path", 1, 9))
        assert hit and value is None

    def test_copy_out_shields_lists(self):
        cache = QueryCache(capacity=4)
        cache.store("k", [1, 2])
        _, first = cache.lookup("k")
        first.append(99)
        _, second = cache.lookup("k")
        assert second == [1, 2]

    def test_get_or_compute_counts_once(self):
        cache = QueryCache(capacity=4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 7)
        assert value == 7
        value = cache.get_or_compute("k", lambda: calls.append(1) or 8)
        assert value == 7
        assert calls == [1]

    def test_info_and_hit_rate(self):
        cache = QueryCache(capacity=8)
        assert cache.hit_rate is None
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5
        assert info["capacity"] == 8 and info["size"] == 1

    def test_clear_keeps_counters(self):
        cache = QueryCache(capacity=4)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


# ----------------------------------------------------------------------
# Cache wiring on the handles
# ----------------------------------------------------------------------
class TestHandleCacheCounters:
    def test_repeat_query_hits(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        assert handle.cache_hits == 0 and handle.cache_misses == 0
        first = handle.out(1)
        assert handle.cache_misses == 1
        second = handle.out(1)
        assert handle.cache_hits == 1
        assert first == second

    def test_batch_and_single_share_entries(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        handle.batch([("reach", 1, 2)])
        assert handle.cache_misses == 1
        assert handle.reach(1, 2) is True
        assert handle.cache_hits == 1

    def test_cache_size_zero_disables(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet,
                                          cache_size=0)
        handle.out(1)
        handle.out(1)
        assert handle.cache_hits == 0
        assert handle.cache_misses == 2

    def test_sharded_handle_counts_too(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = ShardedCompressedGraph.compress(graph, alphabet,
                                                 shards=2,
                                                 validate=False)
        handle.out(1)
        handle.out(1)
        assert handle.cache_hits == 1
        info = handle.cache_info
        assert info["hits"] == 1 and info["misses"] == 1

    def test_eviction_under_small_capacity(self):
        graph, alphabet = random_simple_graph(seed=5)
        handle = CompressedGraph.compress(graph, alphabet,
                                          cache_size=4)
        for node in range(1, 11):
            handle.out(node)
        assert handle.cache_info["size"] == 4
        assert handle.cache_info["evictions"] == 6

    def test_mutating_an_answer_does_not_poison(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        answer = handle.out(1)
        answer.clear()
        assert handle.out(1) != []


# ----------------------------------------------------------------------
# The equivalence property: cached == uncached, randomized mix
# ----------------------------------------------------------------------
def _mixed_requests(total, count, seed):
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        kind = rng.choice(["out", "in", "neighborhood", "reach",
                           "degree", "path", "components", "nodes",
                           "edges"])
        if kind in ("reach", "path"):
            # Skewed towards a hot set so the cache actually hits.
            requests.append((kind, rng.randint(1, min(total, 20)),
                             rng.randint(1, total)))
        elif kind in ("out", "in", "neighborhood", "degree"):
            requests.append((kind, rng.randint(1, min(total, 30))))
        else:
            requests.append((kind,))
    return requests


class TestCachedUncachedEquivalence:
    @pytest.mark.parametrize("corpus", ["er-random", "version-copies"])
    def test_unsharded(self, corpus):
        graph, alphabet = SMOKE_CORPORA[corpus]()
        cached = CompressedGraph.compress(graph, alphabet,
                                          cache_size=64,
                                          validate=False)
        uncached = CompressedGraph.compress(graph, alphabet,
                                            cache_size=0,
                                            validate=False)
        requests = _mixed_requests(cached.node_count(), 400, seed=29)
        assert cached.batch(requests) == uncached.batch(requests)
        assert cached.cache_hits > 0          # the mix really repeats
        assert cached.cache_info["evictions"] > 0   # capacity binds

    def test_sharded(self):
        graph, alphabet = SMOKE_CORPORA["communication"]()
        cached = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, cache_size=64, validate=False)
        uncached = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, cache_size=0, validate=False)
        requests = _mixed_requests(cached.node_count(), 300, seed=31)
        assert cached.batch(requests) == uncached.batch(requests)
        assert cached.cache_hits > 0
