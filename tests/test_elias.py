"""Unit tests for Elias gamma/delta codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.elias import (
    decode_delta,
    decode_gamma,
    delta_length,
    encode_delta,
    encode_gamma,
    gamma_length,
)


def _bits_of(writer: BitWriter) -> str:
    reader = BitReader(writer.to_bytes(), len(writer))
    return "".join(str(reader.read_bit()) for _ in range(len(writer)))


class TestGamma:
    @pytest.mark.parametrize("value,expected", [
        (1, "1"),
        (2, "010"),
        (3, "011"),
        (4, "00100"),
        (8, "0001000"),
    ])
    def test_known_codewords(self, value, expected):
        writer = BitWriter()
        encode_gamma(writer, value)
        assert _bits_of(writer) == expected

    def test_rejects_zero(self):
        with pytest.raises(EncodingError):
            encode_gamma(BitWriter(), 0)

    def test_length_helper_matches(self):
        for value in [1, 2, 3, 7, 8, 100, 12345]:
            writer = BitWriter()
            encode_gamma(writer, value)
            assert len(writer) == gamma_length(value)


class TestDelta:
    @pytest.mark.parametrize("value,expected", [
        (1, "1"),
        (2, "0100"),
        (3, "0101"),
        (4, "01100"),
        (10, "00100010"),
    ])
    def test_known_codewords(self, value, expected):
        writer = BitWriter()
        encode_delta(writer, value)
        assert _bits_of(writer) == expected

    def test_rejects_zero(self):
        with pytest.raises(EncodingError):
            encode_delta(BitWriter(), 0)

    def test_length_helper_matches(self):
        for value in [1, 2, 3, 7, 8, 100, 12345, 10**6]:
            writer = BitWriter()
            encode_delta(writer, value)
            assert len(writer) == delta_length(value)

    def test_delta_shorter_than_gamma_for_large_values(self):
        assert delta_length(10**6) < gamma_length(10**6)


@given(st.lists(st.integers(min_value=1, max_value=10**9), max_size=100))
def test_gamma_stream_roundtrip(values):
    writer = BitWriter()
    for value in values:
        encode_gamma(writer, value)
    reader = BitReader(writer.to_bytes(), len(writer))
    assert [decode_gamma(reader) for _ in values] == values


@given(st.lists(st.integers(min_value=1, max_value=10**9), max_size=100))
def test_delta_stream_roundtrip(values):
    writer = BitWriter()
    for value in values:
        encode_delta(writer, value)
    reader = BitReader(writer.to_bytes(), len(writer))
    assert [decode_delta(reader) for _ in values] == values


@given(st.integers(min_value=1, max_value=2**40))
def test_delta_is_self_delimiting(value):
    writer = BitWriter()
    encode_delta(writer, value)
    encode_delta(writer, 1)  # trailing data must not confuse decoding
    reader = BitReader(writer.to_bytes(), len(writer))
    assert decode_delta(reader) == value
    assert decode_delta(reader) == 1
