"""Unit and property tests for the k2-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.k2tree import K2Tree
from repro.exceptions import EncodingError


class TestConstruction:
    def test_empty_matrix(self):
        tree = K2Tree.from_cells([], size=8)
        assert tree.is_empty()
        assert tree.bit_count == 0
        assert not tree.get(3, 3)
        assert tree.cells() == []

    def test_single_cell(self):
        tree = K2Tree.from_cells([(2, 5)], size=8)
        assert tree.get(2, 5)
        assert not tree.get(5, 2)
        assert tree.cells() == [(2, 5)]

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(EncodingError):
            K2Tree.from_cells([(8, 0)], size=8)

    def test_size_not_power_of_k(self):
        """The paper's 9x9 example expands to 16x16 internally."""
        cells = [(0, 1), (0, 3), (0, 5), (0, 7), (2, 8), (4, 6)]
        tree = K2Tree.from_cells(cells, size=9)
        assert tree.virtual_size == 16
        assert tree.cells() == sorted(cells)

    def test_k_must_be_at_least_two(self):
        with pytest.raises(EncodingError):
            K2Tree(1, 4, 4, [], [])

    def test_duplicate_cells_collapse(self):
        tree = K2Tree.from_cells([(1, 1), (1, 1)], size=4)
        assert tree.cells() == [(1, 1)]

    def test_k3(self):
        cells = [(0, 0), (8, 8), (4, 4)]
        tree = K2Tree.from_cells(cells, size=9, k=3)
        assert tree.virtual_size == 9
        assert tree.cells() == sorted(cells)


class TestQueries:
    def _dense_tree(self):
        cells = [(r, c) for r in range(6) for c in range(6)
                 if (r * 7 + c * 3) % 5 == 0]
        return K2Tree.from_cells(cells, size=6), set(cells)

    def test_get_matches_membership(self):
        tree, cells = self._dense_tree()
        for r in range(6):
            for c in range(6):
                assert tree.get(r, c) == ((r, c) in cells)

    def test_row_ones(self):
        tree, cells = self._dense_tree()
        for r in range(6):
            assert tree.row_ones(r) == sorted(c for (rr, c) in cells
                                              if rr == r)

    def test_col_ones(self):
        tree, cells = self._dense_tree()
        for c in range(6):
            assert tree.col_ones(c) == sorted(r for (r, cc) in cells
                                              if cc == c)

    def test_query_out_of_range(self):
        tree = K2Tree.from_cells([(0, 0)], size=2)
        with pytest.raises(EncodingError):
            tree.get(2, 0)
        with pytest.raises(EncodingError):
            tree.row_ones(5)


class TestSerialization:
    def test_bytes_roundtrip(self):
        cells = [(0, 1), (3, 3), (7, 0), (5, 6)]
        tree = K2Tree.from_cells(cells, size=8)
        clone = K2Tree.from_bytes(tree.to_bytes())
        assert clone.cells() == sorted(cells)
        assert clone.size == 8
        assert clone.k == 2

    def test_empty_roundtrip(self):
        tree = K2Tree.from_cells([], size=5)
        clone = K2Tree.from_bytes(tree.to_bytes())
        assert clone.is_empty()
        assert clone.size == 5

    def test_byte_size_reports_serialized_length(self):
        tree = K2Tree.from_cells([(1, 2)], size=4)
        assert tree.byte_size == len(tree.to_bytes())

    def test_sparse_is_smaller_than_dense(self):
        sparse = K2Tree.from_cells([(0, 0)], size=64)
        dense = K2Tree.from_cells(
            [(r, c) for r in range(64) for c in range(64)
             if (r + c) % 3 == 0], size=64)
        assert sparse.byte_size < dense.byte_size


@settings(max_examples=60)
@given(st.integers(0, 10_000), st.integers(2, 3))
def test_random_matrix_roundtrip(seed, k):
    rng = random.Random(seed)
    size = rng.randint(1, 40)
    count = rng.randint(0, size * size // 2)
    cells = {(rng.randrange(size), rng.randrange(size))
             for _ in range(count)}
    tree = K2Tree.from_cells(cells, size, k=k)
    assert tree.cells() == sorted(cells)
    clone = K2Tree.from_bytes(tree.to_bytes())
    assert clone.cells() == sorted(cells)
    row = rng.randrange(size)
    assert clone.row_ones(row) == sorted(c for (r, c) in cells
                                         if r == row)
    col = rng.randrange(size)
    assert clone.col_ones(col) == sorted(r for (r, c) in cells
                                         if c == col)


# ----------------------------------------------------------------------
# Rank backends (pure Python vs optional numpy)
# ----------------------------------------------------------------------
def _backends():
    from repro.encoding.k2backend import numpy_available
    return ("python", "numpy") if numpy_available() else ("python",)


@pytest.mark.parametrize("backend", _backends())
@settings(max_examples=60)
@given(st.integers(0, 10_000))
def test_rank_directory_block_boundaries(backend, seed):
    """``_rank1`` ≡ naive popcount, pinned at exact 64-bit multiples.

    The directory is block-structured (64-bit blocks in pure Python, a
    byte-cumsum in numpy), so the property probes every position of
    small trees *and* the exact block-multiple positions of trees whose
    ``T`` spans several blocks — the off-by-one surface of any prefix
    directory.
    """
    rng = random.Random(seed)
    size = rng.randint(1, 80)
    count = rng.randint(0, size * size // 2)
    cells = {(rng.randrange(size), rng.randrange(size))
             for _ in range(count)}
    tree = K2Tree.from_cells(cells, size, backend=backend)
    bits = tree._t
    prefix = [0]
    for bit in bits:
        prefix.append(prefix[-1] + (1 if bit else 0))
    positions = set(range(min(len(bits), 200) + 1))
    positions.update(range(0, len(bits) + 1, 64))
    positions.update(boundary + delta
                     for boundary in range(0, len(bits) + 1, 64)
                     for delta in (-1, 1)
                     if 0 <= boundary + delta <= len(bits))
    positions.add(len(bits))
    for position in sorted(positions):
        assert tree._rank1(position) == prefix[position], \
            (backend, position)


@pytest.mark.parametrize("backend", _backends())
def test_rank_directory_at_exact_block_multiples(backend):
    """A T array of exactly N*64 bits: ranks at 0, 64, ..., N*64."""
    rng = random.Random(99)
    # Dense enough that T grows well past several 64-bit blocks.
    size = 128
    cells = {(rng.randrange(size), rng.randrange(size))
             for _ in range(size * size // 3)}
    tree = K2Tree.from_cells(cells, size, backend=backend)
    assert len(tree._t) >= 256, "tree too small to cross blocks"
    naive = 0
    checked = 0
    for position, bit in enumerate(tree._t):
        if position % 64 == 0:
            assert tree._rank1(position) == naive, position
            checked += 1
        naive += 1 if bit else 0
    assert tree._rank1(len(tree._t)) == naive
    assert checked >= 4


def test_backend_selection_and_fallback():
    from repro.encoding import k2backend

    with pytest.raises(EncodingError, match="unknown k2 backend"):
        k2backend.set_backend("fortran")
    previous = k2backend.set_backend("python")
    try:
        tree = K2Tree.from_cells([(1, 2), (3, 0)], size=4)
        assert type(tree._rank).__name__ == "PythonRank"
        if k2backend.numpy_available():
            k2backend.set_backend("numpy")
            tree = K2Tree.from_cells([(1, 2), (3, 0)], size=4)
            assert type(tree._rank).__name__ == "NumpyRank"
        else:
            with pytest.raises(EncodingError, match="numpy"):
                k2backend.resolve_backend("numpy")
            assert k2backend.resolve_backend("auto") == "python"
    finally:
        k2backend.set_backend(previous)
