"""Tests for grammar queries: index, neighborhood, reachability,
components — validated against networkx on the decompressed graph."""

import random

import networkx as nx
import pytest

from helpers import copies_graph, random_simple_graph, star_graph, \
    theta_graph

from repro import GRePairSettings, compress, derive
from repro.exceptions import QueryError
from repro.queries import GrammarQueries
from repro.queries.index import GrammarIndex


def _queries_and_truth(graph, alphabet, settings=None):
    result = compress(graph, alphabet, settings or GRePairSettings())
    queries = GrammarQueries(result.grammar)
    val = derive(result.grammar.canonicalize())
    truth = nx.DiGraph()
    truth.add_nodes_from(val.nodes())
    for _, edge in val.edges():
        truth.add_edge(*edge.att)
    return queries, truth, result


class TestIndex:
    def test_locate_getid_inverse(self):
        graph, alphabet = copies_graph(16)
        result = compress(graph, alphabet)
        index = GrammarIndex(result.grammar.canonicalize())
        for node_id in range(1, index.total_nodes + 1):
            rep = index.locate(node_id)
            assert index.get_id(rep.edges, rep.node) == node_id

    def test_total_nodes_matches_val(self):
        graph, alphabet = star_graph(80)
        result = compress(graph, alphabet)
        index = GrammarIndex(result.grammar.canonicalize())
        assert index.total_nodes == derive(
            result.grammar.canonicalize()).node_size

    def test_start_nodes_have_empty_paths(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        index = GrammarIndex(result.grammar.canonicalize())
        rep = index.locate(1)
        assert rep.edges == ()
        assert rep.node == 1

    def test_out_of_range_rejected(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        index = GrammarIndex(result.grammar.canonicalize())
        with pytest.raises(QueryError):
            index.locate(0)
        with pytest.raises(QueryError):
            index.locate(index.total_nodes + 1)


class TestNeighborhood:
    @pytest.mark.parametrize("builder,seed", [
        (lambda: random_simple_graph(1), None),
        (lambda: copies_graph(24), None),
        (lambda: star_graph(100), None),
        (lambda: theta_graph(5), None),
    ])
    def test_all_nodes_match_networkx(self, builder, seed):
        graph, alphabet = builder()
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        for node in truth.nodes():
            assert queries.out_neighbors(node) == sorted(
                truth.successors(node))
            assert queries.in_neighbors(node) == sorted(
                truth.predecessors(node))
            undirected = set(truth.successors(node)) | set(
                truth.predecessors(node))
            assert queries.neighbors(node) == sorted(undirected)

    def test_neighbors_without_prune(self):
        """Deep grammars (no pruning) exercise long getID paths."""
        graph, alphabet = copies_graph(16)
        queries, truth, _ = _queries_and_truth(
            graph, alphabet, GRePairSettings(prune=False))
        for node in truth.nodes():
            assert queries.out_neighbors(node) == sorted(
                truth.successors(node))


class TestReachability:
    @pytest.mark.parametrize("builder", [
        lambda: random_simple_graph(2, num_nodes=30, num_edges=70),
        lambda: copies_graph(16),
        lambda: star_graph(60),
    ])
    def test_samples_match_networkx(self, builder):
        graph, alphabet = builder()
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        rng = random.Random(99)
        nodes = list(truth.nodes())
        for _ in range(400):
            source = rng.choice(nodes)
            target = rng.choice(nodes)
            assert queries.reachable(source, target) == nx.has_path(
                truth, source, target), (source, target)

    def test_self_reachability(self):
        graph, alphabet = theta_graph()
        queries, _, _ = _queries_and_truth(graph, alphabet)
        assert queries.reachable(1, 1)

    def test_within_one_deep_instance(self):
        """Both endpoints inside the same derived block."""
        graph, alphabet = copies_graph(32)
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        # Component nodes are contiguous in val; test all pairs of the
        # last component (deepest derivation path).
        last = max(truth.nodes())
        block = [last - i for i in range(4)]
        for source in block:
            for target in block:
                assert queries.reachable(source, target) == nx.has_path(
                    truth, source, target)

    def test_exhaustive_on_small_graph(self):
        graph, alphabet = random_simple_graph(5, num_nodes=15,
                                              num_edges=30)
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        for source in truth.nodes():
            for target in truth.nodes():
                assert queries.reachable(source, target) == nx.has_path(
                    truth, source, target)


class TestComponents:
    @pytest.mark.parametrize("builder", [
        lambda: random_simple_graph(3, num_nodes=40, num_edges=50),
        lambda: copies_graph(20),
        lambda: star_graph(64),
        lambda: theta_graph(),
    ])
    def test_component_count_matches(self, builder):
        graph, alphabet = builder()
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        expected = nx.number_connected_components(truth.to_undirected())
        assert queries.connected_components() == expected

    def test_isolated_nodes_counted(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph.from_edges([(t, (1, 2))], num_nodes=5)
        queries, _, _ = _queries_and_truth(graph, alphabet)
        assert queries.connected_components() == 4


class TestEngineOracle:
    """Query answers must match BFS ground truth under both engines.

    The maintenance engine changes how the grammar is built, never what
    it derives: for random (s, t) probes, grammar reachability has to
    equal BFS on the decompressed graph whichever engine produced the
    grammar, and the two engines' derived graphs must agree on global
    counts.
    """

    ENGINES = ("incremental", "recount")

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("builder,probes", [
        (lambda: random_simple_graph(31, num_nodes=35, num_edges=80), 150),
        (lambda: copies_graph(12), 150),
        (lambda: star_graph(50), 80),
        (lambda: theta_graph(4), 40),
    ])
    def test_reachability_matches_bfs(self, engine, builder, probes):
        graph, alphabet = builder()
        queries, truth, _ = _queries_and_truth(
            graph, alphabet, GRePairSettings(engine=engine))
        rng = random.Random(4242)
        nodes = list(truth.nodes())
        for _ in range(probes):
            source = rng.choice(nodes)
            target = rng.choice(nodes)
            expected = nx.has_path(truth, source, target)
            assert queries.reachable(source, target) == expected, (
                engine, source, target)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_neighborhoods_match_bfs_truth(self, engine):
        graph, alphabet = random_simple_graph(32, num_nodes=30,
                                              num_edges=70)
        queries, truth, _ = _queries_and_truth(
            graph, alphabet, GRePairSettings(engine=engine))
        for node in truth.nodes():
            assert queries.out_neighbors(node) == sorted(
                truth.successors(node))
            assert queries.in_neighbors(node) == sorted(
                truth.predecessors(node))

    def test_engines_agree_on_global_answers(self):
        graph, alphabet = random_simple_graph(33, num_nodes=40,
                                              num_edges=90)
        answers = {}
        for engine in self.ENGINES:
            queries, truth, _ = _queries_and_truth(
                graph, alphabet, GRePairSettings(engine=engine))
            answers[engine] = (
                queries.node_count(),
                queries.edge_count(),
                queries.connected_components(),
                nx.number_connected_components(truth.to_undirected()),
            )
        assert answers["incremental"] == answers["recount"]


class TestCounts:
    def test_node_and_edge_counts(self):
        graph, alphabet = copies_graph(24)
        queries, truth, _ = _queries_and_truth(graph, alphabet)
        assert queries.node_count() == truth.number_of_nodes()
        assert queries.edge_count() == truth.number_of_edges()

    def test_counts_without_materializing(self):
        """Counts agree with the grammar's derived_counts arithmetic."""
        graph, alphabet = star_graph(128)
        result = compress(graph, alphabet)
        queries = GrammarQueries(result.grammar)
        assert queries.node_count() == 129
        assert queries.edge_count() == 128
