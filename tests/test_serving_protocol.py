"""The typed query protocol: requests, planning, codec, error channel.

Covers the serving substrate in isolation from sockets and processes:

* request normalization (typed objects, legacy tuples, every alias);
* the planner — dedup, unhashable arguments, cache pre-filtering and
  bulk insertion (the cache-aware-planning satellite, asserted via
  ``cache_info`` counters on both handle types);
* the wire codec — JSON and binary round trips for every value shape
  the §V family produces, framing over a real socket pair, and
  corruption handling;
* the per-request error channel — the regression suite for the old
  abort-the-batch-on-first-error behavior.
"""

from __future__ import annotations

import socket

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import QueryError
from repro.queries.cache import QueryCache
from repro.serving import (
    QueryKind,
    QueryRequest,
    QueryResult,
    WireError,
    normalize_request,
    plan_batch,
)
from repro.serving.codec import (
    decode_message,
    encode_message,
    recv_message,
    requests_to_wire,
    results_from_wire,
    results_to_wire,
    send_message,
    wire_to_requests,
)

from helpers import theta_graph


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
class TestNormalize:
    def test_legacy_tuple(self):
        request = normalize_request(("reach", 1, 9), 4)
        assert request.kind is QueryKind.REACH
        assert request.args == (1, 9)
        assert request.id == 4
        assert request.key == ("reach", 1, 9)

    @pytest.mark.parametrize("alias,kind", [
        ("out", QueryKind.OUT), ("out_neighbors", QueryKind.OUT),
        ("in", QueryKind.IN), ("in_", QueryKind.IN),
        ("neighbors", QueryKind.NEIGHBORHOOD),
        ("connected_components", QueryKind.COMPONENTS),
        ("node_count", QueryKind.NODES),
        ("edge_count", QueryKind.EDGES),
    ])
    def test_every_alias(self, alias, kind):
        assert normalize_request((alias, 1)).kind is kind

    def test_typed_request_passes_through(self):
        request = QueryRequest(QueryKind.OUT, (3,), id=7)
        assert normalize_request(request) is request
        assert normalize_request(request, 2).id == 2

    def test_empty_raises(self):
        with pytest.raises(QueryError, match="empty batch request"):
            normalize_request(())

    def test_unknown_kind_raises(self):
        with pytest.raises(QueryError, match="unknown batch query"):
            normalize_request(("frobnicate", 1))

    def test_bare_string_is_one_kind_not_characters(self):
        assert normalize_request("components").kind \
            is QueryKind.COMPONENTS


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
class TestPlanBatch:
    def test_dedup_collapses_repeats(self):
        plan = plan_batch([("out", 1), ("out", 1), ("out", 2)])
        assert [job.id for job in plan.jobs] == [0, 2]
        assert plan.duplicates == [(1, 0)]

    def test_no_dedup_keeps_everything(self):
        plan = plan_batch([("out", 1), ("out", 1)], dedup=False)
        assert [job.id for job in plan.jobs] == [0, 1]
        assert plan.duplicates == []

    def test_unhashable_args_stay_jobs(self):
        plan = plan_batch([("out", [1]), ("out", [1])])
        assert len(plan.jobs) == 2
        assert plan.duplicates == []

    def test_nonstrict_collects_invalid(self):
        plan = plan_batch([("out", 1), ("bogus",), ()])
        assert len(plan.jobs) == 1
        assert [position for position, _ in plan.invalid] == [1, 2]

    def test_strict_raises(self):
        with pytest.raises(QueryError, match="unknown batch query"):
            plan_batch([("bogus",)], strict=True)

    def test_cache_prefilter_counts_and_skips(self):
        cache = QueryCache(16)
        cache.store(("out", 1), [2, 3])
        plan = plan_batch([("out", 1), ("out", 2), ("components",)],
                          cache=cache)
        # The hit never becomes a job; components is not cacheable.
        assert [job.key for job in plan.jobs] == [("out", 2),
                                                  ("components",)]
        assert plan.cached == [(0, [2, 3])]
        assert cache.hits == 1 and cache.misses == 1

    def test_duplicate_of_cached_position(self):
        cache = QueryCache(16)
        cache.store(("out", 1), [9])
        plan = plan_batch([("out", 1), ("out", 1)], cache=cache)
        assert plan.jobs == []
        assert plan.cached == [(0, [9])]
        assert plan.duplicates == [(1, 0)]


# ----------------------------------------------------------------------
# Cache-aware planned execution on the real handles (satellite)
# ----------------------------------------------------------------------
class TestCacheAwarePlanning:
    def test_sharded_parallel_batch_uses_the_handle_lru(self):
        """The ROADMAP gap: grouped shard requests bypassed the LRU.

        First planned batch: every unique cacheable request is one
        LRU miss, then a bulk insert.  Second identical batch: pure
        hits — no request reaches a shard handle at all.
        """
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        requests = [("out", 1), ("out", 2), ("in", 3),
                    ("neighborhood", 4)] * 25
        first = handle.batch(requests, parallel=True)
        info = handle.cache_info
        assert info["misses"] == 4
        assert info["hits"] == 0
        shard_load = [shard.cache_info["misses"] +
                      shard.cache_info["hits"]
                      for shard in handle.shards]
        second = handle.batch(requests, parallel=True)
        assert second == first
        info = handle.cache_info
        assert info["hits"] == 4
        assert info["misses"] == 4
        # The second batch was answered entirely from the router-side
        # LRU: shard handles saw no additional traffic.
        assert [shard.cache_info["misses"] + shard.cache_info["hits"]
                for shard in handle.shards] == shard_load

    def test_unsharded_parallel_batch_prefilters_too(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        requests = [("out", 1), ("out", 2), ("reach", 1, 2)] * 10
        first = handle.batch(requests, parallel=True)
        assert handle.cache_misses == 3 and handle.cache_hits == 0
        assert handle.batch(requests, parallel=True) == first
        assert handle.cache_hits == 3 and handle.cache_misses == 3

    def test_single_shot_then_planned_batch_hits(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        single = handle.out(1)
        assert handle.batch([("out", 1)], parallel=True) == [single]
        assert handle.cache_hits == 1

    def test_mutating_a_planned_answer_does_not_poison_the_lru(self):
        """The bulk insert must store its own copy: callers may
        mutate what they receive (the LRU's documented contract)."""
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        (answer,) = handle.batch([("out", 1)], parallel=True)
        expected = list(answer)
        answer.append(999)
        assert handle.out(1) == expected
        assert handle.batch([("out", 1)], parallel=True) == [expected]


# ----------------------------------------------------------------------
# Per-request error semantics (regression: no more batch aborts)
# ----------------------------------------------------------------------
class TestErrorChannel:
    @pytest.fixture
    def handle(self):
        graph, alphabet = theta_graph()
        return CompressedGraph.compress(graph, alphabet)

    @pytest.fixture
    def sharded(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        return ShardedCompressedGraph.compress(graph, alphabet,
                                               shards=2,
                                               validate=False)

    def test_bad_request_no_longer_aborts_the_batch(self, handle):
        """The regression this protocol exists to fix: one unknown
        node id used to kill every request after it."""
        total = handle.node_count()
        results = handle.execute([
            ("out", 1),
            ("out", total + 999),       # unknown node id
            ("components",),            # must still be answered
            ("reach", 1, 2),
        ])
        assert results[0].ok and results[0].value == handle.out(1)
        assert not results[1].ok
        assert "out of range" in results[1].error or \
            "unknown node" in results[1].error
        assert results[2].ok and results[2].value == handle.components()
        assert results[3].ok

    def test_malformed_requests_error_individually(self, handle):
        results = handle.execute([
            ("frobnicate", 1),   # unknown kind
            (),                  # empty
            ("reach", 1),        # bad arity
            ("nodes",),          # fine
        ])
        assert [result.ok for result in results] == [False, False,
                                                     False, True]
        assert "unknown batch query" in results[0].error
        assert "empty batch request" in results[1].error
        assert "bad arguments" in results[2].error
        assert results[3].value == handle.node_count()

    def test_sharded_error_channel(self, sharded):
        total = sharded.node_count()
        results = sharded.execute([
            ("out", total + 5),
            ("degree", 1, "sideways"),
            ("edges",),
        ])
        assert not results[0].ok and "out of range" in results[0].error
        assert not results[1].ok and "direction" in results[1].error
        assert results[2].ok and results[2].value == \
            sharded.edge_count()

    def test_unwrap_raises_query_error(self):
        result = QueryResult(id=0, error="boom")
        with pytest.raises(QueryError, match="boom"):
            result.unwrap()
        assert QueryResult(id=0, value=41).unwrap() == 41

    def test_legacy_batch_still_raises_first_error(self, handle):
        with pytest.raises(QueryError, match="out of range|unknown"):
            handle.batch([("out", handle.node_count() + 9),
                          ("components",)])


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
_VALUE_SHAPES = [
    True,                      # reach
    False,
    [2, 3, 5, 8],              # neighborhoods
    [],
    None,                      # path miss
    [1, 4, 9],                 # path hit
    7,                         # counts / degrees
    0,
    {"max_out": 3, "min_out": 0, "max_in": 2,
     "min_in": 0, "max": 4, "min": 1},    # degree extrema
]


class TestCodec:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_batch_roundtrip(self, codec):
        requests = [QueryRequest(QueryKind.REACH, (1, 9), id=0),
                    QueryRequest(QueryKind.DEGREE, (4, "in"), id=1),
                    QueryRequest(QueryKind.COMPONENTS, (), id=2)]
        message = {"op": "batch",
                   "requests": requests_to_wire(requests)}
        decoded = decode_message(encode_message(message, codec))
        pairs = wire_to_requests(decoded["requests"])
        assert pairs == [(0, ("reach", 1, 9)),
                         (1, ("degree", 4, "in")),
                         (2, ("components",))]

    @pytest.mark.parametrize("codec", ["json", "binary"])
    @pytest.mark.parametrize("value", _VALUE_SHAPES,
                             ids=lambda v: repr(v)[:20])
    def test_value_shapes_survive_exactly(self, codec, value):
        message = {"op": "results",
                   "results": results_to_wire(
                       [QueryResult(id=3, value=value)])}
        decoded = decode_message(encode_message(message, codec))
        (result,) = results_from_wire(decoded["results"])
        assert result.id == 3 and result.error is None
        assert result.value == value
        assert type(result.value) is type(value)

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_error_results_roundtrip(self, codec):
        message = {"op": "results",
                   "results": results_to_wire(
                       [QueryResult(id=1, error="node 9 out of range")])}
        decoded = decode_message(encode_message(message, codec))
        (result,) = results_from_wire(decoded["results"])
        assert not result.ok
        assert result.error == "node 9 out of range"

    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_control_messages(self, codec):
        for op in ("ping", "pong", "info", "shutdown"):
            assert decode_message(
                encode_message({"op": op}, codec)) == {"op": op}

    def test_binary_negative_ints(self):
        message = {"op": "results",
                   "results": results_to_wire(
                       [QueryResult(id=0, value=[-1, 0, -(2 ** 40)])])}
        decoded = decode_message(encode_message(message, "binary"))
        (result,) = results_from_wire(decoded["results"])
        assert result.value == [-1, 0, -(2 ** 40)]

    def test_binary_64_bit_boundary_ints_are_exact(self):
        """The zigzag must be exact across the full encodable range
        (the C-style `>> 63` idiom corrupts the negative edge)."""
        extremes = [-(2 ** 63), -(2 ** 62) - 1, 2 ** 63 - 1]
        message = {"op": "results",
                   "results": results_to_wire(
                       [QueryResult(id=0, value=extremes)])}
        decoded = decode_message(encode_message(message, "binary"))
        (result,) = results_from_wire(decoded["results"])
        assert result.value == extremes

    def test_binary_rejects_out_of_range_ints_at_encode_time(self):
        """Beyond 64 bits the varint layer cannot decode; the codec
        must refuse loudly instead of emitting undecodable bytes."""
        message = {"op": "results",
                   "results": results_to_wire(
                       [QueryResult(id=0, value=2 ** 100)])}
        with pytest.raises(WireError, match="64-bit range"):
            encode_message(message, "binary")

    def test_framing_over_a_real_socket(self):
        left, right = socket.socketpair()
        try:
            for codec in ("json", "binary"):
                message = {"op": "results",
                           "results": results_to_wire(
                               [QueryResult(id=0, value=[1, 2])])}
                send_message(left, message, codec)
                received = recv_message(right)
                assert received["op"] == "results"
                assert results_from_wire(
                    received["results"])[0].value == [1, 2]
            left.close()
            assert recv_message(right) is None  # clean EOF
        finally:
            right.close()

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError, match="unknown frame tag"):
            decode_message(b"\x00garbage")

    def test_corrupt_binary_rejected(self):
        good = encode_message({"op": "results",
                               "results": [{"id": 1, "value": [1, 2]}]},
                              "binary")
        with pytest.raises(WireError):
            decode_message(good[:len(good) // 2])

    def test_corrupt_json_rejected(self):
        with pytest.raises(WireError, match="bad JSON"):
            decode_message(b"J{nope")

    def test_unknown_codec_rejected(self):
        with pytest.raises(WireError, match="unknown codec"):
            encode_message({"op": "ping"}, "msgpack")
