"""Shared fixtures for the test suite — and the hard test timeout."""

from __future__ import annotations

import signal
import sys
import threading
from pathlib import Path
from typing import Tuple

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import random_simple_graph  # noqa: E402

from repro import Alphabet, Hypergraph  # noqa: E402

_DEFAULT_TIMEOUT_SECONDS = 30.0


class HardTimeout(Exception):
    """A test exceeded its ``@pytest.mark.timeout`` wall-clock limit."""


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` with SIGALRM.

    A hung event loop (or a client future that never resolves) would
    otherwise stall the whole suite: a deadlock in the async serving
    stack blocks the main thread on a condition variable forever.
    SIGALRM interrupts that wait and fails the test instead.  Only
    active on platforms with SIGALRM and when the test runs on the
    main thread (both true for every supported CI lane).
    """
    marker = item.get_closest_marker("timeout")
    if (marker is None or not hasattr(signal, "SIGALRM")
            or threading.current_thread()
            is not threading.main_thread()):
        return (yield)
    seconds = (float(marker.args[0]) if marker.args
               else _DEFAULT_TIMEOUT_SECONDS)

    def on_alarm(signum, frame):
        raise HardTimeout(
            f"{item.nodeid} exceeded the hard {seconds:.0f}s timeout "
            f"(hung event loop or unresolved client future?)")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def small_random() -> Tuple[Hypergraph, Alphabet]:
    """One deterministic small random graph."""
    return random_simple_graph(seed=7)
