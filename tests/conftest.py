"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Tuple

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import random_simple_graph  # noqa: E402

from repro import Alphabet, Hypergraph  # noqa: E402


@pytest.fixture
def small_random() -> Tuple[Hypergraph, Alphabet]:
    """One deterministic small random graph."""
    return random_simple_graph(seed=7)
