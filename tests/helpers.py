"""Shared graph helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import networkx as nx
from networkx.algorithms.isomorphism import categorical_multiedge_match

from repro import Alphabet, Hypergraph


def to_networkx(graph: Hypergraph) -> nx.MultiDiGraph:
    """Rank-<=2 hypergraph -> labeled networkx multidigraph.

    Rank-1 edges become self-loops; since attachment sequences are
    repetition-free, a genuine rank-2 self-loop cannot exist, so the
    encoding is injective and isomorphism checks stay exact.
    """
    result = nx.MultiDiGraph()
    result.add_nodes_from(graph.nodes())
    for _, edge in graph.edges():
        assert len(edge.att) <= 2, "to_networkx needs rank-<=2 edges"
        if len(edge.att) == 1:
            result.add_edge(edge.att[0], edge.att[0], label=edge.label)
        else:
            result.add_edge(edge.att[0], edge.att[1], label=edge.label)
    return result


def degree_label_fingerprint(graph: Hypergraph):
    """Per-node structural signature multiset (iso-invariant).

    Sound (equal for isomorphic graphs) but not complete — used where
    exact isomorphism checks would be too slow.  Each node contributes
    the sorted multisets of (label, position) pairs of its incident
    edges.
    """
    profile = []
    for node in graph.nodes():
        signature = []
        for eid in graph.incident(node):
            edge = graph.edge(eid)
            signature.append((edge.label, edge.att.index(node)))
        profile.append(tuple(sorted(signature)))
    return sorted(profile)


def isomorphic(a: Hypergraph, b: Hypergraph) -> bool:
    """Label-respecting isomorphism of two rank-2 hypergraphs."""
    return nx.is_isomorphic(
        to_networkx(a), to_networkx(b),
        edge_match=categorical_multiedge_match("label", None),
    )


def random_simple_graph(
    seed: int,
    num_nodes: int = 40,
    num_edges: int = 90,
    num_labels: int = 3,
) -> Tuple[Hypergraph, Alphabet]:
    """Seeded random labeled digraph (no self-loops, no duplicates)."""
    rng = random.Random(seed)
    alphabet = Alphabet()
    labels = [alphabet.add_terminal(2, f"L{i}") for i in range(num_labels)]
    graph = Hypergraph()
    for _ in range(num_nodes):
        graph.add_node()
    seen = set()
    attempts = 0
    while len(seen) < num_edges and attempts < 50 * num_edges:
        attempts += 1
        u = rng.randrange(1, num_nodes + 1)
        v = rng.randrange(1, num_nodes + 1)
        if u == v:
            continue
        label = rng.choice(labels)
        if (label, u, v) in seen:
            continue
        seen.add((label, u, v))
        graph.add_edge(label, (u, v))
    return graph, alphabet


def theta_graph(paths: int = 3) -> Tuple[Hypergraph, Alphabet]:
    """The paper's Figure 1 graph: parallel a-b paths between two nodes."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    graph = Hypergraph()
    source = graph.add_node()
    target = graph.add_node()
    for _ in range(paths):
        middle = graph.add_node()
        graph.add_edge(a, (source, middle))
        graph.add_edge(b, (middle, target))
    return graph, alphabet


def copies_graph(count: int = 16) -> Tuple[Hypergraph, Alphabet]:
    """Disjoint copies of a 4-node, 5-edge unit (Fig. 13 style)."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    graph = Hypergraph()
    for _ in range(count):
        base = [graph.add_node() for _ in range(4)]
        graph.add_edge(a, (base[0], base[1]))
        graph.add_edge(a, (base[1], base[2]))
        graph.add_edge(a, (base[2], base[3]))
        graph.add_edge(b, (base[3], base[0]))
        graph.add_edge(b, (base[0], base[2]))
    return graph, alphabet


def star_graph(spokes: int = 50) -> Tuple[Hypergraph, Alphabet]:
    """RDF-types-style star: leaves pointing at one hub."""
    alphabet = Alphabet()
    label = alphabet.add_terminal(2, "type")
    graph = Hypergraph()
    hub = graph.add_node()
    for _ in range(spokes):
        leaf = graph.add_node()
        graph.add_edge(label, (leaf, hub))
    return graph, alphabet


