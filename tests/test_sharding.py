"""Sharded serving: partitioners, routing, and the differential suite.

The acceptance contract: :class:`repro.ShardedCompressedGraph` answers
the full section-V query family with results identical to an unsharded
:class:`repro.CompressedGraph` on every smoke corpus.

Node-ID note.  Compression renumbers: both handle types answer in
*their own* canonical ``val`` numbering, so per-node answers of two
independently built handles live in different (isomorphic) ID spaces.
The differential suite therefore checks three mutually reinforcing
lanes:

* **k=1 exact lane** — a single shard has no boundary, so its grammar
  (and hence its ID space) equals the unsharded handle's: every query,
  per node, must be *bit-identical*.
* **truth lane (k>1)** — each sharded handle is checked per node
  against its own ``decompress()``, the documented ID space of its
  answers (the same way the seed suite validates the unsharded
  handle).
* **ID-free lane (k>1)** — every answer that does not mention node IDs
  (counts, components, degree extrema, neighbor-size multisets) must
  equal the unsharded handle's exactly.
"""

from __future__ import annotations

import random
from collections import Counter, deque

import pytest

from repro import CompressedGraph, GRePairSettings, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import GrammarError, QueryError
from repro.sharding import (
    PARTITIONERS,
    connectivity_partition,
    hash_partition,
)

from helpers import random_simple_graph, star_graph, theta_graph


# ----------------------------------------------------------------------
# Ground-truth helpers (plain adjacency maps from a derived graph)
# ----------------------------------------------------------------------
def adjacency(val):
    out = {node: set() for node in val.nodes()}
    into = {node: set() for node in val.nodes()}
    anyn = {node: set() for node in val.nodes()}
    for _, edge in val.edges():
        if len(edge.att) == 2:
            out[edge.att[0]].add(edge.att[1])
            into[edge.att[1]].add(edge.att[0])
        for node in edge.att:
            for other in edge.att:
                if other != node:
                    anyn[node].add(other)
    return out, into, anyn


def bfs_distances(out, source):
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ in sorted(out[node]):
            if succ not in distances:
                distances[succ] = distances[node] + 1
                frontier.append(succ)
    return distances


def component_count(anyn):
    seen = set()
    count = 0
    for start in anyn:
        if start in seen:
            continue
        count += 1
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            for other in anyn[node]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
    return count


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_hash_covers_all_nodes_deterministically(self):
        graph, _ = random_simple_graph(seed=3)
        first = hash_partition(graph, 4)
        second = hash_partition(graph, 4)
        assert first == second
        assert set(first) == set(graph.nodes())
        assert set(first.values()) <= set(range(4))

    def test_hash_spreads_nodes(self):
        graph, _ = random_simple_graph(seed=4, num_nodes=200,
                                       num_edges=300)
        loads = Counter(hash_partition(graph, 4).values())
        assert len(loads) == 4
        assert max(loads.values()) < 2 * min(loads.values())

    def test_connectivity_keeps_components_together(self):
        graph, alphabet = SMOKE_CORPORA["version-copies"]()
        assign = connectivity_partition(graph, 4)
        for _, edge in graph.edges():
            owners = {assign[node] for node in edge.att}
            assert len(owners) == 1

    def test_connectivity_balances_components(self):
        graph, _ = SMOKE_CORPORA["version-copies"]()  # 128 components
        loads = Counter(connectivity_partition(graph, 4).values())
        assert len(loads) == 4
        assert max(loads.values()) <= 2 * min(loads.values())

    def test_unknown_partitioner_rejected(self):
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError, match="unknown partitioner"):
            ShardedCompressedGraph.compress(graph, alphabet,
                                            partitioner="nope")

    def test_partial_partitioner_rejected(self):
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError, match="unassigned"):
            ShardedCompressedGraph.compress(
                graph, alphabet, shards=2,
                partitioner=lambda g, k: {1: 0})

    def test_out_of_range_partitioner_rejected(self):
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError, match="out-of-range"):
            ShardedCompressedGraph.compress(
                graph, alphabet, shards=2,
                partitioner=lambda g, k: {n: 7 for n in g.nodes()})

    def test_custom_callable_partitioner(self):
        graph, alphabet = star_graph(30)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {n: n % k for n in g.nodes()})
        assert handle.node_count() == graph.node_size

    def test_registry_names(self):
        assert set(PARTITIONERS) == {"hash", "connectivity",
                                     "bfs", "label"}


# ----------------------------------------------------------------------
# The k=1 exact lane: identical ID space, bit-identical answers
# ----------------------------------------------------------------------
class TestSingleShardExactEquality:
    @pytest.mark.parametrize("corpus", ["er-random", "rdf-types",
                                        "version-copies"])
    def test_every_query_matches_unsharded(self, corpus):
        graph, alphabet = SMOKE_CORPORA[corpus]()
        unsharded = CompressedGraph.compress(graph, alphabet,
                                             validate=False)
        sharded = ShardedCompressedGraph.compress(graph, alphabet,
                                                  shards=1,
                                                  validate=False)
        assert sharded.boundary_edge_count == 0
        total = unsharded.node_count()
        assert sharded.node_count() == total
        rng = random.Random(13)
        requests = [("components",), ("degree",), ("nodes",), ("edges",)]
        for _ in range(200):
            kind = rng.choice(["out", "in", "neighborhood", "reach",
                               "degree", "path"])
            if kind in ("reach", "path"):
                requests.append((kind, rng.randint(1, total),
                                 rng.randint(1, total)))
            else:
                requests.append((kind, rng.randint(1, total)))
        assert sharded.batch(requests) == unsharded.batch(requests)


# ----------------------------------------------------------------------
# The differential acceptance sweep: every smoke corpus, k > 1
# ----------------------------------------------------------------------
def _build(corpus, shards, partitioner):
    graph, alphabet = SMOKE_CORPORA[corpus]()
    unsharded = CompressedGraph.compress(graph, alphabet,
                                         validate=False)
    sharded = ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards, partitioner=partitioner,
        validate=False)
    return graph, unsharded, sharded


@pytest.mark.parametrize("corpus", sorted(SMOKE_CORPORA))
class TestDifferentialOnSmokeCorpora:
    """Sharded vs unsharded on every smoke corpus (hash, k=4)."""

    def test_full_query_family(self, corpus):
        graph, unsharded, sharded = _build(corpus, 4, "hash")

        # -- ID-free lane: exact equality with the unsharded handle --
        assert sharded.node_count() == unsharded.node_count()
        assert sharded.edge_count() == unsharded.edge_count()
        assert (sharded.connected_components()
                == unsharded.connected_components())
        assert sharded.degree() == unsharded.degree()

        total = sharded.node_count()
        out_sizes = sorted(len(sharded.out(v))
                           for v in range(1, total + 1))
        expected = sorted(len(unsharded.out(v))
                          for v in range(1, total + 1))
        assert out_sizes == expected

        # -- truth lane: answers vs the handle's own derived graph --
        val = sharded.decompress()
        assert val.node_size == graph.node_size
        assert val.num_edges == graph.num_edges
        out, into, anyn = adjacency(val)
        assert component_count(anyn) == unsharded.connected_components()

        rng = random.Random(17)
        sample = rng.sample(range(1, total + 1), min(total, 50))
        for node in sample:
            assert sharded.out(node) == sorted(out[node])
            assert sharded.in_(node) == sorted(into[node])
            assert sharded.neighborhood(node) == sorted(anyn[node])
            assert sharded.degree(node, "out") == len(out[node])
            assert sharded.degree(node, "in") == len(into[node])

        for _ in range(40):
            source = rng.randint(1, total)
            target = rng.randint(1, total)
            distances = bfs_distances(out, source)
            expected_reach = target in distances
            assert sharded.reach(source, target) == expected_reach, \
                (source, target)
            path = sharded.path(source, target)
            if expected_reach:
                assert path is not None
                assert len(path) - 1 == distances[target]
                assert path[0] == source and path[-1] == target
                for a, b in zip(path, path[1:]):
                    assert b in out[a]
            else:
                assert path is None


class TestShardCountsAndPartitioners:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_shard_count_sweep(self, shards):
        graph, unsharded, sharded = _build("communication", shards,
                                           "hash")
        assert sharded.num_shards == shards
        assert sharded.node_count() == unsharded.node_count()
        assert sharded.edge_count() == unsharded.edge_count()
        assert (sharded.connected_components()
                == unsharded.connected_components())
        assert sharded.degree() == unsharded.degree()

    @pytest.mark.parametrize("corpus", ["version-copies", "rdf-types"])
    def test_connectivity_partitioner_differential(self, corpus):
        graph, unsharded, sharded = _build(corpus, 4, "connectivity")
        assert sharded.boundary_edge_count == 0
        assert (sharded.connected_components()
                == unsharded.connected_components())
        val = sharded.decompress()
        out, into, anyn = adjacency(val)
        total = sharded.node_count()
        rng = random.Random(23)
        for node in rng.sample(range(1, total + 1), min(total, 40)):
            assert sharded.out(node) == sorted(out[node])
        for _ in range(25):
            source = rng.randint(1, total)
            target = rng.randint(1, total)
            assert sharded.reach(source, target) == (
                target in bfs_distances(out, source))


# ----------------------------------------------------------------------
# Cross-shard mechanics that deserve direct, small-graph tests
# ----------------------------------------------------------------------
class TestCrossShardMechanics:
    def _two_shard_chain(self):
        """1 -> 2 -> 3 -> 4 with a shard cut between 2 and 3."""
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        graph = Hypergraph.from_edges(
            [(label, (1, 2)), (label, (2, 3)), (label, (3, 4))],
            num_nodes=4)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {1: 0, 2: 0, 3: 1, 4: 1})
        return handle

    def test_boundary_edge_survives(self):
        handle = self._two_shard_chain()
        assert handle.boundary_edge_count == 1
        assert handle.edge_count() == 3

    def test_reach_crosses_the_boundary(self):
        handle = self._two_shard_chain()
        val = handle.decompress()
        out, _, _ = adjacency(val)
        for source in val.nodes():
            distances = bfs_distances(out, source)
            for target in val.nodes():
                assert handle.reach(source, target) == (
                    target in distances)

    def test_path_crosses_the_boundary(self):
        handle = self._two_shard_chain()
        val = handle.decompress()
        out, _, _ = adjacency(val)
        chain_start = next(node for node in val.nodes() if not
                           any(node in targets
                               for targets in out.values()))
        chain_end = next(node for node in val.nodes()
                         if not out[node])
        path = handle.path(chain_start, chain_end)
        assert path is not None and len(path) == 4

    def test_reach_reenters_a_shard(self):
        """s and t in shard 0, the only path via shard 1 and back."""
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        graph = Hypergraph.from_edges(
            [(label, (1, 2)), (label, (2, 3))], num_nodes=3)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {1: 0, 2: 1, 3: 0})
        val = handle.decompress()
        out, _, _ = adjacency(val)
        for source in val.nodes():
            distances = bfs_distances(out, source)
            for target in val.nodes():
                assert handle.reach(source, target) == (
                    target in distances), (source, target)

    def test_components_merge_across_shards(self):
        handle = self._two_shard_chain()
        assert handle.connected_components() == 1

    def test_out_of_range_ids_raise(self):
        handle = self._two_shard_chain()
        with pytest.raises(QueryError, match="out of range"):
            handle.out(0)
        with pytest.raises(QueryError, match="out of range"):
            handle.out(handle.node_count() + 1)
        with pytest.raises(QueryError, match="out of range"):
            handle.reach(1, handle.node_count() + 1)

    def test_bad_direction_raises(self):
        handle = self._two_shard_chain()
        with pytest.raises(QueryError, match="unknown direction"):
            handle.degree(1, "sideways")

    def test_shards_must_be_positive(self):
        from repro import Alphabet, Hypergraph
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError, match="shards must be"):
            ShardedCompressedGraph.compress(graph, alphabet, shards=0)

    def test_parallel_build_matches_sequential(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        sequential = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, validate=False)
        parallel = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, parallel=True, validate=False)
        assert parallel.node_count() == sequential.node_count()
        assert (parallel.boundary_edge_count
                == sequential.boundary_edge_count)
        total = parallel.node_count()
        for node in range(1, min(total, 30) + 1):
            assert parallel.out(node) == sequential.out(node)

    def test_summary_and_repr_mention_shards(self):
        handle = self._two_shard_chain()
        assert "2 shards" in handle.summary()
        assert "ShardedCompressedGraph" in repr(handle)
        assert handle.stats["shards"] == 2
        assert handle.stats["boundary_edges"] == 1


class TestDegreeEdgeCases:
    def test_empty_graph_extrema_raise(self):
        from repro import Alphabet, Hypergraph
        handle = ShardedCompressedGraph.compress(Hypergraph(),
                                                 Alphabet(), shards=2)
        assert handle.node_count() == 0
        with pytest.raises(QueryError, match="empty graph"):
            handle.degree()

    def test_hyperedge_extrema_raise_like_unsharded(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        simple = alphabet.add_terminal(rank=2, name="e")
        hyper = alphabet.add_terminal(rank=3, name="h")
        graph = Hypergraph.from_edges(
            [(simple, (1, 2)), (hyper, (1, 2, 3))], num_nodes=3)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {n: 0 for n in g.nodes()})
        with pytest.raises(QueryError, match="simple derived graph"):
            handle.degree()

    def test_isolated_nodes_counted(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        graph = Hypergraph.from_edges([(label, (1, 2))], num_nodes=5)
        handle = ShardedCompressedGraph.compress(graph, alphabet,
                                                 shards=3)
        assert handle.node_count() == 5
        assert handle.connected_components() == 4
        assert handle.degree()["min"] == 0
