"""The RPQ subsystem: regex front end, engine, counts, sharding.

Differential acceptance for ``repro.rpq``:

* **front end** — the pattern language parses, canonicalizes
  (equivalent patterns share one minimized DFA / one cache key), and
  rejects malformed input with ``QueryError``; a property lane checks
  random patterns against Python's ``re`` on random words.
* **engine truth lane** — ``CompressedGraph.rpq`` must equal a naive
  product-BFS over the networkx view of the handle's own
  ``decompress()`` on every smoke corpus, for a fixed pattern set,
  on both the skeleton route and the forced-BFS fallback.
* **sharded lanes** — ``k=1`` is bit-identical to the unsharded
  handle; ``k>1`` is checked against its own decompression under
  every forced strategy (closure / chaining / bfs); ID-free
  pattern-count aggregates must equal the unsharded handle exactly.
* **persistence** — warmed product closures survive the GRPS 'R'
  trailer round-trip and corrupt sections are rejected.
* **serving** — a socket-served handle answers ``rpq`` /
  ``pattern_count`` / ``out_edges`` byte-identically to the
  in-process handle on both codecs (SIGALRM-bounded).
"""

from __future__ import annotations

import random
import re
from collections import deque

import networkx as nx
import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.encoding.container import decode_sharded_container
from repro.exceptions import EncodingError, QueryError
from repro.partition import ProductClosure
from repro.rpq import cache_key, compile_pattern
from repro.rpq.regex import PatternDFA
from repro.serving import GraphServer
from repro.serving.protocol import QueryKind, QueryRequest

from helpers import to_networkx

#: Pattern templates instantiated with each corpus's label names
#: (``{a}`` = first name, ``{z}`` = last name).
PATTERN_TEMPLATES = [
    "<{a}>",
    "<{a}>+",
    "<{a}> <{z}>",
    "(<{a}>|<{z}>)*<{z}>",
    ". .",
    "<{a}>?.",
]


def corpus_patterns(names):
    return [template.format(a=names[0], z=names[-1])
            for template in PATTERN_TEMPLATES]


def label_names(alphabet):
    return [alphabet.name(label) for label in alphabet.terminals()]


def truth_graph(handle):
    """networkx multidigraph of the handle's own ``val``, with label
    *names* on the edges (the ID space its answers live in)."""
    alphabet = handle.alphabet
    graph = to_networkx(handle.decompress())
    named = nx.MultiDiGraph()
    named.add_nodes_from(graph.nodes())
    for source, target, data in graph.edges(data=True):
        named.add_edge(source, target, name=alphabet.name(data["label"]))
    return named


def truth_rpq(graph, dfa, source, target,
              start=None, accepting=None):
    """Naive product-automaton BFS over a networkx truth graph."""
    start = dfa.start if start is None else start
    accepting = dfa.accepting if accepting is None else accepting
    if source == target and start in accepting:
        return True
    seen = {(source, start)}
    frontier = deque(seen)
    while frontier:
        node, state = frontier.popleft()
        if node not in graph:
            continue
        for _, successor, data in graph.out_edges(node, data=True):
            next_state = dfa.step_name(state, data["name"])
            if next_state is None:
                continue
            if successor == target and next_state in accepting:
                return True
            if (successor, next_state) not in seen:
                seen.add((successor, next_state))
                frontier.append((successor, next_state))
    return False


def probe_pairs(total_nodes, count=40, seed=7):
    rng = random.Random(seed)
    pairs = [(1, total_nodes), (total_nodes, 1), (1, 1)]
    pairs += [(rng.randint(1, total_nodes), rng.randint(1, total_nodes))
              for _ in range(count)]
    return pairs


# ----------------------------------------------------------------------
# Shared handles (compression dominates; one build per corpus)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def flat():
    handles = {}

    def build(corpus):
        if corpus not in handles:
            graph, alphabet = SMOKE_CORPORA[corpus]()
            handles[corpus] = (CompressedGraph.compress(
                graph, alphabet, validate=False), label_names(alphabet))
        return handles[corpus]

    return build


# ----------------------------------------------------------------------
# Front end: parsing, canonicalization, rejection
# ----------------------------------------------------------------------
class TestRegexFrontEnd:
    def test_literal_and_concat(self):
        dfa = compile_pattern("a b")
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["a"])
        assert not dfa.accepts(["b", "a"])

    def test_union_star_plus_optional(self):
        dfa = compile_pattern("a(b|c)*")
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "c", "b", "b"])
        assert not dfa.accepts(["c"])
        plus = compile_pattern("a+")
        assert not plus.accepts([])
        assert plus.accepts(["a", "a", "a"])
        opt = compile_pattern("a? b")
        assert opt.accepts(["b"]) and opt.accepts(["a", "b"])

    def test_dot_matches_unmentioned_labels(self):
        dfa = compile_pattern("a .")
        assert dfa.accepts(["a", "completely-new-label"])
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts(["completely-new-label", "a"])

    def test_quoted_names(self):
        dfa = compile_pattern("<rdf:type|odd name>+")
        assert dfa.accepts(["rdf:type|odd name"])
        assert not dfa.accepts(["rdf:type"])

    @pytest.mark.parametrize("left,right", [
        ("a|b", "b|a"),
        ("((a))", "a"),
        ("a+", "a a*"),
        ("(a|b)(a|b)", "(b|a)(b|a)"),
        ("a**", "a*"),
        ("(a*)*", "a*"),
        ("a|a", "a"),
    ])
    def test_equivalent_patterns_share_one_canonical_dfa(self, left,
                                                         right):
        assert compile_pattern(left).key == compile_pattern(right).key
        assert cache_key(left) == cache_key(right)

    def test_distinct_patterns_do_not_collide(self):
        assert compile_pattern("a").key != compile_pattern("b").key
        assert compile_pattern("a*").key != compile_pattern("a+").key
        assert cache_key("a b") != cache_key("b a")

    def test_empty_union_branches_mean_epsilon(self):
        assert compile_pattern("a|").accepts([])
        assert compile_pattern("|a").key == compile_pattern("a?").key

    @pytest.mark.parametrize("bad", [
        "a(b", "(", ")", "a)b", "*", "<unterminated", "a~b", "+",
    ])
    def test_malformed_patterns_raise_query_errors(self, bad):
        with pytest.raises(QueryError, match="malformed pattern"):
            compile_pattern(bad)

    def test_cache_key_falls_back_on_malformed_input(self):
        assert cache_key("a(b") == ("raw", "a(b")
        assert cache_key(17) == ("raw", 17)

    def test_dfa_codec_roundtrip(self):
        dfa = compile_pattern("a(b|c)*d?")
        again = PatternDFA.from_bytes(dfa.to_bytes())
        assert again == dfa
        assert again.key == dfa.key

    def test_property_lane_matches_python_re(self):
        """Random patterns over {a, b} vs ``re`` on random words.

        Every generated word only uses mentioned names, so the
        rest-class symbol never fires and ``.`` is exactly ``[ab]``.
        """
        rng = random.Random(99)

        def gen(depth):
            roll = rng.random()
            if depth <= 0 or roll < 0.4:
                return rng.choice(["a", "b", "."])
            if roll < 0.6:
                return f"{gen(depth - 1)} {gen(depth - 1)}"
            if roll < 0.75:
                left, right = gen(depth - 1), gen(depth - 1)
                return f"({left}|{right})"
            mark = rng.choice("*+?")
            return f"({gen(depth - 1)}){mark}"

        for _ in range(60):
            pattern = gen(3)
            dfa = compile_pattern(pattern)
            truth = re.compile(
                pattern.replace(" ", "").replace(".", "[ab]") + r"\Z")
            for _ in range(25):
                word = [rng.choice("ab")
                        for _ in range(rng.randint(0, 6))]
                expected = truth.match("".join(word)) is not None
                assert dfa.accepts(word) == expected, \
                    (pattern, word)


# ----------------------------------------------------------------------
# Engine truth lane: every smoke corpus vs networkx product-BFS
# ----------------------------------------------------------------------
class TestEngineDifferential:
    @pytest.mark.parametrize("corpus", list(SMOKE_CORPORA))
    def test_rpq_equals_product_bfs(self, corpus, flat):
        handle, names = flat(corpus)
        graph = truth_graph(handle)
        pairs = probe_pairs(handle.node_count())
        for pattern in corpus_patterns(names):
            dfa = compile_pattern(pattern)
            for source, target in pairs:
                assert handle.rpq(pattern, source, target) == \
                    truth_rpq(graph, dfa, source, target), \
                    (corpus, pattern, source, target)

    @pytest.mark.smoke
    def test_state_to_state_probes(self, flat):
        """The wire probe forms: from-state and state-to-state."""
        handle, names = flat("rdf-identica")
        graph = truth_graph(handle)
        pattern = f"<{names[0]}>(<{names[-1]}>|<{names[0]}>)*"
        dfa = compile_pattern(pattern)
        pairs = probe_pairs(handle.node_count(), count=15, seed=3)
        for from_state in range(dfa.num_states):
            for to_state in range(dfa.num_states):
                for source, target in pairs:
                    expected = truth_rpq(
                        graph, dfa, source, target,
                        start=from_state,
                        accepting=frozenset([to_state]))
                    assert handle.rpq(pattern, source, target,
                                      from_state, to_state) == \
                        expected, (from_state, to_state, source, target)

    @pytest.mark.smoke
    def test_bfs_fallback_agrees_with_skeletons(self, flat):
        handle, names = flat("er-random")
        engine = handle._rpq_engine()
        pattern = f"(<{names[0]}>|.)<{names[0]}>*"
        pairs = probe_pairs(handle.node_count(), count=20, seed=5)
        skeleton = [engine.matches(pattern, s, t) for s, t in pairs]
        engine.force = "bfs"
        try:
            assert [engine.matches(pattern, s, t)
                    for s, t in pairs] == skeleton
        finally:
            engine.force = None

    def test_node_validation(self, flat):
        handle, names = flat("er-random")
        total = handle.node_count()
        with pytest.raises(QueryError, match="out of range"):
            handle.rpq(names[0], 0, 1)
        with pytest.raises(QueryError, match="out of range"):
            handle.rpq(names[0], 1, total + 1)
        with pytest.raises(QueryError, match="from_state"):
            handle.rpq(names[0], 1, 1, 99)


# ----------------------------------------------------------------------
# Cache correctness: canonical keys share entries and builds
# ----------------------------------------------------------------------
class TestCanonicalCaching:
    @pytest.mark.smoke
    def test_equivalent_patterns_hit_one_cache_entry(self):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        names = label_names(alphabet)
        handle = CompressedGraph.compress(graph, alphabet,
                                          validate=False)
        first = f"<{names[0]}>|<{names[1]}>"
        second = f"<{names[1]}>|<{names[0]}>"
        answer = handle.rpq(first, 1, 2)
        misses = handle.cache_info["misses"]
        hits = handle.cache_info["hits"]
        assert handle.rpq(second, 1, 2) == answer
        # The flipped union is the same canonical DFA: same LRU slot.
        assert handle.cache_info["hits"] == hits + 1
        assert handle.cache_info["misses"] == misses
        # ...and the engine built exactly one skeleton set for both.
        assert handle.rpq_info["skeleton_builds"] == 1
        assert handle.rpq_info["cached_dfas"] == 1

    def test_request_keys_canonicalize(self):
        one = QueryRequest(id=1, kind=QueryKind.RPQ,
                           args=("a|b", 3, 4))
        two = QueryRequest(id=2, kind=QueryKind.RPQ,
                           args=("b|a", 3, 4))
        other = QueryRequest(id=3, kind=QueryKind.RPQ,
                             args=("b|a", 4, 3))
        assert one.key == two.key
        assert one.key != other.key
        # Unparseable patterns still get a (raw) key — the error
        # surfaces at evaluation, not at cache-key time.
        bad = QueryRequest(id=4, kind=QueryKind.RPQ, args=("a(", 1, 2))
        assert bad.key[1] == ("raw", "a(")


# ----------------------------------------------------------------------
# Pattern counts: grammar pass vs decompressed truth, both handles
# ----------------------------------------------------------------------
class TestPatternCounts:
    @pytest.mark.parametrize("corpus", ["er-random", "rdf-identica",
                                        "version-dblp", "coauthorship"])
    def test_counts_equal_decompressed_truth(self, corpus, flat):
        handle, names = flat(corpus)
        graph = truth_graph(handle)
        edges = [(source, target, data["name"]) for source, target,
                 data in graph.edges(data=True)]
        for name in {names[0], names[-1], "no-such-label"}:
            assert handle.pattern_count("label", name) == \
                sum(1 for _, _, label in edges if label == name)
            out_by_node = {}
            in_by_node = {}
            for source, target, label in edges:
                if label == name:
                    out_by_node[source] = out_by_node.get(source, 0) + 1
                    in_by_node[target] = in_by_node.get(target, 0) + 1
            for threshold in (0, 1, 2, 5):
                expected = sum(
                    1 for node in graph.nodes()
                    if out_by_node.get(node, 0) >= threshold)
                assert handle.pattern_count("star", name,
                                            threshold) == expected
            other = names[-1]
            other_out = {}
            for source, target, label in edges:
                if label == other:
                    other_out[source] = other_out.get(source, 0) + 1
            assert handle.pattern_count("digram", name, other) == sum(
                count * other_out.get(node, 0)
                for node, count in in_by_node.items())
            probe = max(graph.nodes())
            assert handle.pattern_count("node_out", name, probe) == \
                out_by_node.get(probe, 0)
            assert handle.pattern_count("node_in", name, probe) == \
                in_by_node.get(probe, 0)

    @pytest.mark.smoke
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_aggregates_equal_unsharded(self, shards, flat):
        """The ID-free lane: aggregate counts are isomorphism
        invariants, so sharded and unsharded must agree exactly."""
        handle, names = flat("rdf-identica")
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=shards, partitioner="bfs",
            validate=False)
        for name in names:
            assert sharded.pattern_count("label", name) == \
                handle.pattern_count("label", name)
            for threshold in (0, 1, 3):
                assert sharded.pattern_count("star", name,
                                             threshold) == \
                    handle.pattern_count("star", name, threshold)
            assert sharded.pattern_count("digram", name, names[0]) == \
                handle.pattern_count("digram", name, names[0])

    def test_error_vocabulary_is_shared(self, flat):
        handle, names = flat("er-random")
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        for target in (handle, sharded):
            with pytest.raises(QueryError,
                               match="unknown pattern_count kind"):
                target.pattern_count("triangle", names[0])
            with pytest.raises(QueryError, match="needs two label"):
                target.pattern_count("digram", names[0])
            with pytest.raises(QueryError, match="star threshold"):
                target.pattern_count("star", names[0], -1)
            with pytest.raises(QueryError, match="name string"):
                target.pattern_count("label", 3)


# ----------------------------------------------------------------------
# Sharded lanes: k=1 exact, k>1 truth under every forced strategy
# ----------------------------------------------------------------------
class TestShardedRPQ:
    def test_single_shard_is_bit_identical(self, flat):
        handle, names = flat("rdf-identica")
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        single = ShardedCompressedGraph.compress(
            graph, alphabet, shards=1, validate=False)
        pairs = probe_pairs(handle.node_count(), count=20)
        for pattern in corpus_patterns(names):
            for source, target in pairs:
                expected = handle.rpq(pattern, source, target)
                actual = single.rpq(pattern, source, target)
                assert actual == expected and \
                    type(actual) is type(expected)

    @pytest.mark.parametrize("corpus,shards", [
        ("rdf-identica", 2), ("rdf-identica", 4),
        ("version-dblp", 3), ("rdf-types", 2),
    ])
    def test_every_strategy_equals_own_truth(self, corpus, shards):
        graph, alphabet = SMOKE_CORPORA[corpus]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=shards, partitioner="bfs",
            validate=False)
        names = label_names(sharded.alphabet)
        truth = truth_graph(sharded)
        pairs = probe_pairs(sharded.node_count(), count=10, seed=11)
        patterns = corpus_patterns(names)[:4]
        for force in (None, "closure", "chaining", "bfs"):
            sharded._planner.force = force
            for pattern in patterns:
                dfa = compile_pattern(pattern)
                for source, target in pairs:
                    expected = truth_rpq(truth, dfa, source, target)
                    assert sharded._rpq_uncached(
                        pattern, source, target) == expected, \
                        (corpus, shards, force, pattern, source, target)
        sharded._planner.force = None

    @pytest.mark.smoke
    def test_out_edges_match_decompressed_truth(self):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=3, partitioner="bfs",
            validate=False)
        val = sharded.decompress()
        expected = {}
        for _, edge in val.edges():
            expected.setdefault(edge.att[0], set()).add(
                (edge.label, edge.att[1]))
        for node in probe_pairs(sharded.node_count(), count=15):
            node = node[0]
            assert sharded.out_edges(node) == sorted(
                [list(pair) for pair in expected.get(node, set())])

    def test_planner_prices_rpq_routes(self):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, partitioner="bfs",
            validate=False)
        planner = sharded._planner
        # More states -> strictly costlier closure builds; a huge
        # automaton must eventually fall out of the probe budget.
        assert planner.rpq_closure_allowed(1) == \
            planner.closure_allowed
        assert not planner.rpq_closure_allowed(10 ** 6)
        strategy = planner.rpq_strategy(0, 1, 2)
        assert strategy in ("local", "closure", "chaining", "bfs")
        assert planner.rpq_strategy(0, 1, 2, force="bfs") == "bfs"
        # A per-call force never leaks into reach planning.
        assert planner.force is None


# ----------------------------------------------------------------------
# Persistence: the GRPS 'R' trailer section
# ----------------------------------------------------------------------
class TestClosurePersistence:
    def build(self, shards=2):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        return ShardedCompressedGraph.compress(
            graph, alphabet, shards=shards, partitioner="bfs",
            validate=False)

    def test_roundtrip_preserves_closures_and_answers(self):
        sharded = self.build()
        names = label_names(sharded.alphabet)
        pattern = f"(<{names[0]}>|<{names[-1]}>)+"
        sharded.warm_rpq_closure(pattern)
        sharded.warm_rpq_closure(f"<{names[0]}>")
        assert sharded.rpq_closures_built == 2
        assert not sharded.rpq_closures_persisted
        blob = sharded.to_bytes()
        rpq_blob = decode_sharded_container(blob).rpq_closures
        assert rpq_blob is not None
        assert sharded.rpq_closures_persisted
        loaded = ShardedCompressedGraph.from_bytes(blob)
        assert loaded.rpq_closures_built == 2
        assert loaded.rpq_closures_persisted
        # The loaded closure answers without rebuilding: equivalent
        # patterns (same canonical DFA) reuse the persisted rows.
        dfa = compile_pattern(pattern)
        assert dfa.key in loaded._rpq_closures
        loaded._planner.force = "closure"
        pairs = probe_pairs(sharded.node_count(), count=12, seed=23)
        sharded._planner.force = "closure"
        for source, target in pairs:
            assert loaded.rpq(pattern, source, target) == \
                sharded.rpq(pattern, source, target)

    def test_closure_equality_and_codec(self):
        sharded = self.build()
        names = label_names(sharded.alphabet)
        closure = sharded.warm_rpq_closure(f"<{names[0]}>+")
        again = ProductClosure.from_bytes(closure.to_bytes())
        assert again == closure
        assert again.num_states == closure.num_states

    def test_corrupt_sections_rejected(self):
        sharded = self.build()
        names = label_names(sharded.alphabet)
        sharded.warm_rpq_closure(f"<{names[0]}>")
        blob = sharded.to_bytes()
        rpq_blob = decode_sharded_container(blob).rpq_closures
        with pytest.raises(EncodingError, match="rpq closure"):
            from repro.sharding import _decode_rpq_closures
            _decode_rpq_closures(rpq_blob[:-2])

    def test_save_roundtrip_through_files(self, tmp_path):
        sharded = self.build()
        names = label_names(sharded.alphabet)
        sharded.warm_rpq_closure(f"<{names[0]}>")
        path = tmp_path / "with-rpq.grps"
        sharded.save(path)
        loaded = ShardedCompressedGraph.open(path)
        assert loaded.rpq_closures_built == 1
        assert loaded.stats["rpq_closures"] == 1


# ----------------------------------------------------------------------
# Serving: socket round trips, bounded with SIGALRM
# ----------------------------------------------------------------------
class TestServedRPQ:
    @pytest.fixture(scope="class")
    def deployment(self):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, partitioner="bfs",
            validate=False)
        names = label_names(sharded.alphabet)
        sharded.warm_rpq_closure(f"(<{names[0]}>|<{names[-1]}>)+")
        servers = {codec: GraphServer(sharded.to_bytes(),
                                      codec=codec).start()
                   for codec in ("json", "binary")}
        yield sharded, names, servers
        for server in servers.values():
            server.close()

    def requests(self, names, total_nodes):
        rng = random.Random(31)
        requests = [
            ("rpq", f"(<{names[0]}>|<{names[-1]}>)+", 1, 2),
            ("rpq", f"<{names[0]}> .", 3, 40),
            ("pattern_count", "label", names[0]),
            ("pattern_count", "digram", names[0], names[-1]),
            ("pattern_count", "star", names[0], 1),
            ("out_edges", 5),
        ]
        requests += [("rpq", f"<{names[0]}>+",
                      rng.randint(1, total_nodes),
                      rng.randint(1, total_nodes)) for _ in range(6)]
        return requests

    @pytest.mark.smoke
    @pytest.mark.timeout(120)
    def test_served_answers_are_bit_identical(self, deployment):
        sharded, names, servers = deployment
        requests = self.requests(names, sharded.node_count())
        truth = sharded.batch(requests)
        for codec, server in servers.items():
            with server.connect() as client:
                answers = client.batch(requests)
            assert answers == truth, codec
            for expected, actual in zip(truth, answers):
                assert type(actual) is type(expected)

    @pytest.mark.timeout(120)
    def test_pipelined_client_agrees(self, deployment):
        sharded, names, servers = deployment
        requests = self.requests(names, sharded.node_count())
        truth = sharded.batch(requests)
        with servers["binary"].connect(pipeline=True,
                                       pool_size=2) as client:
            futures = [client.execute_async(requests)
                       for _ in range(4)]
            for future in futures:
                values = [result.unwrap()
                          for result in future.result(60)]
                assert values == truth

    @pytest.mark.timeout(120)
    def test_served_errors_match_in_process(self, deployment):
        sharded, names, servers = deployment
        bad = [("rpq", "a(b", 1, 2),
               ("pattern_count", "triangle", names[0]),
               ("rpq", names[0], 0, 1)]
        local = sharded.execute(bad)
        with servers["json"].connect() as client:
            remote = client.execute(bad)
        assert [r.ok for r in remote] == [r.ok for r in local]
        assert [r.error for r in remote] == [r.error for r in local]
