"""Differential suite: the incremental engine against the recount oracle.

The incremental engine (``engine="incremental"``) maintains occurrence
lists and the bucket queue purely by local deltas; the legacy engine
(``engine="recount"``) restores them with full counting passes.  On
every dataset family both must

* produce grammars that decompress to the original graph,
* end up with near-identical grammar sizes (the drain trajectories are
  designed to coincide; tolerance covers residual queue-order skew),
* report sane instrumentation — in particular the incremental engine
  must never perform a full re-count pass.
"""

import pytest

from helpers import degree_label_fingerprint, isomorphic

from repro import GRePairSettings, compress, derive
from repro.core.digram import occurrence_is_current
from repro.core.occurrences import BucketQueue, OccurrenceTable
from repro.core.repair import GRePair
from repro.datasets.rdf import (
    identica_graph,
    properties_graph,
    star_burst_graph,
    types_graph,
)
from repro.datasets.synthetic import (
    coauthorship_graph,
    communication_graph,
    copy_model_graph,
    random_graph,
)
from repro.datasets.versions import (
    dblp_version_graph,
    fig13_base_graph,
    identical_copies,
)

#: Relative grammar-size tolerance between the engines.  The drain
#: trajectories are engineered to coincide, so this is usually 0; the
#: allowance covers bucket-resolution skew (the incremental engine
#: keeps one queue sized for the original graph, the oracle re-sizes
#: per pass).
SIZE_TOLERANCE = 0.01

# Every synthetic family plus RDF-like and version-graph shapes.
CORPUS = [
    ("er-random", lambda: random_graph(80, 220, seed=11)),
    ("coauthorship", lambda: coauthorship_graph(60, seed=12)),
    ("communication", lambda: communication_graph(100, 320, seed=13)),
    ("copy-model", lambda: copy_model_graph(90, seed=14)),
    ("rdf-types", lambda: types_graph(150, seed=15)),
    ("rdf-properties", lambda: properties_graph(40, seed=16)),
    ("rdf-starburst", lambda: star_burst_graph(4, 40, seed=17)),
    ("rdf-identica", lambda: identica_graph(30, seed=18)),
    ("version-copies", lambda: identical_copies(fig13_base_graph(), 32)),
    ("version-dblp", lambda: dblp_version_graph(3, 14, seed=19)),
]

ORDERS = ["fp", "natural"]


def _both_engines(graph, alphabet, order="fp", **kwargs):
    results = {}
    for engine in ("incremental", "recount"):
        results[engine] = compress(
            graph, alphabet,
            GRePairSettings(engine=engine, order=order, **kwargs),
            validate=True,
        )
    return results["incremental"], results["recount"]


@pytest.mark.smoke
@pytest.mark.parametrize("name,builder", CORPUS, ids=[c[0] for c in CORPUS])
def test_both_engines_roundtrip_and_agree(name, builder):
    graph, alphabet = builder()
    incremental, recount = _both_engines(graph, alphabet)

    # Lossless under both engines.
    for result in (incremental, recount):
        val = derive(result.grammar)
        assert val.node_size == graph.node_size
        assert val.num_edges == graph.num_edges
        assert degree_label_fingerprint(val) == \
            degree_label_fingerprint(graph)
        if graph.num_edges <= 250:
            assert isomorphic(val, graph)

    # Near-identical compression quality.
    size_inc = incremental.grammar.size
    size_rec = recount.grammar.size
    assert size_inc <= size_rec * (1 + SIZE_TOLERANCE) + 1, (
        f"{name}: incremental |G|={size_inc} vs recount |G|={size_rec}"
    )

    # The incremental engine never re-counts within a phase: it seeds
    # each phase (main loop, virtual-edge loop) with exactly one pass.
    # The oracle re-counts after every productive drain.
    phases = 2 if incremental.stats["virtual_edges_added"] else 1
    assert incremental.stats["recount_passes"] == 0
    assert incremental.stats["passes"] == phases
    assert recount.stats["recount_passes"] == \
        recount.stats["passes"] - phases


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engines_agree_across_orders_and_seeds(order, seed):
    graph, alphabet = random_graph(50, 140, seed=100 + seed)
    incremental, recount = _both_engines(graph, alphabet, order=order)
    assert isomorphic(derive(incremental.grammar), graph)
    assert isomorphic(derive(recount.grammar), graph)
    assert incremental.grammar.size <= \
        recount.grammar.size * (1 + SIZE_TOLERANCE) + 1


@pytest.mark.parametrize("max_rank", [2, 3, 5])
def test_engines_agree_across_max_rank(max_rank):
    graph, alphabet = coauthorship_graph(40, seed=7)
    incremental, recount = _both_engines(graph, alphabet,
                                         max_rank=max_rank)
    assert isomorphic(derive(incremental.grammar), graph)
    assert isomorphic(derive(recount.grammar), graph)
    assert incremental.grammar.size <= \
        recount.grammar.size * (1 + SIZE_TOLERANCE) + 1


@pytest.mark.smoke
def test_incremental_replacement_counts_match_oracle():
    """Occurrence replacement totals coincide, not just sizes."""
    graph, alphabet = communication_graph(80, 240, seed=3)
    incremental, recount = _both_engines(graph, alphabet)
    assert incremental.stats["occurrences_replaced"] == \
        pytest.approx(recount.stats["occurrences_replaced"], rel=0.02)


class TestMaintainedStateInvariants:
    """White-box checks of the incremental engine's invariants."""

    def _run_main_loop(self, graph, alphabet):
        algorithm = GRePair(graph.copy(), alphabet.copy(),
                            virtual_edges=False, prune=False)
        algorithm.run()
        return algorithm

    def test_final_state_is_saturated(self):
        """After the run, a fresh count finds no active digram.

        This is the heart of the "no re-count needed" claim: nothing a
        full counting pass could discover is missing from the
        incrementally maintained state.
        """
        graph, alphabet = coauthorship_graph(40, seed=21)
        algorithm = self._run_main_loop(graph, alphabet)
        table = OccurrenceTable()
        queue = BucketQueue(algorithm.graph.num_edges)
        probe = GRePair(algorithm.graph, algorithm.alphabet,
                        engine="recount")
        # The probe must count in the engine's own ω: the greedy
        # pairing construction is order-sensitive, so saturation is
        # defined relative to the order the engine maintains.
        probe._set_order([node for node in algorithm._order
                          if algorithm.graph.has_node(node)])
        probe._count_all(table, queue)
        active = [key for key in table.keys()
                  if len(table.get(key)) >= 2]
        assert active == []

    def test_recorded_occurrences_stay_current(self):
        """Maintained occurrences always reference live, current keys."""
        graph, alphabet = copy_model_graph(60, seed=22)
        algorithm = self._run_main_loop(graph, alphabet)
        table = algorithm._table
        live_graph = algorithm.graph
        for key in table.keys():
            for occ in list(table.get(key)):
                assert occurrence_is_current(live_graph, key, occ)

    def test_settles_touch_fewer_nodes_than_recount_passes(self):
        """The settle mechanism must beat whole-graph re-counting."""
        graph, alphabet = communication_graph(150, 450, seed=23)
        incremental, recount = _both_engines(graph, alphabet)
        # The oracle walks every live node once per pass; the settle
        # rounds only walk dirty regions.
        recount_node_visits = \
            recount.stats["recount_passes"] * graph.node_size
        assert incremental.stats["nodes_recounted"] < recount_node_visits
