"""Cross-cutting edge cases: hyperedge encodings, index inversion,
mapping recovery, odd graph shapes."""

import pytest

from helpers import isomorphic

from repro import (
    Alphabet,
    GRePairSettings,
    Hypergraph,
    SLHRGrammar,
    compress,
    derive,
)
from repro.core.derivation import derive_with_mapping
from repro.encoding import decode_grammar, encode_grammar
from repro.exceptions import QueryError
from repro.queries import GrammarQueries
from repro.queries.index import GrammarIndex


def _hyper_nt_graph():
    """A graph whose compression provably mints rank-3 nonterminals.

    Many copies of a wedge whose three nodes all carry extra edges:
    the (a, b) digram has rank 3, is frequent, and saves size because
    the rule is shared widely (ref is high).
    """
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    c = alphabet.add_terminal(2, "c")
    graph = Hypergraph()
    anchor = graph.add_node()
    for _ in range(24):
        x = graph.add_node()
        y = graph.add_node()
        z = graph.add_node()
        graph.add_edge(a, (x, y))
        graph.add_edge(b, (y, z))
        # anchor edges keep x, y, z external
        graph.add_edge(c, (anchor, x))
        graph.add_edge(c, (anchor, y))
        graph.add_edge(c, (anchor, z))
    return graph, alphabet


class TestHyperedgeNonterminals:
    """Rank >= 3 nonterminals only survive with pruning disabled.

    A bare rank-3 digram rule has |rhs| <= 6 = |handle(3)|, so
    con(A) <= -|rhs| < 0 — the paper's own size arithmetic makes
    pruning remove every plain hyperedge rule (this is why Table IV
    finds little benefit beyond maxRank 2-4; asserted here).  To
    exercise hyperedge nonterminals end to end we compress with
    prune=False.
    """

    def test_plain_rank3_rules_never_contribute(self):
        from repro.core.grammar import handle_size
        # rank-3 digram: at most 4 nodes (one internal) + 2 edges.
        assert 4 + 2 <= handle_size(3)
        assert 4 + 2 < handle_size(4) + 1

    def test_rank3_rules_created_without_pruning(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(max_rank=4, prune=False))
        ranks = {rule.rhs.rank for rule in result.grammar.rules()}
        assert any(rank >= 3 for rank in ranks)

    def test_pruning_removes_plain_hyperedge_rules(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet, GRePairSettings(max_rank=4))
        for rule in result.grammar.rules():
            if rule.rhs.rank >= 3:
                # Only inlining-grown rules may survive.
                assert rule.rhs.num_edges > 2

    def test_container_roundtrip_with_hyperedges(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(max_rank=4, prune=False))
        decoded = decode_grammar(encode_grammar(result.grammar))
        original = derive(result.grammar.canonicalize())
        restored = derive(decoded)
        assert original.edge_multiset() == restored.edge_multiset()
        assert original.node_size == restored.node_size

    def test_queries_with_hyperedge_nonterminals(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(max_rank=4, prune=False))
        queries = GrammarQueries(result.grammar)
        val = derive(result.grammar.canonicalize())
        out = {v: set() for v in val.nodes()}
        for _, edge in val.edges():
            out[edge.att[0]].add(edge.att[1])
        for node in val.nodes():
            assert set(queries.out_neighbors(node)) == out[node]

    def test_isomorphic_roundtrip(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(max_rank=4, prune=False))
        assert isomorphic(derive(result.grammar), graph)


class TestIndexInversion:
    def test_get_id_resolves_externals(self):
        """get_id accepts external nodes of the last rhs (paper's
        getID walks parents)."""
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        index = GrammarIndex(canonical)
        for node_id in range(1, index.total_nodes + 1):
            rep = index.locate(node_id)
            if not rep.edges:
                continue
            host = index.host_of(rep)
            # Resolve every node of this host through the same path.
            for node in host.nodes():
                resolved = index.get_id(rep.edges, node)
                assert 1 <= resolved <= index.total_nodes
            break

    def test_label_of_path_errors(self):
        graph, alphabet = _hyper_nt_graph()
        result = compress(graph, alphabet)
        index = GrammarIndex(result.grammar.canonicalize())
        with pytest.raises(QueryError):
            index.label_of_path([])


class TestDeriveWithMapping:
    def test_mapping_reattaches_data_values(self):
        """The paper's phi: V -> D survives through compression."""
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        data = {}
        for i in range(6):
            node = graph.add_node()
            data[node] = f"payload-{i}"
        for i in range(1, 6):
            graph.add_edge(t, (i, i + 1))
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        val, mapping = derive_with_mapping(canonical)
        # Start-graph survivors keep traceable identities; the count of
        # all derived nodes matches the original.
        assert val.node_size == graph.node_size
        assert set(mapping.values()) <= set(val.nodes())


class TestOddShapes:
    def test_two_node_graph(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph.from_edges([(t, (1, 2)), (t, (2, 1))])
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)

    def test_all_isolated_nodes(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        for _ in range(10):
            graph.add_node()
        result = compress(graph, alphabet)
        derived = derive(result.grammar)
        assert derived.node_size == 10
        assert derived.num_edges == 0

    def test_bidirectional_clique(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(6)]
        for u in nodes:
            for v in nodes:
                if u != v:
                    graph.add_edge(t, (u, v))
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)
        queries = GrammarQueries(result.grammar)
        assert queries.connected_components() == 1
        assert queries.degrees().max_degree() == 10

    def test_long_cycle(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(257)]
        for i, node in enumerate(nodes):
            graph.add_edge(t, (node, nodes[(i + 1) % len(nodes)]))
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)
        queries = GrammarQueries(result.grammar)
        # Every node reaches every node on a directed cycle.
        assert queries.reachable(1, 200)
        assert queries.reachable(200, 1)

    def test_hyperedge_terminal_input(self):
        """Inputs may themselves contain hyperedges (the model allows
        it); compression and encoding must round-trip them."""
        alphabet = Alphabet()
        h = alphabet.add_terminal(3, "h")
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        for _ in range(12):
            a = graph.add_node()
            b = graph.add_node()
            c = graph.add_node()
            graph.add_edge(h, (a, b, c))
            graph.add_edge(t, (a, c))
        result = compress(graph, alphabet)
        decoded = decode_grammar(encode_grammar(result.grammar))
        original = derive(result.grammar.canonicalize())
        restored = derive(decoded)
        assert original.edge_multiset() == restored.edge_multiset()
