"""The multi-shard ("GRPS") container: framing, roundtrip, accounting.

The framing (magic dispatch, meta + per-shard blob splitting) lives in
:mod:`repro.encoding.container`; the meta semantics in
:mod:`repro.sharding`.  Both are exercised here, along with the
acceptance property that a save -> open roundtrip preserves every
query answer — the per-shard numbering survives because
``val(decoded)`` equals ``val(canonical)`` node for node.
"""

from __future__ import annotations

import random

import pytest

from repro import CompressedGraph, ShardedCompressedGraph, open_compressed
from repro.bench.corpora import SMOKE_CORPORA
from repro.encoding.container import (
    decode_sharded_container,
    encode_sharded_container,
    is_sharded_container,
    sharded_container_sections,
)
from repro.exceptions import EncodingError

from helpers import theta_graph


def _sharded_handle(corpus="er-random", shards=3):
    graph, alphabet = SMOKE_CORPORA[corpus]()
    return ShardedCompressedGraph.compress(graph, alphabet,
                                           shards=shards,
                                           validate=False)


class TestFraming:
    def test_magic_detection(self):
        handle = _sharded_handle()
        blob = handle.to_bytes()
        assert is_sharded_container(blob)
        graph, alphabet = theta_graph()
        single = CompressedGraph.compress(graph, alphabet)
        assert not is_sharded_container(single.to_bytes())
        assert not is_sharded_container(b"")
        assert not is_sharded_container(b"GRPR")

    def test_meta_and_blobs_roundtrip(self):
        handle = _sharded_handle(shards=2)
        blob = handle.to_bytes()
        container = decode_sharded_container(blob)
        assert container.num_shards == 2
        assert not container.has_closure  # none was built before saving
        rebuilt = encode_sharded_container(container.meta,
                                           container.shards)
        assert rebuilt.data == blob

    def test_zero_shards_rejected(self):
        with pytest.raises(EncodingError, match=">= 1 shard"):
            encode_sharded_container(b"", [])

    def test_zero_shard_file_rejected_on_decode(self):
        # magic + version + shard-count 0 + empty meta: must be a
        # clean EncodingError, not an IndexError downstream.
        crafted = b"GRPS\x01\x00\x00"
        with pytest.raises(EncodingError, match=">= 1 shard"):
            decode_sharded_container(crafted)
        with pytest.raises(EncodingError):
            ShardedCompressedGraph.from_bytes(crafted)

    def test_non_grammar_blob_rejected(self):
        with pytest.raises(EncodingError, match="bad magic"):
            encode_sharded_container(b"", [b"not a container"])

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError, match="bad magic"):
            decode_sharded_container(b"XXXX\x01\x00\x00")

    def test_truncation_rejected(self):
        blob = _sharded_handle().to_bytes()
        with pytest.raises(EncodingError):
            decode_sharded_container(blob[:len(blob) // 2])

    def test_trailing_garbage_rejected(self):
        blob = _sharded_handle().to_bytes()
        with pytest.raises(EncodingError, match="trailing"):
            decode_sharded_container(blob + b"\x00")

    def test_sections_accounting(self):
        handle = _sharded_handle(shards=3)
        container = handle.to_container()
        sections = container.section_bytes
        assert sections["header"] == 5
        assert sections["meta"] > 0
        for shard in range(3):
            for name in ("header", "alphabet", "start", "rules"):
                assert f"shard{shard}/{name}" in sections
        framing = 5 + sections["meta"]
        accounted = sum(size for key, size in sections.items()
                        if key.startswith("shard") or key == "meta")
        # header + meta + shard payloads + per-blob length varints
        assert accounted + 5 <= container.total_bytes
        assert sections == sharded_container_sections(container.data)

    def test_sections_of_garbage_is_empty(self):
        assert sharded_container_sections(b"nonsense") == {}


class TestRoundtrip:
    @pytest.mark.parametrize("corpus", ["er-random", "version-copies"])
    def test_queries_survive_save_open(self, corpus, tmp_path):
        handle = _sharded_handle(corpus, shards=4)
        path = tmp_path / "graph.grps"
        saved = handle.save(path)
        assert saved.total_bytes == path.stat().st_size
        reopened = ShardedCompressedGraph.open(path)
        assert reopened.num_shards == handle.num_shards
        assert reopened.node_count() == handle.node_count()
        assert reopened.edge_count() == handle.edge_count()
        assert (reopened.connected_components()
                == handle.connected_components())
        assert reopened.degree() == handle.degree()
        total = handle.node_count()
        rng = random.Random(41)
        requests = []
        for _ in range(120):
            kind = rng.choice(["out", "in", "neighborhood", "reach",
                               "path"])
            if kind in ("reach", "path"):
                requests.append((kind, rng.randint(1, total),
                                 rng.randint(1, total)))
            else:
                requests.append((kind, rng.randint(1, total)))
        assert reopened.batch(requests) == handle.batch(requests)

    def test_open_compressed_dispatches(self, tmp_path):
        sharded = _sharded_handle(shards=2)
        sharded_path = tmp_path / "a.grps"
        sharded.save(sharded_path)
        graph, alphabet = theta_graph()
        single = CompressedGraph.compress(graph, alphabet)
        single_path = tmp_path / "b.grpr"
        single.save(single_path)
        assert isinstance(open_compressed(sharded_path),
                          ShardedCompressedGraph)
        assert isinstance(open_compressed(single_path), CompressedGraph)

    def test_resave_is_stable(self, tmp_path):
        handle = _sharded_handle(shards=2)
        blob = handle.to_bytes()
        reopened = ShardedCompressedGraph.from_bytes(blob)
        assert reopened.to_bytes() == blob

    def test_loaded_handle_reports_the_loaded_file(self):
        """sizes/total_bytes come from the file, not a re-encoding."""
        handle = _sharded_handle(shards=2)
        blob = handle.to_bytes(include_names=False, k=4)
        reopened = ShardedCompressedGraph.from_bytes(blob)
        assert reopened.total_bytes == len(blob)
        assert reopened.sizes == sharded_container_sections(blob)

    def test_container_is_cached_per_parameters(self):
        handle = _sharded_handle(shards=2)
        first = handle.to_container()
        assert handle.to_container() is first          # cached
        other = handle.to_container(include_names=False)
        assert other is not first
        assert handle.to_container(include_names=False) is other

    def test_no_names_shrinks_container(self):
        handle = _sharded_handle(corpus="rdf-types", shards=2)
        assert (len(handle.to_bytes(include_names=False))
                < len(handle.to_bytes(include_names=True)))

    def test_decompress_after_open_matches(self, tmp_path):
        handle = _sharded_handle(shards=3)
        path = tmp_path / "g.grps"
        handle.save(path)
        reopened = ShardedCompressedGraph.open(path)
        assert reopened.decompress().structurally_equal(
            handle.decompress())

    def test_meta_shard_count_mismatch_rejected(self):
        handle = _sharded_handle(shards=2)
        container = decode_sharded_container(handle.to_bytes())
        with pytest.raises(EncodingError):
            ShardedCompressedGraph.from_bytes(
                encode_sharded_container(container.meta,
                                         container.shards[:1]))

    def test_bits_per_edge(self):
        handle = _sharded_handle()
        bpe = handle.bits_per_edge()
        assert bpe == pytest.approx(
            8.0 * handle.total_bytes / handle.edge_count())
        with pytest.raises(EncodingError):
            handle.bits_per_edge(0)
