"""Unit tests for the deterministic derivation val(G)."""

import pytest

from repro import Alphabet, Hypergraph, SLHRGrammar, derive
from repro.core.derivation import derive_with_mapping
from repro.exceptions import GrammarError


def _nested_grammar():
    """S -> B B;  B -> A A;  A -> a b (a doubling chain)."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    nt_a = alphabet.fresh_nonterminal(2)
    nt_b = alphabet.fresh_nonterminal(2)
    start = Hypergraph.from_edges([(nt_b, (1, 2)), (nt_b, (2, 3))],
                                  num_nodes=3)
    grammar = SLHRGrammar(alphabet, start)
    grammar.add_rule(
        nt_b,
        Hypergraph.from_edges([(nt_a, (1, 2)), (nt_a, (2, 3))],
                              ext=(1, 3)),
    )
    grammar.add_rule(
        nt_a,
        Hypergraph.from_edges([(a, (1, 2)), (b, (2, 3))], ext=(1, 3)),
    )
    return grammar, a, b


class TestDerive:
    def test_terminal_only_grammar_is_identity(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        start = Hypergraph.from_edges([(t, (1, 2))], num_nodes=3)
        grammar = SLHRGrammar(alphabet, start)
        derived = derive(grammar)
        assert derived.structurally_equal(start)

    def test_nested_expansion_sizes(self):
        grammar, a, b = _nested_grammar()
        derived = derive(grammar)
        # Each B derives 2 A's (1 internal node each) + 1 internal node.
        assert derived.node_size == 3 + 2 * (1 + 2 * 1)
        assert derived.num_edges == 8
        labels = [edge.label for _, edge in derived.edges()]
        assert labels.count(a) == 4
        assert labels.count(b) == 4

    def test_start_nodes_keep_low_ids(self):
        grammar, _, _ = _nested_grammar()
        derived, mapping = derive_with_mapping(grammar)
        assert mapping == {1: 1, 2: 2, 3: 3}
        assert sorted(derived.nodes())[:3] == [1, 2, 3]

    def test_contiguous_blocks_per_top_edge(self):
        """Nodes of val(e_i) occupy a contiguous ID range (section V)."""
        grammar, _, _ = _nested_grammar()
        derived = derive(grammar)
        # m = 3; first B-subtree gets 4,5,6; second gets 7,8,9.
        # Verify the derived path structure: 1 -(chain)-> 2 uses only
        # nodes {1, 2} union {4, 5, 6}.
        chain_nodes = set()
        for _, edge in derived.edges():
            if 4 <= edge.att[0] <= 6 or 4 <= edge.att[1] <= 6:
                chain_nodes.update(edge.att)
        assert chain_nodes <= {1, 2, 4, 5, 6}

    def test_derivation_is_deterministic(self):
        grammar, _, _ = _nested_grammar()
        first = derive(grammar)
        second = derive(grammar)
        assert first.structurally_equal(second)

    def test_max_edges_guard(self):
        grammar, _, _ = _nested_grammar()
        with pytest.raises(GrammarError):
            derive(grammar, max_edges=3)

    def test_isolated_internal_nodes_survive(self):
        """Rules may contain isolated nodes (after virtual-edge removal)."""
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        nt = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(nt, (1, 2))], num_nodes=2)
        rhs = Hypergraph.from_edges([(t, (1, 2))], num_nodes=3,
                                    ext=(1, 2))
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(nt, rhs)
        derived = derive(grammar)
        assert derived.node_size == 3  # isolated node materialized
        assert derived.num_edges == 1

    def test_matches_manual_inline(self):
        """derive == repeatedly applying inline_edge by hand."""
        grammar, _, _ = _nested_grammar()
        manual = grammar.start.copy()
        while True:
            nts = grammar.nonterminal_edges(manual)
            if not nts:
                break
            grammar.inline_edge(manual, nts[0])
        assert derive(grammar).edge_multiset() != []  # sanity
        # Same multiset of labeled attachments up to renumbering:
        derived = derive(grammar)
        assert (sorted(e.label for _, e in derived.edges())
                == sorted(e.label for _, e in manual.edges()))
        assert derived.node_size == manual.node_size
