"""Tests for the extension modules: regular path queries, compressed
traversal, string RePair, and string/tree graph embeddings."""

import random

import networkx as nx
import pytest

from helpers import copies_graph, random_simple_graph

from repro import Alphabet, Hypergraph, compress, derive
from repro.baselines.strrepair import string_repair
from repro.datasets.strings import (
    balanced_binary_tree,
    graph_to_string,
    repeated_string,
    string_to_graph,
    tree_to_graph,
)
from repro.exceptions import DatasetError, QueryError
from repro.queries import GrammarQueries
from repro.queries.index import GrammarIndex
from repro.queries.paths import LabelDFA, RegularPathQueries
from repro.queries.traversal import (
    bfs_distances,
    count_triangles,
    degree_histogram,
    shortest_path,
)


def _labeled_chain(segments):
    """Graph 1 -a-> 2 -b-> 3 ... from a label-name list."""
    alphabet = Alphabet()
    graph = Hypergraph()
    previous = graph.add_node()
    for name in segments:
        label = alphabet.ensure_terminal(name, 2)
        nxt = graph.add_node()
        graph.add_edge(label, (previous, nxt))
        previous = nxt
    return graph, alphabet


class TestLabelDFA:
    def test_word_automaton(self):
        dfa = LabelDFA.word([1, 2, 1])
        state = dfa.start
        for label in (1, 2, 1):
            state = dfa.step(state, label)
        assert state in dfa.accepting
        assert dfa.step(dfa.start, 2) is None

    def test_star_accepts_empty(self):
        dfa = LabelDFA.star(3)
        assert dfa.start in dfa.accepting

    def test_plus_requires_one(self):
        dfa = LabelDFA.plus(3)
        assert dfa.start not in dfa.accepting
        assert dfa.step(dfa.start, 3) in dfa.accepting

    def test_invalid_states_rejected(self):
        with pytest.raises(QueryError):
            LabelDFA(1, 5, [0], {})
        with pytest.raises(QueryError):
            LabelDFA(1, 0, [9], {})


class TestRegularPathQueries:
    def _rpq(self, graph, alphabet, dfa):
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        index = GrammarIndex(canonical)
        return RegularPathQueries(index, dfa), canonical

    def test_word_query_on_chain(self):
        graph, alphabet = _labeled_chain(["a", "b", "a", "b"])
        a = alphabet.by_name("a")
        b = alphabet.by_name("b")
        rpq, canonical = self._rpq(graph, alphabet,
                                   LabelDFA.word([a, b]))
        val = derive(canonical)
        # Find the path order in val: node with in-degree 0 is start.
        # The chain is 5 nodes; (start -> start+2 hops) matches "ab".
        indeg = {v: 0 for v in val.nodes()}
        succ = {}
        for _, e in val.edges():
            succ[e.att[0]] = e.att[1]
            indeg[e.att[1]] += 1
        start = next(v for v in val.nodes() if indeg[v] == 0)
        second = succ[start]
        third = succ[second]
        assert rpq.matches(start, third)        # spells "ab"
        assert not rpq.matches(start, second)   # spells "a"

    def test_star_query_reduces_to_reachability(self):
        graph, alphabet = random_simple_graph(4, num_nodes=20,
                                              num_edges=50,
                                              num_labels=1)
        label = alphabet.by_name("L0")
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        rpq = RegularPathQueries(GrammarIndex(canonical),
                                 LabelDFA.any_path([label]))
        queries = GrammarQueries(result.grammar)
        val = derive(canonical)
        rng = random.Random(3)
        nodes = sorted(val.nodes())
        for _ in range(150):
            s, t = rng.choice(nodes), rng.choice(nodes)
            assert rpq.matches(s, t) == queries.reachable(s, t)

    def test_label_constrained_vs_networkx(self):
        graph, alphabet = random_simple_graph(6, num_nodes=18,
                                              num_edges=55,
                                              num_labels=2)
        a = alphabet.by_name("L0")
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        rpq = RegularPathQueries(GrammarIndex(canonical),
                                 LabelDFA.plus(a))
        val = derive(canonical)
        truth = nx.DiGraph()
        truth.add_nodes_from(val.nodes())
        for _, edge in val.edges():
            if edge.label == a:
                truth.add_edge(*edge.att)
        for s in truth.nodes():
            reach = nx.descendants(truth, s)
            for t in truth.nodes():
                if s == t:
                    # a+ from s back to s needs a genuine a-cycle
                    # (nx.descendants always excludes the source).
                    expected = any(
                        s == mid or s in nx.descendants(truth, mid)
                        for mid in truth.successors(s))
                else:
                    expected = t in reach
                assert rpq.matches(s, t) == expected, (s, t)

    def test_rpq_on_compressed_copies(self):
        """Deep grammar: a+ inside each copy."""
        graph, alphabet = copies_graph(16)
        a = alphabet.by_name("a")
        result = compress(graph, alphabet)
        canonical = result.grammar.canonicalize()
        rpq = RegularPathQueries(GrammarIndex(canonical),
                                 LabelDFA.plus(a))
        val = derive(canonical)
        truth = nx.DiGraph()
        truth.add_nodes_from(val.nodes())
        for _, edge in val.edges():
            if edge.label == a:
                truth.add_edge(*edge.att)
        rng = random.Random(8)
        nodes = sorted(val.nodes())
        for _ in range(200):
            s, t = rng.choice(nodes), rng.choice(nodes)
            expected = s != t and nx.has_path(truth, s, t)
            if s == t:
                expected = False  # a+ needs at least one edge... unless
                # a self-returning a-cycle exists:
                expected = any(
                    t in nx.descendants(truth, mid)
                    for mid in truth.successors(s)
                ) if truth.out_degree(s) else False
            assert rpq.matches(s, t) == expected, (s, t)


class TestTraversal:
    def _setup(self, seed=1):
        graph, alphabet = random_simple_graph(seed, num_nodes=25,
                                              num_edges=60)
        result = compress(graph, alphabet)
        queries = GrammarQueries(result.grammar)
        val = derive(result.grammar.canonicalize())
        truth = nx.DiGraph()
        truth.add_nodes_from(val.nodes())
        for _, edge in val.edges():
            truth.add_edge(*edge.att)
        return queries, truth

    def test_bfs_distances(self):
        queries, truth = self._setup()
        source = 1
        ours = bfs_distances(queries, source)
        expected = nx.single_source_shortest_path_length(truth, source)
        assert ours == dict(expected)

    def test_bfs_max_hops(self):
        queries, truth = self._setup()
        limited = bfs_distances(queries, 1, max_hops=2)
        assert all(d <= 2 for d in limited.values())

    def test_shortest_path(self):
        queries, truth = self._setup()
        rng = random.Random(0)
        nodes = sorted(truth.nodes())
        for _ in range(20):
            s, t = rng.choice(nodes), rng.choice(nodes)
            path = shortest_path(queries, s, t)
            if path is None:
                assert not nx.has_path(truth, s, t)
            else:
                assert path[0] == s and path[-1] == t
                assert len(path) - 1 == nx.shortest_path_length(
                    truth, s, t)
                for u, v in zip(path, path[1:]):
                    assert truth.has_edge(u, v)

    def test_degree_histogram(self):
        queries, truth = self._setup()
        ours = degree_histogram(queries)
        expected = {}
        for node in truth.nodes():
            expected[truth.out_degree(node)] = expected.get(
                truth.out_degree(node), 0) + 1
        assert dict(ours) == expected

    def test_count_triangles(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph.from_edges(
            [(t, (1, 2)), (t, (2, 3)), (t, (3, 1)),   # triangle
             (t, (3, 4)), (t, (4, 5))])
        result = compress(graph, alphabet)
        queries = GrammarQueries(result.grammar)
        assert count_triangles(queries) == 1

    def test_out_of_range_source(self):
        queries, _ = self._setup()
        with pytest.raises(QueryError):
            bfs_distances(queries, 0)
        with pytest.raises(QueryError):
            shortest_path(queries, 1, 10_000)


class TestStringRePair:
    def test_abab_example(self):
        """The paper's introduction: ababab -> S=AAA, A=ab (size 5)."""
        grammar = string_repair([1, 2, 1, 2, 1, 2])
        assert grammar.expand() == [1, 2, 1, 2, 1, 2]
        assert grammar.size <= 5

    def test_abcabcabc_example(self):
        """Section III's example with pruning: B -> abc."""
        grammar = string_repair([1, 2, 3] * 3)
        assert grammar.expand() == [1, 2, 3] * 3
        # After pruning: S -> BBB, B -> abc: size 3 + 3 = 6.
        assert grammar.size == 6

    def test_incompressible_string(self):
        grammar = string_repair([1, 2, 3, 4, 5, 6])
        assert grammar.size == 6
        assert not grammar.rules

    def test_random_roundtrip(self):
        rng = random.Random(9)
        for _ in range(10):
            text = [rng.randrange(4) + 1
                    for _ in range(rng.randrange(1, 200))]
            grammar = string_repair(text)
            assert grammar.expand() == text
            assert grammar.size <= len(text)

    def test_overlapping_runs(self):
        """aaa...: non-overlap counting must not loop or miscount."""
        grammar = string_repair([7] * 64)
        assert grammar.expand() == [7] * 64
        assert grammar.size < 16  # doubling hierarchy


class TestStringGraphs:
    def test_string_roundtrip(self):
        graph, alphabet = string_to_graph("abracadabra")
        assert graph_to_string(graph, alphabet) == list("abracadabra")

    def test_empty_string_rejected(self):
        with pytest.raises(DatasetError):
            string_to_graph("")

    def test_section6_claim_on_repetitive_string(self):
        """gRePair on a string graph compresses like string RePair."""
        text = repeated_string("ab", 64)
        graph, alphabet = string_to_graph(text)
        graph_result = compress(graph, alphabet)
        string_grammar = string_repair(
            [1 if c == "a" else 2 for c in text])
        # Grammar sizes in the same ballpark (graphs pay for nodes).
        assert graph_result.grammar.size <= 6 * string_grammar.size
        assert derive(graph_result.grammar).num_edges == len(text)

    def test_tree_embedding(self):
        tree = balanced_binary_tree(3)
        graph, alphabet = tree_to_graph(tree)
        assert graph.node_size == 2 ** 4 - 1
        assert graph.num_edges == 2 ** 4 - 2 + 1  # edges + root marker

    def test_tree_compresses(self):
        tree = balanced_binary_tree(6)  # 127 nodes, very repetitive
        graph, alphabet = tree_to_graph(tree)
        result = compress(graph, alphabet)
        assert result.size_ratio < 0.35
        derived = derive(result.grammar)
        assert derived.node_size == graph.node_size
        assert derived.num_edges == graph.num_edges

    def test_balanced_tree_validation(self):
        with pytest.raises(DatasetError):
            balanced_binary_tree(-1)
        with pytest.raises(DatasetError):
            repeated_string("ab", 0)
