"""Tests for the benchmark support layer (metrics + report)."""

from helpers import random_simple_graph, star_graph

from repro.bench import Report, baseline_sizes, bits_per_edge, \
    grepair_bytes
from repro.core.pipeline import GRePairSettings


class TestMetrics:
    def test_bits_per_edge(self):
        assert bits_per_edge(100, 100) == 8.0
        assert bits_per_edge(0, 10) == 0.0
        assert bits_per_edge(10, 0) == 0.0

    def test_grepair_bytes_returns_result(self):
        graph, alphabet = star_graph(50)
        size, result = grepair_bytes(graph, alphabet)
        assert size > 0
        assert result.grammar.num_rules > 0

    def test_grepair_bytes_honors_settings(self):
        graph, alphabet = star_graph(50)
        size_v, _ = grepair_bytes(graph, alphabet,
                                  GRePairSettings(virtual_edges=True))
        size_n, _ = grepair_bytes(graph, alphabet,
                                  GRePairSettings(virtual_edges=False))
        assert size_v > 0 and size_n > 0

    def test_baseline_sizes_unlabeled_gets_all_three(self):
        graph, alphabet = random_simple_graph(1, num_labels=1)
        sizes = baseline_sizes(graph, alphabet)
        assert set(sizes) == {"k2", "lm", "hn"}

    def test_baseline_sizes_labeled_gets_k2_only(self):
        graph, alphabet = random_simple_graph(1, num_labels=3)
        sizes = baseline_sizes(graph, alphabet)
        assert set(sizes) == {"k2"}

    def test_baseline_sizes_override(self):
        graph, alphabet = random_simple_graph(1, num_labels=1)
        sizes = baseline_sizes(graph, alphabet, include_lm_hn=False)
        assert set(sizes) == {"k2"}


class TestReport:
    def setup_method(self):
        self._saved = Report.sections()
        Report.clear()

    def teardown_method(self):
        Report.clear()
        for section, lines in self._saved.items():
            for line in lines:
                Report.add(section, line)

    def test_add_and_render(self):
        Report.add("Table X", "row 1")
        Report.add("Table X", "row 2")
        Report.add("Figure Y", "point")
        rendered = Report.render()
        assert "Table X" in rendered
        assert rendered.index("row 1") < rendered.index("row 2")
        assert "Figure Y" in rendered

    def test_sections_snapshot(self):
        Report.add("S", "line")
        snapshot = Report.sections()
        assert snapshot == {"S": ["line"]}

    def test_dump(self, tmp_path):
        Report.add("S", "line")
        target = tmp_path / "sub" / "report.txt"
        Report.dump(target)
        assert "line" in target.read_text()

    def test_clear(self):
        Report.add("S", "line")
        Report.clear()
        assert Report.render().strip() == ""
