"""Tests for start-graph, rule and container serialization."""

import pytest

from helpers import copies_graph, random_simple_graph, star_graph, \
    theta_graph

from repro import (
    Alphabet,
    GRePairSettings,
    Hypergraph,
    SLHRGrammar,
    compress,
    derive,
)
from repro.encoding import (
    GrammarFile,
    decode_grammar,
    encode_grammar,
)
from repro.encoding.startgraph import decode_start_graph, \
    encode_start_graph
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter


def _roundtrip_start(graph: Hypergraph, alphabet: Alphabet) -> Hypergraph:
    writer = BitWriter()
    encode_start_graph(graph, writer)
    reader = BitReader(writer.to_bytes(), len(writer))
    return decode_start_graph(reader, alphabet)


class TestStartGraph:
    def test_simple_roundtrip(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        b = alphabet.add_terminal(2, "b")
        graph = Hypergraph.from_edges(
            [(a, (1, 2)), (a, (2, 3)), (b, (3, 1))], num_nodes=3)
        decoded = _roundtrip_start(graph, alphabet)
        assert decoded.edge_multiset() == graph.edge_multiset()
        assert decoded.node_size == 3

    def test_isolated_nodes_preserved(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        graph = Hypergraph.from_edges([(a, (1, 2))], num_nodes=5)
        decoded = _roundtrip_start(graph, alphabet)
        assert decoded.node_size == 5

    def test_parallel_edges_survive(self):
        """Duplicate NT edges (paper Fig. 1: S = AAA) need the escape."""
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        graph = Hypergraph.from_edges(
            [(a, (1, 2)), (a, (1, 2)), (a, (1, 2))], num_nodes=2)
        decoded = _roundtrip_start(graph, alphabet)
        assert decoded.num_edges == 3

    def test_hyperedges_keep_attachment_order(self):
        alphabet = Alphabet()
        h = alphabet.add_terminal(3, "h")
        graph = Hypergraph.from_edges(
            [(h, (3, 1, 2)), (h, (2, 3, 4)), (h, (4, 2, 1))],
            num_nodes=4)
        decoded = _roundtrip_start(graph, alphabet)
        assert (sorted(e.att for _, e in decoded.edges())
                == sorted(e.att for _, e in graph.edges()))

    def test_rank1_edges(self):
        alphabet = Alphabet()
        mark = alphabet.add_terminal(1, "mark")
        graph = Hypergraph.from_edges([(mark, (2,)), (mark, (4,))],
                                      num_nodes=4)
        decoded = _roundtrip_start(graph, alphabet)
        assert decoded.edge_multiset() == graph.edge_multiset()

    def test_non_canonical_input_rejected(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        graph = Hypergraph()
        graph.add_node(3)
        graph.add_node(7)
        graph.add_edge(a, (3, 7))
        with pytest.raises(EncodingError):
            encode_start_graph(graph, BitWriter())

    def test_external_sequence_roundtrip(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        graph = Hypergraph.from_edges([(a, (1, 2))], num_nodes=3)
        graph.set_external((2, 1))
        decoded = _roundtrip_start(graph, alphabet)
        assert decoded.ext == (2, 1)


class TestContainer:
    def _check_exact(self, graph, alphabet, settings=None):
        result = compress(graph, alphabet,
                          settings or GRePairSettings())
        blob = encode_grammar(result.grammar)
        decoded = decode_grammar(blob)
        original_val = derive(result.grammar.canonicalize())
        decoded_val = derive(decoded)
        assert original_val.node_size == decoded_val.node_size
        assert original_val.edge_multiset() == decoded_val.edge_multiset()
        return blob, decoded

    def test_theta_exact(self):
        self._check_exact(*theta_graph())

    def test_copies_exact(self):
        self._check_exact(*copies_graph(32))

    def test_star_exact(self):
        self._check_exact(*star_graph(100))

    def test_random_exact(self):
        self._check_exact(*random_simple_graph(3))

    def test_magic_checked(self):
        with pytest.raises(EncodingError):
            decode_grammar(b"NOPE" + b"\x00" * 10)

    def test_version_checked(self):
        graph, alphabet = theta_graph()
        blob = encode_grammar(compress(graph, alphabet).grammar)
        corrupted = blob.data[:4] + b"\x7f" + blob.data[5:]
        with pytest.raises(EncodingError):
            decode_grammar(corrupted)

    def test_file_io(self, tmp_path):
        graph, alphabet = theta_graph()
        blob = encode_grammar(compress(graph, alphabet).grammar)
        path = tmp_path / "grammar.grpr"
        blob.write(path)
        loaded = GrammarFile.read(path)
        assert loaded.data == blob.data
        decode_grammar(loaded)  # parses fine

    def test_section_accounting(self):
        graph, alphabet = copies_graph(16)
        blob = encode_grammar(compress(graph, alphabet).grammar)
        sections = blob.section_bytes
        assert set(sections) == {"header", "alphabet", "start", "rules"}
        assert sum(sections.values()) <= blob.total_bytes

    def test_bits_per_edge(self):
        graph, alphabet = theta_graph()
        blob = encode_grammar(compress(graph, alphabet).grammar)
        assert blob.bits_per_edge(6) == pytest.approx(
            8.0 * blob.total_bytes / 6)
        with pytest.raises(EncodingError):
            blob.bits_per_edge(0)

    def test_names_optional(self):
        graph, alphabet = theta_graph()
        grammar = compress(graph, alphabet).grammar
        with_names = encode_grammar(grammar, include_names=True)
        without = encode_grammar(grammar, include_names=False)
        assert without.total_bytes < with_names.total_bytes
        decoded = decode_grammar(with_names)
        assert decoded.alphabet.by_name("a")

    def test_label_compaction_drops_pruned_nonterminals(self):
        graph, alphabet = copies_graph(32)
        result = compress(graph, alphabet)
        blob = encode_grammar(result.grammar)
        decoded = decode_grammar(blob)
        # Every nonterminal in the decoded alphabet has a rule.
        for label in decoded.alphabet.nonterminals():
            assert decoded.has_rule(label)

    def test_terminal_ids_stable_under_compaction(self):
        graph, alphabet = copies_graph(8)
        result = compress(graph, alphabet)
        decoded = decode_grammar(encode_grammar(result.grammar))
        assert decoded.alphabet.by_name("a") == alphabet.by_name("a")
        assert decoded.alphabet.by_name("b") == alphabet.by_name("b")

    def test_empty_graph_container(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "t")
        grammar = SLHRGrammar(alphabet, Hypergraph())
        decoded = decode_grammar(encode_grammar(grammar))
        assert decoded.start.node_size == 0
        assert decoded.num_rules == 0

    def test_determinism(self):
        graph, alphabet = copies_graph(16)
        first = encode_grammar(compress(graph, alphabet).grammar)
        second = encode_grammar(compress(graph, alphabet).grammar)
        assert first.data == second.data
