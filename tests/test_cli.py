"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.tsv"
    lines = ["# a theta graph plus a tail"]
    for mid in (3, 4, 5):
        lines.append(f"1\t{mid}\ta")
        lines.append(f"{mid}\t2\tb")
    lines.append("2\t6\tc")
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def compressed(tmp_path, edge_list):
    out = tmp_path / "graph.grpr"
    assert main(["compress", str(edge_list), str(out)]) == 0
    return out


class TestCompress:
    def test_creates_container(self, compressed):
        assert compressed.exists()
        assert compressed.read_bytes()[:4] == b"GRPR"

    def test_options(self, tmp_path, edge_list, capsys):
        out = tmp_path / "custom.grpr"
        code = main(["compress", str(edge_list), str(out),
                     "--max-rank", "2", "--order", "bfs",
                     "--no-prune", "--no-names"])
        assert code == 0
        assert "bpe" in capsys.readouterr().out

    def test_no_validate(self, tmp_path, edge_list, capsys):
        out = tmp_path / "novalidate.grpr"
        code = main(["compress", str(edge_list), str(out),
                     "--no-validate"])
        assert code == 0
        assert out.exists()
        # Same container either way: validation is a check, not a step.
        checked = tmp_path / "checked.grpr"
        assert main(["compress", str(edge_list), str(checked)]) == 0
        assert out.read_bytes() == checked.read_bytes()

    def test_missing_input(self, tmp_path, capsys):
        code = main(["compress", str(tmp_path / "nope.tsv"),
                     str(tmp_path / "out.grpr")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDecompress:
    def test_roundtrip(self, tmp_path, edge_list, compressed, capsys):
        out = tmp_path / "roundtrip.tsv"
        assert main(["decompress", str(compressed), str(out)]) == 0
        original = {tuple(line.split()) for line in
                    edge_list.read_text().splitlines()
                    if line and not line.startswith("#")}
        restored = {tuple(line.split()) for line in
                    out.read_text().splitlines() if line}
        # Same number of edges and same label multiset (node IDs are
        # renumbered deterministically, per the paper).
        assert len(original) == len(restored)
        assert sorted(e[2] for e in original) == \
            sorted(e[2] for e in restored)


class TestStats:
    def test_reports_sizes(self, compressed, capsys):
        assert main(["stats", str(compressed)]) == 0
        out = capsys.readouterr().out
        assert "rules:" in out
        assert "derived graph:" in out
        assert "bpe:" in out


class TestQuery:
    def test_components(self, compressed, capsys):
        assert main(["query", str(compressed), "components"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_counts(self, compressed, capsys):
        assert main(["query", str(compressed), "nodes"]) == 0
        assert capsys.readouterr().out.strip() == "6"
        assert main(["query", str(compressed), "edges"]) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_reach_exit_codes(self, compressed, capsys):
        assert main(["query", str(compressed), "reach", "1", "2"]) == 0
        assert main(["query", str(compressed), "reach", "2", "1"]) == 1

    def test_neighbors(self, compressed, capsys):
        assert main(["query", str(compressed), "out", "1"]) == 0
        first = capsys.readouterr().out.split()
        assert len(first) == 3  # three middles

    def test_bad_arity(self, compressed, capsys):
        assert main(["query", str(compressed), "reach", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_path(self, compressed, capsys):
        assert main(["query", str(compressed), "path", "1", "6"]) == 0
        hops = capsys.readouterr().out.split()
        assert hops[0] == "1" and hops[-1] == "6"
        assert main(["query", str(compressed), "path", "6", "1"]) == 1
        assert capsys.readouterr().out.strip() == "none"

    def test_degree(self, compressed, capsys):
        assert main(["query", str(compressed), "degree", "1"]) == 0
        assert "out=3" in capsys.readouterr().out
        assert main(["query", str(compressed), "degree"]) == 0
        out = capsys.readouterr().out
        assert "max_out:" in out and "min_in:" in out

    def test_neighborhood(self, compressed, capsys):
        assert main(["query", str(compressed), "neighborhood",
                     "2"]) == 0
        # Node 2: three middles point in, one tail edge points out.
        assert len(capsys.readouterr().out.split()) == 4

    def test_rpq_exit_codes_and_output(self, compressed, capsys):
        assert main(["query", str(compressed), "rpq", "a b",
                     "1", "2"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "rpq('a b', 1, 2) = True"
        # The compressed numbering keeps the hub at 1 and puts the
        # c-tail at 3 (deterministic renumbering, per the paper).
        assert main(["query", str(compressed), "rpq", "a b c",
                     "1", "3"]) == 0
        capsys.readouterr()
        # No c-labeled path back out of the tail.
        assert main(["query", str(compressed), "rpq", "c",
                     "3", "1"]) == 1
        assert capsys.readouterr().out.strip().endswith("False")

    def test_rpq_malformed_pattern(self, compressed, capsys):
        assert main(["query", str(compressed), "rpq", "a(b",
                     "1", "2"]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "malformed pattern" in err

    def test_rpq_arity_and_node_types(self, compressed, capsys):
        assert main(["query", str(compressed), "rpq", "a b"]) == 2
        assert "rpq needs a pattern" in capsys.readouterr().err
        assert main(["query", str(compressed), "rpq", "a b",
                     "1", "two"]) == 2
        assert "integer" in capsys.readouterr().err

    def test_pattern_count(self, compressed, capsys):
        # Three a-edges out of the hub, one c-edge to the tail.
        for name, expected in (("a", "3"), ("b", "3"), ("c", "1"),
                               ("nope", "0")):
            assert main(["query", str(compressed), "pattern-count",
                         "label", name]) == 0
            assert capsys.readouterr().out.strip() == expected
        # Each middle has one a in and one b out.
        assert main(["query", str(compressed), "pattern-count",
                     "digram", "a", "b"]) == 0
        assert capsys.readouterr().out.strip() == "3"
        # Exactly one node fans out three a-edges.
        assert main(["query", str(compressed), "pattern-count",
                     "star", "a", "3"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_pattern_count_errors(self, compressed, capsys):
        assert main(["query", str(compressed), "pattern-count"]) == 2
        assert "sub-kind" in capsys.readouterr().err
        assert main(["query", str(compressed), "pattern-count",
                     "triangle", "a"]) == 2
        assert "error" in capsys.readouterr().err

    def test_out_edges(self, compressed, capsys):
        assert main(["query", str(compressed), "out-edges", "1"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3
        # Labels print as numeric IDs — the wire answer a remote
        # `connect` client sees, where no alphabet is available.
        assert all(line.startswith("1 ") for line in lines)


@pytest.fixture
def sharded(tmp_path, edge_list):
    out = tmp_path / "graph.grps"
    assert main(["compress", str(edge_list), str(out),
                 "--shards", "3"]) == 0
    return out


class TestSharded:
    def test_creates_sharded_container(self, sharded):
        assert sharded.read_bytes()[:4] == b"GRPS"

    def test_parallel_build_identical_output(self, tmp_path, edge_list,
                                             sharded):
        out = tmp_path / "parallel.grps"
        assert main(["compress", str(edge_list), str(out),
                     "--shards", "3", "--parallel"]) == 0
        assert out.read_bytes() == sharded.read_bytes()

    def test_connectivity_partitioner(self, tmp_path, edge_list,
                                      capsys):
        out = tmp_path / "conn.grps"
        assert main(["compress", str(edge_list), str(out),
                     "--shards", "2", "--partitioner",
                     "connectivity"]) == 0
        # One connected component -> it stays whole on one shard.
        assert main(["stats", str(out)]) == 0
        assert "boundary edges: 0" in capsys.readouterr().out

    def test_shards_zero_rejected(self, tmp_path, edge_list, capsys):
        assert main(["compress", str(edge_list),
                     str(tmp_path / "x.grps"), "--shards", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_shows_shards_and_cache(self, sharded, capsys):
        assert main(["stats", str(sharded)]) == 0
        out = capsys.readouterr().out
        assert "shards:         3" in out
        assert "boundary edges:" in out
        assert "shard 0:" in out
        assert "query cache:" in out

    def test_stats_shows_partition_and_closure(self, sharded, capsys):
        assert main(["stats", str(sharded)]) == 0
        out = capsys.readouterr().out
        assert "partitioner:    hash" in out
        assert "cut ratio:" in out
        assert "shard balance:" in out
        assert "closure:        absent" in out

    def test_stats_timing_reports_materialization(self, sharded,
                                                  capsys):
        assert main(["stats", "--timing", str(sharded)]) == 0
        out = capsys.readouterr().out
        assert "cold open:" in out
        assert "warm open:" in out
        assert "full open)" in out
        assert "shard0=" in out  # per-section byte breakdown
        # A shard-0-only lazy open copies strictly less than the full
        # open (the other shard blobs stay inside the mmap).
        assert "shard 0 only:" in out
        full_line = next(line for line in out.splitlines()
                         if line.startswith("materialized:"))
        lazy_line = next(line for line in out.splitlines()
                         if "shard 0 only:" in line)
        full_bytes = int(full_line.split()[1].split("/")[0])
        lazy_bytes = int(lazy_line.split()[3].split("/")[0])
        assert lazy_bytes < full_bytes

    @pytest.mark.parametrize("partitioner", ["bfs", "label"])
    def test_edge_cut_partitioners(self, tmp_path, edge_list,
                                   partitioner, capsys):
        out = tmp_path / f"{partitioner}.grps"
        assert main(["compress", str(edge_list), str(out),
                     "--shards", "2", "--partitioner",
                     partitioner]) == 0
        assert main(["stats", str(out)]) == 0
        assert f"partitioner:    {partitioner}" in \
            capsys.readouterr().out

    def test_closure_flag_persists_closure(self, tmp_path, edge_list,
                                           capsys):
        out = tmp_path / "closed.grps"
        assert main(["compress", str(edge_list), str(out),
                     "--shards", "2", "--partitioner", "bfs",
                     "--closure"]) == 0
        assert main(["stats", str(out)]) == 0
        stats_out = capsys.readouterr().out
        assert "closure:        persisted" in stats_out
        assert "closure=" in stats_out  # the section breakdown line
        # Queries on the closure-backed container still route fine.
        assert main(["query", str(out), "reach", "1", "2"]) in (0, 1)

    def test_closure_needs_shards(self, tmp_path, edge_list, capsys):
        assert main(["compress", str(edge_list),
                     str(tmp_path / "x.grpr"), "--closure"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_stats_shows_cache_for_single_too(self, compressed,
                                              capsys):
        assert main(["stats", str(compressed)]) == 0
        assert "query cache:" in capsys.readouterr().out

    def test_stats_timing_on_single_grammar(self, compressed, capsys):
        assert main(["stats", "--timing", str(compressed)]) == 0
        out = capsys.readouterr().out
        assert "cold open:" in out
        assert "warm open:" in out
        assert "decode eagerly" in out

    def test_queries_route_through_sharded_container(self, sharded,
                                                     capsys):
        assert main(["query", str(sharded), "components"]) == 0
        assert capsys.readouterr().out.strip() == "1"
        assert main(["query", str(sharded), "nodes"]) == 0
        assert capsys.readouterr().out.strip() == "6"
        assert main(["query", str(sharded), "edges"]) == 0
        assert capsys.readouterr().out.strip() == "7"
        assert main(["query", str(sharded), "degree"]) == 0
        out = capsys.readouterr().out
        assert "max_out:" in out and "min_in:" in out

    def test_decompress_sharded_roundtrip(self, tmp_path, edge_list,
                                          sharded, capsys):
        out = tmp_path / "roundtrip.tsv"
        assert main(["decompress", str(sharded), str(out)]) == 0
        original = {tuple(line.split()) for line in
                    edge_list.read_text().splitlines()
                    if line and not line.startswith("#")}
        restored = {tuple(line.split()) for line in
                    out.read_text().splitlines() if line}
        assert len(original) == len(restored)
        assert sorted(e[2] for e in original) == \
            sorted(e[2] for e in restored)

    def test_sharded_reach_exit_codes(self, sharded):
        # Some source reaches some target; exit codes mirror answers.
        codes = {main(["query", str(sharded), "reach", "1", str(t)])
                 for t in range(1, 7)}
        assert codes <= {0, 1} and 0 in codes


class TestErrorConsistency:
    """Every subcommand: ReproError/IO -> stderr + exit code 2."""

    def test_query_out_of_range_node(self, compressed, capsys):
        assert main(["query", str(compressed), "out", "999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_on_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.grpr"
        bogus.write_bytes(b"definitely not a container")
        for command in (["stats", str(bogus)],
                        ["decompress", str(bogus),
                         str(tmp_path / "out.tsv")],
                        ["query", str(bogus), "components"]):
            assert main(command) == 2
            assert "error" in capsys.readouterr().err

    def test_missing_container(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.grpr")
        for command in (["stats", missing],
                        ["decompress", missing,
                         str(tmp_path / "out.tsv")],
                        ["query", missing, "nodes"]):
            assert main(command) == 2
            assert "error" in capsys.readouterr().err


class TestServeAndConnect:
    """The socket deployment through the CLI surface."""

    @pytest.fixture
    def server(self, sharded):
        from repro.serving import serve

        with serve(sharded) as running:
            yield running

    def test_connect_matches_query_output(self, sharded, server,
                                          capsys):
        """`query FILE ...` and `connect ENDPOINT ...` must print
        byte-identical answers for the same graph."""
        for request in (["components"], ["nodes"], ["edges"],
                        ["degree"], ["degree", "2"], ["out", "1"],
                        ["in", "2"], ["neighborhood", "2"],
                        ["reach", "1", "2"], ["path", "1", "2"],
                        ["rpq", "a b", "1", "2"],
                        ["rpq", "(a|b)+ c?", "1", "6"],
                        ["pattern-count", "label", "a"],
                        ["pattern-count", "digram", "a", "b"],
                        ["pattern-count", "star", "a", "2"],
                        ["out-edges", "1"]):
            local_code = main(["query", str(sharded)] + request)
            local_out = capsys.readouterr().out
            remote_code = main(["connect", server.endpoint] + request)
            remote_out = capsys.readouterr().out
            assert remote_code == local_code, request
            assert remote_out == local_out, request

    def test_connect_info(self, server, capsys):
        assert main(["connect", server.endpoint, "--info"]) == 0
        out = capsys.readouterr().out
        assert "type: sharded" in out
        assert "shards: 3" in out

    def test_connect_without_kind_errors(self, server, capsys):
        assert main(["connect", server.endpoint]) == 2
        assert "query kind" in capsys.readouterr().err

    def test_connect_refused(self, capsys):
        assert main(["connect", "127.0.0.1:1", "nodes"]) == 2
        assert "error" in capsys.readouterr().err

    def test_connect_out_of_range_node(self, server, capsys):
        assert main(["connect", server.endpoint, "out", "999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_subcommand_end_to_end(self, sharded, tmp_path):
        """The real thing: `repro serve` in a child process, queried
        through `repro connect`, shut down with SIGTERM."""
        import os
        import signal
        import subprocess
        import sys
        import time

        ready = tmp_path / "endpoint"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(sharded),
             "--pipeline", "4", "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.time() + 60
            while not ready.exists() and time.time() < deadline:
                assert process.poll() is None, \
                    process.stderr.read().decode()
                time.sleep(0.05)
            endpoint = ready.read_text().strip()
            assert main(["connect", endpoint, "nodes"]) == 0
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
