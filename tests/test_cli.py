"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.tsv"
    lines = ["# a theta graph plus a tail"]
    for mid in (3, 4, 5):
        lines.append(f"1\t{mid}\ta")
        lines.append(f"{mid}\t2\tb")
    lines.append("2\t6\tc")
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def compressed(tmp_path, edge_list):
    out = tmp_path / "graph.grpr"
    assert main(["compress", str(edge_list), str(out)]) == 0
    return out


class TestCompress:
    def test_creates_container(self, compressed):
        assert compressed.exists()
        assert compressed.read_bytes()[:4] == b"GRPR"

    def test_options(self, tmp_path, edge_list, capsys):
        out = tmp_path / "custom.grpr"
        code = main(["compress", str(edge_list), str(out),
                     "--max-rank", "2", "--order", "bfs",
                     "--no-prune", "--no-names"])
        assert code == 0
        assert "bpe" in capsys.readouterr().out

    def test_missing_input(self, tmp_path, capsys):
        code = main(["compress", str(tmp_path / "nope.tsv"),
                     str(tmp_path / "out.grpr")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDecompress:
    def test_roundtrip(self, tmp_path, edge_list, compressed, capsys):
        out = tmp_path / "roundtrip.tsv"
        assert main(["decompress", str(compressed), str(out)]) == 0
        original = {tuple(line.split()) for line in
                    edge_list.read_text().splitlines()
                    if line and not line.startswith("#")}
        restored = {tuple(line.split()) for line in
                    out.read_text().splitlines() if line}
        # Same number of edges and same label multiset (node IDs are
        # renumbered deterministically, per the paper).
        assert len(original) == len(restored)
        assert sorted(e[2] for e in original) == \
            sorted(e[2] for e in restored)


class TestStats:
    def test_reports_sizes(self, compressed, capsys):
        assert main(["stats", str(compressed)]) == 0
        out = capsys.readouterr().out
        assert "rules:" in out
        assert "derived graph:" in out
        assert "bpe:" in out


class TestQuery:
    def test_components(self, compressed, capsys):
        assert main(["query", str(compressed), "components"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_counts(self, compressed, capsys):
        assert main(["query", str(compressed), "nodes"]) == 0
        assert capsys.readouterr().out.strip() == "6"
        assert main(["query", str(compressed), "edges"]) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_reach_exit_codes(self, compressed, capsys):
        assert main(["query", str(compressed), "reach", "1", "2"]) == 0
        assert main(["query", str(compressed), "reach", "2", "1"]) == 1

    def test_neighbors(self, compressed, capsys):
        assert main(["query", str(compressed), "out", "1"]) == 0
        first = capsys.readouterr().out.split()
        assert len(first) == 3  # three middles

    def test_bad_arity(self, compressed, capsys):
        assert main(["query", str(compressed), "reach", "1"]) == 2
        assert "error" in capsys.readouterr().err
