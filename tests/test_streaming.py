"""Tests for streaming decompression."""

import pytest

from helpers import copies_graph, random_simple_graph, star_graph

from repro import compress, derive
from repro.core.streaming import count_streamed_edges, iter_edges
from repro.exceptions import GrammarError


@pytest.mark.parametrize("builder", [
    lambda: random_simple_graph(13),
    lambda: copies_graph(32),
    lambda: star_graph(100),
])
def test_stream_matches_derive(builder):
    graph, alphabet = builder()
    grammar = compress(graph, alphabet).grammar.canonicalize()
    streamed = sorted(iter_edges(grammar))
    materialized = sorted((edge.label, edge.att)
                          for _, edge in derive(grammar).edges())
    assert streamed == materialized


def test_stream_is_lazy():
    """Taking a prefix must not expand the whole derivation."""
    graph, alphabet = copies_graph(64)
    grammar = compress(graph, alphabet).grammar.canonicalize()
    iterator = iter_edges(grammar)
    first_five = [next(iterator) for _ in range(5)]
    assert len(first_five) == 5


def test_stream_count_matches_derived_count():
    graph, alphabet = copies_graph(48)
    grammar = compress(graph, alphabet).grammar.canonicalize()
    assert count_streamed_edges(grammar) == grammar.derived_edge_count()
    assert count_streamed_edges(grammar) == graph.num_edges


def test_stream_requires_canonical_grammar():
    graph, alphabet = copies_graph(8)
    grammar = compress(graph, alphabet).grammar
    # The raw grammar's start graph has ID gaps from node removals.
    if sorted(grammar.start.nodes()) != list(
            range(1, grammar.start.node_size + 1)):
        with pytest.raises(GrammarError):
            list(iter_edges(grammar))
    # The canonical form always works.
    list(iter_edges(grammar.canonicalize()))


def test_stream_terminal_only_grammar():
    from repro import Alphabet, Hypergraph, SLHRGrammar
    alphabet = Alphabet()
    t = alphabet.add_terminal(2, "t")
    start = Hypergraph.from_edges([(t, (1, 2)), (t, (2, 3))],
                                  num_nodes=3)
    grammar = SLHRGrammar(alphabet, start)
    assert sorted(iter_edges(grammar)) == [(t, (1, 2)), (t, (2, 3))]


# ----------------------------------------------------------------------
# Streaming compression (incremental state reused across chunks)
# ----------------------------------------------------------------------
class TestStreamingCompressor:
    def _edges_of(self, graph):
        return [(edge.label, edge.att) for _, edge in graph.edges()]

    @pytest.mark.parametrize("chunk_size", [1, 7, 50, 10**9])
    def test_chunking_invariant(self, chunk_size):
        """Any chunking yields a lossless grammar, without passes."""
        from helpers import isomorphic

        from repro import StreamingCompressor

        graph, alphabet = copies_graph(12)
        edges = self._edges_of(graph)
        streamer = StreamingCompressor(alphabet)
        for start in range(0, len(edges), min(chunk_size, len(edges))):
            streamer.add_edges(edges[start:start + chunk_size])
        grammar = streamer.finish()
        grammar.validate()
        assert isomorphic(derive(grammar), graph)
        assert streamer.stats.recount_passes == 0
        # Finalization + virtual phase seed one pass each; chunk
        # ingestion itself never counts the accumulated graph.
        assert streamer.stats.passes <= 2
        assert streamer.edges_ingested == len(edges)

    def test_matches_batch_compression_quality(self):
        from repro import GRePairSettings, StreamingCompressor

        graph, alphabet = star_graph(120)
        streamer = StreamingCompressor(alphabet)
        streamer.add_edges(self._edges_of(graph))
        streamed = streamer.finish()
        batch = compress(graph, alphabet).grammar
        # Streamed quality tracks batch quality closely (same engine,
        # different seeding path).
        assert streamed.size <= batch.size * 1.10 + 2

    def test_finish_is_idempotent_and_closes_ingestion(self):
        from repro import StreamingCompressor
        from repro.exceptions import GrammarError as GErr

        graph, alphabet = random_simple_graph(17, num_nodes=15,
                                              num_edges=25)
        streamer = StreamingCompressor(alphabet)
        streamer.add_edges(self._edges_of(graph))
        first = streamer.finish()
        assert streamer.finish() is first
        with pytest.raises(GErr):
            streamer.add_edge(1, (1, 2))

    def test_stats_are_live(self):
        from repro import StreamingCompressor

        graph, alphabet = copies_graph(8)
        streamer = StreamingCompressor(alphabet)
        streamer.add_edges(self._edges_of(graph))
        assert streamer.stats.occurrences_replaced > 0
        assert streamer.stats.passes == 0
