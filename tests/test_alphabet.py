"""Unit tests for ranked alphabets."""

import pytest

from repro import Alphabet
from repro.exceptions import GrammarError


class TestAlphabet:
    def test_labels_are_consecutive_from_one(self):
        alphabet = Alphabet()
        assert alphabet.add_terminal(2, "a") == 1
        assert alphabet.add_terminal(2, "b") == 2
        assert alphabet.fresh_nonterminal(3) == 3

    def test_rank_lookup(self):
        alphabet = Alphabet()
        label = alphabet.add_terminal(4, "quad")
        assert alphabet.rank(label) == 4

    def test_terminal_flags(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2)
        n = alphabet.fresh_nonterminal(2)
        assert alphabet.is_terminal(t)
        assert alphabet.is_nonterminal(n)
        assert alphabet.terminals() == [t]
        assert alphabet.nonterminals() == [n]

    def test_rank_must_be_positive(self):
        with pytest.raises(GrammarError):
            Alphabet().add_terminal(0)

    def test_duplicate_name_rejected(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "a")
        with pytest.raises(GrammarError):
            alphabet.add_terminal(2, "a")

    def test_by_name(self):
        alphabet = Alphabet()
        label = alphabet.add_terminal(2, "knows")
        assert alphabet.by_name("knows") == label
        with pytest.raises(GrammarError):
            alphabet.by_name("unknown")

    def test_ensure_terminal_idempotent(self):
        alphabet = Alphabet()
        first = alphabet.ensure_terminal("p", 2)
        second = alphabet.ensure_terminal("p", 2)
        assert first == second
        assert len(alphabet) == 1

    def test_ensure_terminal_rank_conflict(self):
        alphabet = Alphabet()
        alphabet.ensure_terminal("p", 2)
        with pytest.raises(GrammarError):
            alphabet.ensure_terminal("p", 3)

    def test_unknown_label_rejected(self):
        alphabet = Alphabet()
        with pytest.raises(GrammarError):
            alphabet.rank(1)
        assert 1 not in alphabet

    def test_iteration_and_len(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2)
        alphabet.fresh_nonterminal(3)
        assert list(alphabet) == [1, 2]
        assert len(alphabet) == 2

    def test_max_rank(self):
        alphabet = Alphabet()
        assert alphabet.max_rank() == 0
        alphabet.add_terminal(2)
        alphabet.fresh_nonterminal(5)
        assert alphabet.max_rank() == 5

    def test_describe(self):
        alphabet = Alphabet()
        named = alphabet.add_terminal(2, "a")
        anon = alphabet.fresh_nonterminal(3)
        assert alphabet.describe(named) == "a/2"
        assert alphabet.describe(anon) == f"N{anon}/3"

    def test_copy_is_independent(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "a")
        clone = alphabet.copy()
        clone.add_terminal(2, "b")
        assert len(alphabet) == 1
        assert len(clone) == 2
        assert clone.by_name("a") == 1
