"""``batch(..., parallel=True)``: planned execution on both handles.

The parallel path must be a pure optimization: identical answers, in
request order, for every workload — including error behavior on
malformed requests.  Thread-safety of the underlying index is also
exercised directly (many threads, one handle).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import QueryError

from helpers import theta_graph


def _mixed(total, count, seed, hot=20):
    """A skewed serving mix with plenty of duplicates."""
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        kind = rng.choice(["out", "in", "neighborhood", "reach",
                           "degree", "path", "components", "nodes"])
        if kind in ("reach", "path"):
            requests.append((kind, rng.randint(1, min(total, hot)),
                             rng.randint(1, total)))
        elif kind in ("out", "in", "neighborhood", "degree"):
            requests.append((kind, rng.randint(1, min(total, hot * 2))))
        else:
            requests.append((kind,))
    return requests


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("corpus", ["er-random", "version-copies"])
    def test_unsharded(self, corpus):
        graph, alphabet = SMOKE_CORPORA[corpus]()
        handle = CompressedGraph.compress(graph, alphabet,
                                          validate=False)
        requests = _mixed(handle.node_count(), 300, seed=3)
        assert (handle.batch(requests, parallel=True)
                == handle.batch(requests))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded(self, shards):
        graph, alphabet = SMOKE_CORPORA["communication"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=shards, validate=False)
        requests = _mixed(handle.node_count(), 300, seed=5)
        assert (handle.batch(requests, parallel=True)
                == handle.batch(requests))

    def test_sharded_uncached_handles_agree(self):
        """No LRU in the way: the planned path itself is correct."""
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, cache_size=0, validate=False)
        requests = _mixed(handle.node_count(), 200, seed=7)
        assert (handle.batch(requests, parallel=True)
                == handle.batch(requests))

    def test_empty_batch(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        assert handle.batch([], parallel=True) == []

    def test_single_request(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        assert handle.batch([("components",)], parallel=True) \
            == [handle.components()]

    def test_max_workers_one(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        requests = [("out", 1), ("out", 1), ("reach", 1, 2)]
        assert (handle.batch(requests, parallel=True, max_workers=1)
                == handle.batch(requests))

    def test_duplicate_lists_are_independent(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        first, second = handle.batch([("out", 1), ("out", 1)],
                                     parallel=True)
        first.append(99)
        assert 99 not in second


class TestParallelErrors:
    def test_unknown_kind(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError, match="unknown batch query"):
            handle.batch([("sideways", 1)], parallel=True)

    def test_empty_request(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError, match="empty batch request"):
            handle.batch([()], parallel=True)

    def test_bad_arity_surfaces_as_query_error(self):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError, match="bad arguments"):
            handle.batch([("reach", 1)], parallel=True)
        sharded_graph, sharded_alphabet = SMOKE_CORPORA["er-random"]()
        sharded = ShardedCompressedGraph.compress(
            sharded_graph, sharded_alphabet, shards=2, validate=False)
        with pytest.raises(QueryError, match="bad arguments"):
            sharded.batch([("reach", 1)], parallel=True)

    def test_out_of_range_node_raises(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        sharded = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        with pytest.raises(QueryError, match="out of range"):
            sharded.batch([("out", sharded.node_count() + 5)],
                          parallel=True)

    def test_unhashable_args_raise_query_error(self):
        """Parallel dedup must not leak TypeError for list arguments."""
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        with pytest.raises(QueryError):
            handle.batch([("out", [1])], parallel=True)
        sharded_graph, sharded_alphabet = SMOKE_CORPORA["er-random"]()
        sharded = ShardedCompressedGraph.compress(
            sharded_graph, sharded_alphabet, shards=2, validate=False)
        with pytest.raises(QueryError):
            sharded.batch([("reach", [1], 2)], parallel=True)


class TestThreadSafety:
    def test_many_threads_one_unsharded_handle(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = CompressedGraph.compress(graph, alphabet,
                                          validate=False)
        total = handle.node_count()
        expected = {node: handle.out(node)
                    for node in range(1, min(total, 25) + 1)}
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(50):
                node = rng.randint(1, min(total, 25))
                if handle.out(node) != expected[node]:
                    errors.append(node)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert handle.canonicalizations == 1

    def test_many_threads_one_sharded_handle(self):
        graph, alphabet = SMOKE_CORPORA["communication"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, validate=False)
        total = handle.node_count()
        expected = handle.batch([("out", node) for node in
                                 range(1, min(total, 25) + 1)])
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(30):
                node = rng.randint(1, min(total, 25))
                if handle.out(node) != expected[node - 1]:
                    errors.append(node)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # One lazy canonicalization per shard, however many threads.
        assert handle.canonicalizations == handle.num_shards
