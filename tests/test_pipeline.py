"""Tests for the high-level compress() pipeline API."""

import pytest

from helpers import copies_graph, theta_graph

from repro import GRePairSettings, compress
from repro.exceptions import HypergraphError


class TestSettings:
    def test_defaults_follow_paper(self):
        settings = GRePairSettings()
        assert settings.max_rank == 4
        assert settings.order == "fp"
        assert settings.virtual_edges
        assert settings.prune

    def test_describe(self):
        text = GRePairSettings(max_rank=3, order="bfs").describe()
        assert "maxRank=3" in text
        assert "order=bfs" in text

    def test_unknown_order_surfaces(self):
        graph, alphabet = theta_graph()
        with pytest.raises(HypergraphError):
            compress(graph, alphabet, GRePairSettings(order="bogus"))


class TestResult:
    def test_summary_fields(self):
        graph, alphabet = copies_graph(16)
        result = compress(graph, alphabet)
        assert result.original_size == graph.total_size
        assert result.original_edges == graph.num_edges
        assert result.grammar_size == result.grammar.size
        assert 0 < result.size_ratio <= 1.0
        text = result.summary()
        assert "|g|=" in text and "rules" in text

    def test_stats_populated(self):
        graph, alphabet = copies_graph(16)
        result = compress(graph, alphabet)
        assert result.stats["passes"] >= 1
        assert result.stats["occurrences_replaced"] > 0

    def test_validation_runs_by_default(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        result.grammar.validate()  # must already be consistent

    def test_empty_graph_ratio(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        alphabet.add_terminal(2, "t")
        result = compress(Hypergraph(), alphabet)
        assert result.size_ratio == 1.0
