"""Tests for the degree-extrema speed-up queries."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import copies_graph, random_simple_graph, star_graph

from repro import Alphabet, Hypergraph, SLHRGrammar, compress, derive
from repro.exceptions import QueryError
from repro.queries import DegreeQueries, GrammarQueries


def _truth_extrema(graph):
    out = {v: 0 for v in graph.nodes()}
    into = {v: 0 for v in graph.nodes()}
    for _, edge in graph.edges():
        out[edge.att[0]] += 1
        into[edge.att[1]] += 1
    totals = {v: out[v] + into[v] for v in graph.nodes()}
    return (max(out.values()), min(out.values()),
            max(into.values()), min(into.values()),
            max(totals.values()), min(totals.values()))


def _check(graph, alphabet):
    result = compress(graph, alphabet)
    canonical = result.grammar.canonicalize()
    queries = DegreeQueries(canonical)
    val = derive(canonical)
    truth = _truth_extrema(val)
    measured = (queries.max_out_degree(), queries.min_out_degree(),
                queries.max_in_degree(), queries.min_in_degree(),
                queries.max_degree(), queries.min_degree())
    assert measured == truth


class TestDegreeQueries:
    def test_random_graph(self):
        _check(*random_simple_graph(1))

    def test_star(self):
        graph, alphabet = star_graph(100)
        _check(graph, alphabet)
        result = compress(graph, alphabet)
        queries = DegreeQueries(result.grammar.canonicalize())
        assert queries.max_in_degree() == 100
        assert queries.min_out_degree() == 0  # the hub

    def test_copies(self):
        _check(*copies_graph(32))

    def test_isolated_nodes_have_degree_zero(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph.from_edges([(t, (1, 2))], num_nodes=4)
        result = compress(graph, alphabet)
        queries = DegreeQueries(result.grammar.canonicalize())
        assert queries.min_degree() == 0
        assert queries.max_degree() == 1

    def test_empty_graph_rejected(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "t")
        grammar = SLHRGrammar(alphabet, Hypergraph())
        queries = DegreeQueries(grammar)
        with pytest.raises(QueryError):
            queries.max_degree()

    def test_facade_accessor(self):
        graph, alphabet = star_graph(30)
        result = compress(graph, alphabet)
        queries = GrammarQueries(result.grammar)
        assert queries.degrees().max_in_degree() == 30

    def test_hyperedge_terminal_rejected(self):
        alphabet = Alphabet()
        h = alphabet.add_terminal(3, "h")
        start = Hypergraph.from_edges([(h, (1, 2, 3))])
        grammar = SLHRGrammar(alphabet, start)
        with pytest.raises(QueryError):
            DegreeQueries(grammar)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10**6))
def test_degree_extrema_property(seed):
    graph, alphabet = random_simple_graph(seed, num_nodes=20,
                                          num_edges=45, num_labels=2)
    _check(graph, alphabet)
