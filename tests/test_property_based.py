"""Hypothesis property tests over the whole pipeline.

The central invariants of the system:

1. gRePair is lossless: ``val(compress(g))`` is isomorphic to ``g``
   for arbitrary simple labeled digraphs and arbitrary settings —
   including quirky shapes: rank-1 edges (the model's stand-in for
   self-loops, since attachments are repetition-free), parallel
   edges, isolated nodes and disconnected components.
2. Both maintenance engines uphold invariant 1 and agree closely.
3. The binary container is exact: decoding an encoded grammar
   reproduces the identical derived graph (same node IDs).
4. Grammar queries agree with the decompressed graph.
"""

import random

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import isomorphic

from repro import (
    Alphabet,
    GRePairSettings,
    Hypergraph,
    StreamingCompressor,
    compress,
    derive,
)
from repro.encoding import decode_grammar, encode_grammar
from repro.queries import GrammarQueries

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_alphabet(draw):
    """A random simple labeled digraph plus its alphabet."""
    seed = draw(st.integers(0, 10**6))
    num_nodes = draw(st.integers(2, 30))
    num_labels = draw(st.integers(1, 4))
    density = draw(st.floats(0.02, 0.35))
    rng = random.Random(seed)
    alphabet = Alphabet()
    labels = [alphabet.add_terminal(2, f"L{i}") for i in range(num_labels)]
    graph = Hypergraph()
    for _ in range(num_nodes):
        graph.add_node()
    for u in range(1, num_nodes + 1):
        for v in range(1, num_nodes + 1):
            if u != v and rng.random() < density:
                graph.add_edge(rng.choice(labels), (u, v))
    return graph, alphabet


@st.composite
def quirky_graph_and_alphabet(draw):
    """Graphs stressing the edge cases of the data model.

    Beyond the plain strategy this one generates

    * rank-1 edges — the model's self-loop stand-in (attachment
      sequences are repetition-free, so ``(v, v)`` cannot exist),
    * parallel edges (same label, same attachment, distinct edges),
    * isolated nodes (kept through compression and derivation),
    * several disconnected components (exercising the virtual-edge
      pass on irregular shapes).
    """
    seed = draw(st.integers(0, 10**6))
    num_components = draw(st.integers(1, 4))
    num_labels = draw(st.integers(1, 3))
    unary_labels = draw(st.integers(0, 2))
    rng = random.Random(seed)
    alphabet = Alphabet()
    binary = [alphabet.add_terminal(2, f"L{i}")
              for i in range(num_labels)]
    unary = [alphabet.add_terminal(1, f"U{i}")
             for i in range(unary_labels)]
    graph = Hypergraph()
    for _ in range(num_components):
        size = rng.randint(1, 12)
        nodes = [graph.add_node() for _ in range(size)]
        # ~15% of nodes stay isolated inside their component.
        wired = [n for n in nodes if rng.random() > 0.15] or nodes[:1]
        for _ in range(rng.randint(0, 2 * len(wired))):
            u, v = rng.choice(wired), rng.choice(wired)
            if u != v:
                graph.add_edge(rng.choice(binary), (u, v))
                if rng.random() < 0.2:  # parallel duplicate
                    graph.add_edge(rng.choice(binary), (u, v))
        if unary:
            for node in wired:
                if rng.random() < 0.4:  # self-loop stand-in
                    graph.add_edge(rng.choice(unary), (node,))
    return graph, alphabet


@_settings
@given(graph_and_alphabet(),
       st.integers(2, 5),
       st.sampled_from(["fp", "fp0", "bfs", "dfs", "natural", "random"]),
       st.booleans(),
       st.booleans())
def test_compression_is_lossless(data, max_rank, order, virtual, prune):
    graph, alphabet = data
    result = compress(graph, alphabet, GRePairSettings(
        max_rank=max_rank, order=order, virtual_edges=virtual,
        prune=prune))
    assert isomorphic(derive(result.grammar), graph)


@_settings
@given(graph_and_alphabet())
def test_container_roundtrip_is_exact(data):
    graph, alphabet = data
    result = compress(graph, alphabet)
    decoded = decode_grammar(encode_grammar(result.grammar))
    original = derive(result.grammar.canonicalize())
    restored = derive(decoded)
    assert original.node_size == restored.node_size
    assert original.edge_multiset() == restored.edge_multiset()


@_settings
@given(graph_and_alphabet())
def test_grammar_invariants_hold(data):
    graph, alphabet = data
    result = compress(graph, alphabet)
    grammar = result.grammar
    grammar.validate()
    refs = grammar.references()
    # After pruning, every surviving rule is referenced at least twice
    # and contributes positively.
    for lhs in grammar.nonterminals():
        assert refs[lhs] >= 2
        assert grammar.contribution(lhs, refs) > 0


@_settings
@given(graph_and_alphabet(), st.integers(0, 100))
def test_queries_match_ground_truth(data, probe_seed):
    graph, alphabet = data
    result = compress(graph, alphabet)
    queries = GrammarQueries(result.grammar)
    val = derive(result.grammar.canonicalize())
    truth = nx.DiGraph()
    truth.add_nodes_from(val.nodes())
    for _, edge in val.edges():
        truth.add_edge(*edge.att)
    rng = random.Random(probe_seed)
    nodes = sorted(truth.nodes())
    for _ in range(10):
        node = rng.choice(nodes)
        assert queries.out_neighbors(node) == sorted(
            truth.successors(node))
        assert queries.in_neighbors(node) == sorted(
            truth.predecessors(node))
    for _ in range(10):
        source, target = rng.choice(nodes), rng.choice(nodes)
        assert queries.reachable(source, target) == nx.has_path(
            truth, source, target)
    assert queries.connected_components() == \
        nx.number_connected_components(truth.to_undirected())


@_settings
@given(graph_and_alphabet())
def test_size_never_grows_after_pruning(data):
    """|G| <= |g| always holds with pruning enabled."""
    graph, alphabet = data
    result = compress(graph, alphabet)
    assert result.grammar.size <= graph.total_size


@_settings
@given(graph_and_alphabet())
def test_derived_counts_match_materialization(data):
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar
    val = derive(grammar)
    assert grammar.derived_node_size() == val.node_size
    assert grammar.derived_edge_count() == val.num_edges


@_settings
@given(graph_and_alphabet())
def test_streaming_equals_materialization(data):
    from repro.core.streaming import iter_edges
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar.canonicalize()
    streamed = sorted(iter_edges(grammar))
    materialized = sorted((edge.label, edge.att)
                          for _, edge in derive(grammar).edges())
    assert streamed == materialized


@_settings
@given(graph_and_alphabet())
def test_canonicalize_is_idempotent(data):
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar
    once = grammar.canonicalize()
    twice = once.canonicalize()
    assert once.start.edge_multiset() == twice.start.edge_multiset()
    assert derive(once).edge_multiset() == derive(twice).edge_multiset()


# ----------------------------------------------------------------------
# Quirky graphs: self-loop stand-ins, parallel edges, isolated nodes,
# disconnected components — under both maintenance engines.
# ----------------------------------------------------------------------
@_settings
@given(quirky_graph_and_alphabet(),
       st.sampled_from(["incremental", "recount"]),
       st.booleans())
def test_quirky_graphs_roundtrip_on_both_engines(data, engine, virtual):
    graph, alphabet = data
    result = compress(graph, alphabet, GRePairSettings(
        engine=engine, virtual_edges=virtual))
    result.grammar.validate()
    assert isomorphic(derive(result.grammar), graph)
    if engine == "incremental":
        assert result.stats["recount_passes"] == 0


@_settings
@given(quirky_graph_and_alphabet())
def test_quirky_graphs_engines_agree(data):
    graph, alphabet = data
    sizes = {}
    for engine in ("incremental", "recount"):
        result = compress(graph, alphabet,
                          GRePairSettings(engine=engine))
        result.grammar.validate()
        sizes[engine] = result.grammar.size
    assert sizes["incremental"] <= sizes["recount"] * 1.05 + 2


@_settings
@given(quirky_graph_and_alphabet(), st.integers(1, 5))
def test_streaming_compression_is_lossless(data, num_chunks):
    """Chunked ingestion is lossless and never counts a full pass."""
    graph, alphabet = data
    edges = [(edge.label, edge.att) for _, edge in graph.edges()]
    streamer = StreamingCompressor(alphabet)
    chunk_size = max(1, len(edges) // num_chunks)
    for start in range(0, len(edges), chunk_size):
        streamer.add_edges(edges[start:start + chunk_size])
    # Isolated nodes are not visible through the edge stream; this is
    # inherent to edge streaming, so compare against the wired part.
    wired = Hypergraph.from_edges(edges)
    grammar = streamer.finish()
    grammar.validate()
    assert isomorphic(derive(grammar), wired)
    assert streamer.stats.recount_passes == 0
    # Seed passes only: the finalization phase plus (possibly) the
    # virtual-edge phase; ingestion itself never counts the graph.
    assert streamer.stats.passes <= 2
