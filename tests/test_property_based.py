"""Hypothesis property tests over the whole pipeline.

The central invariants of the system:

1. gRePair is lossless: ``val(compress(g))`` is isomorphic to ``g``
   for arbitrary simple labeled digraphs and arbitrary settings.
2. The binary container is exact: decoding an encoded grammar
   reproduces the identical derived graph (same node IDs).
3. Grammar queries agree with the decompressed graph.
"""

import random

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import isomorphic

from repro import Alphabet, GRePairSettings, Hypergraph, compress, derive
from repro.encoding import decode_grammar, encode_grammar
from repro.queries import GrammarQueries

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_alphabet(draw):
    """A random simple labeled digraph plus its alphabet."""
    seed = draw(st.integers(0, 10**6))
    num_nodes = draw(st.integers(2, 30))
    num_labels = draw(st.integers(1, 4))
    density = draw(st.floats(0.02, 0.35))
    rng = random.Random(seed)
    alphabet = Alphabet()
    labels = [alphabet.add_terminal(2, f"L{i}") for i in range(num_labels)]
    graph = Hypergraph()
    for _ in range(num_nodes):
        graph.add_node()
    for u in range(1, num_nodes + 1):
        for v in range(1, num_nodes + 1):
            if u != v and rng.random() < density:
                graph.add_edge(rng.choice(labels), (u, v))
    return graph, alphabet


@_settings
@given(graph_and_alphabet(),
       st.integers(2, 5),
       st.sampled_from(["fp", "fp0", "bfs", "dfs", "natural", "random"]),
       st.booleans(),
       st.booleans())
def test_compression_is_lossless(data, max_rank, order, virtual, prune):
    graph, alphabet = data
    result = compress(graph, alphabet, GRePairSettings(
        max_rank=max_rank, order=order, virtual_edges=virtual,
        prune=prune))
    assert isomorphic(derive(result.grammar), graph)


@_settings
@given(graph_and_alphabet())
def test_container_roundtrip_is_exact(data):
    graph, alphabet = data
    result = compress(graph, alphabet)
    decoded = decode_grammar(encode_grammar(result.grammar))
    original = derive(result.grammar.canonicalize())
    restored = derive(decoded)
    assert original.node_size == restored.node_size
    assert original.edge_multiset() == restored.edge_multiset()


@_settings
@given(graph_and_alphabet())
def test_grammar_invariants_hold(data):
    graph, alphabet = data
    result = compress(graph, alphabet)
    grammar = result.grammar
    grammar.validate()
    refs = grammar.references()
    # After pruning, every surviving rule is referenced at least twice
    # and contributes positively.
    for lhs in grammar.nonterminals():
        assert refs[lhs] >= 2
        assert grammar.contribution(lhs, refs) > 0


@_settings
@given(graph_and_alphabet(), st.integers(0, 100))
def test_queries_match_ground_truth(data, probe_seed):
    graph, alphabet = data
    result = compress(graph, alphabet)
    queries = GrammarQueries(result.grammar)
    val = derive(result.grammar.canonicalize())
    truth = nx.DiGraph()
    truth.add_nodes_from(val.nodes())
    for _, edge in val.edges():
        truth.add_edge(*edge.att)
    rng = random.Random(probe_seed)
    nodes = sorted(truth.nodes())
    for _ in range(10):
        node = rng.choice(nodes)
        assert queries.out_neighbors(node) == sorted(
            truth.successors(node))
        assert queries.in_neighbors(node) == sorted(
            truth.predecessors(node))
    for _ in range(10):
        source, target = rng.choice(nodes), rng.choice(nodes)
        assert queries.reachable(source, target) == nx.has_path(
            truth, source, target)
    assert queries.connected_components() == \
        nx.number_connected_components(truth.to_undirected())


@_settings
@given(graph_and_alphabet())
def test_size_never_grows_after_pruning(data):
    """|G| <= |g| always holds with pruning enabled."""
    graph, alphabet = data
    result = compress(graph, alphabet)
    assert result.grammar.size <= graph.total_size


@_settings
@given(graph_and_alphabet())
def test_derived_counts_match_materialization(data):
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar
    val = derive(grammar)
    assert grammar.derived_node_size() == val.node_size
    assert grammar.derived_edge_count() == val.num_edges


@_settings
@given(graph_and_alphabet())
def test_streaming_equals_materialization(data):
    from repro.core.streaming import iter_edges
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar.canonicalize()
    streamed = sorted(iter_edges(grammar))
    materialized = sorted((edge.label, edge.att)
                          for _, edge in derive(grammar).edges())
    assert streamed == materialized


@_settings
@given(graph_and_alphabet())
def test_canonicalize_is_idempotent(data):
    graph, alphabet = data
    grammar = compress(graph, alphabet).grammar
    once = grammar.canonicalize()
    twice = once.canonicalize()
    assert once.start.edge_multiset() == twice.start.edge_multiset()
    assert derive(once).edge_multiset() == derive(twice).edge_multiset()
