"""Tests for dataset generators, I/O and the registry."""

import pytest

from repro.core.orders import fp_equivalence_classes
from repro.datasets import (
    DATASETS,
    disjoint_union,
    fig13_base_graph,
    graph_from_pairs,
    graph_from_triples,
    identical_copies,
    load_dataset,
    read_edge_list,
    types_graph,
    write_edge_list,
)
from repro.datasets.registry import names_by_family
from repro.datasets.synthetic import (
    coauthorship_graph,
    communication_graph,
    copy_model_graph,
    random_graph,
)
from repro.datasets.versions import coauthorship_snapshots, \
    game_state_versions
from repro.exceptions import DatasetError


class TestIO:
    def test_graph_from_triples_dictionary(self):
        graph, alphabet, dictionary = graph_from_triples([
            ("s1", "p", "o1"), ("s2", "p", "o1"), ("s1", "q", "o2"),
        ])
        assert graph.num_edges == 3
        assert len(dictionary) == 4
        assert alphabet.by_name("p") != alphabet.by_name("q")

    def test_self_loops_dropped(self):
        graph, _, _ = graph_from_triples([("x", "p", "x"),
                                          ("x", "p", "y")])
        assert graph.num_edges == 1

    def test_duplicates_collapsed(self):
        graph, _, _ = graph_from_pairs([(1, 2), (1, 2), (2, 3)])
        assert graph.num_edges == 2

    def test_edge_list_roundtrip(self, tmp_path):
        graph, alphabet, _ = graph_from_triples([
            ("a", "p", "b"), ("b", "q", "c"),
        ])
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, alphabet, path)
        loaded, loaded_alphabet, _ = read_edge_list(path)
        assert loaded.num_edges == 2
        assert {loaded_alphabet.name(l) for l in loaded_alphabet} == \
            {"p", "q"}

    def test_edge_list_comments_skipped(self, tmp_path):
        path = tmp_path / "in.tsv"
        path.write_text("# comment\n1 2 p\n\n3 4\n")
        graph, alphabet, _ = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("justonetoken\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)


class TestGenerators:
    def test_random_graph_size(self):
        graph, _ = random_graph(50, 120, seed=1)
        assert graph.node_size == 50
        assert graph.num_edges == 120

    def test_random_graph_capacity_check(self):
        with pytest.raises(DatasetError):
            random_graph(3, 100)

    def test_generators_deterministic(self):
        for factory in (lambda s: random_graph(30, 60, seed=s),
                        lambda s: coauthorship_graph(50, seed=s),
                        lambda s: communication_graph(60, 120, seed=s),
                        lambda s: copy_model_graph(60, seed=s),
                        lambda s: types_graph(100, seed=s)):
            first, _ = factory(7)
            second, _ = factory(7)
            assert first.edge_multiset() == second.edge_multiset()
            different, _ = factory(8)
            assert (different.edge_multiset()
                    != first.edge_multiset())

    def test_coauthorship_is_symmetric(self):
        graph, _ = coauthorship_graph(40, seed=2)
        edges = {edge.att for _, edge in graph.edges()}
        assert all((v, u) in edges for (u, v) in edges)

    def test_communication_has_hubs(self):
        graph, _ = communication_graph(200, 600, seed=3)
        degrees = sorted((graph.degree(v) for v in graph.nodes()),
                         reverse=True)
        assert degrees[0] > 10 * max(1, degrees[len(degrees) // 2])

    def test_copy_model_lists_overlap(self):
        graph, _ = copy_model_graph(200, seed=4)
        overlaps = 0
        for v in range(3, 200):
            a = set(graph.out_neighbors(v))
            b = set(graph.out_neighbors(v - 1))
            if a and len(a & b) >= 2:
                overlaps += 1
        assert overlaps > 10

    def test_types_graph_is_star_shaped(self):
        graph, alphabet = types_graph(500, classes=10, seed=5)
        assert len(alphabet) == 1
        assert fp_equivalence_classes(graph) < 40


class TestVersions:
    def test_fig13_unit(self):
        graph, _ = fig13_base_graph()
        assert graph.node_size == 4
        assert graph.num_edges == 5

    def test_identical_copies_scale(self):
        base = fig13_base_graph()
        graph, _ = identical_copies(base, 8)
        assert graph.node_size == 32
        assert graph.num_edges == 40

    def test_identical_copies_validation(self):
        with pytest.raises(DatasetError):
            identical_copies(fig13_base_graph(), 0)

    def test_disjoint_union_unifies_labels_by_name(self):
        a = types_graph(10, classes=2, seed=1)
        b = types_graph(10, classes=2, seed=2)
        union, alphabet = disjoint_union([a, b])
        assert len(alphabet) == 1
        assert union.num_edges == a[0].num_edges + b[0].num_edges

    def test_snapshots_are_cumulative(self):
        snaps = coauthorship_snapshots(5, 10, seed=6)
        sizes = [graph.num_edges for graph, _ in snaps]
        assert sizes == sorted(sizes)
        first_edges = set(snaps[0][0].edge_multiset())
        last_edges = set(snaps[-1][0].edge_multiset())
        assert first_edges <= last_edges

    def test_game_states_repetitive(self):
        graph, alphabet = game_state_versions(
            100, templates=3, labels=3, seed=7)
        assert fp_equivalence_classes(graph) < 60


class TestRegistry:
    def test_all_families_present(self):
        assert len(names_by_family("network")) == 8
        assert len(names_by_family("rdf")) == 6
        assert len(names_by_family("version")) == 4

    def test_load_unknown_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("no-such-graph")

    def test_load_memoizes(self):
        first = load_dataset("tic-tac-toe")
        second = load_dataset("tic-tac-toe")
        assert first[0] is second[0]

    def test_registry_entries_have_metadata(self):
        for dataset in DATASETS.values():
            assert dataset.family in {"network", "rdf", "version"}
            assert dataset.paper_reference

    @pytest.mark.parametrize("name", ["ca-grqc", "rdf-types-ru",
                                      "tic-tac-toe"])
    def test_sample_datasets_loadable(self, name):
        graph, alphabet = load_dataset(name)
        assert graph.num_edges > 100
        assert len(alphabet) >= 1
