"""The partition layer: partitioners, boundary closure, reach planner.

Three pillars:

* **partitioner zoo** — every registered strategy covers every node
  deterministically; the edge-cut strategies (``bfs`` / ``label``)
  beat ``hash`` strictly on single-component corpora (the acceptance
  criterion: a giant component must stop degenerating to the
  dense-boundary regime).
* **strategy differential** — closure ≡ chaining ≡ BFS ≡ ground truth
  on all 10 smoke corpora, 2- and 4-shard lanes, all four
  partitioners.  Ground truth is BFS over the handle's own
  ``decompress()`` — the documented ID space of its answers, i.e. the
  unsharded answer up to the canonical renumbering (the k=1 lane in
  ``test_sharding.py`` pins the renumbering itself).
* **closure persistence** — a "GRPS" round trip preserves the closure
  byte-identically, and a loaded closure short-circuits the rebuild.
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import EncodingError, GrammarError
from repro.partition import (
    PARTITIONERS,
    BoundaryClosure,
    ReachPlanner,
    bfs_partition,
    cut_statistics,
    label_partition,
    resolve_partitioner,
)

from helpers import theta_graph

#: The single-component smoke corpora (the edge-cut partitioners'
#: raison d'être: hash shreds these, connectivity cannot split them).
SINGLE_COMPONENT = ("copy-model", "rdf-identica")


def _ground_truth_out(val):
    out = {node: set() for node in val.nodes()}
    for _, edge in val.edges():
        if len(edge.att) == 2:
            out[edge.att[0]].add(edge.att[1])
    return out


def _bfs_reachable(out, source):
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ in out[node]:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


# ----------------------------------------------------------------------
# The partitioner zoo
# ----------------------------------------------------------------------
class TestEdgeCutPartitioners:
    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("corpus", ["er-random", "rdf-identica"])
    def test_total_deterministic_in_range(self, name, corpus):
        graph, _ = SMOKE_CORPORA[corpus]()
        partition = PARTITIONERS[name]
        first = partition(graph, 4)
        assert first == partition(graph, 4)
        assert set(first) == set(graph.nodes())
        assert set(first.values()) <= set(range(4))

    @pytest.mark.parametrize("name", ["bfs", "label"])
    @pytest.mark.parametrize("corpus", SINGLE_COMPONENT)
    def test_edge_cut_beats_hash_on_single_components(self, name,
                                                      corpus):
        """Acceptance: strictly fewer boundary edges than hash at k=4."""
        graph, _ = SMOKE_CORPORA[corpus]()
        hash_cut = cut_statistics(graph, PARTITIONERS["hash"](graph, 4),
                                  4)
        cut = cut_statistics(graph, PARTITIONERS[name](graph, 4), 4)
        assert cut["boundary_edges"] < hash_cut["boundary_edges"]
        assert cut["cut_ratio"] < hash_cut["cut_ratio"]

    @pytest.mark.parametrize("name", ["bfs", "label"])
    def test_balance_stays_bounded(self, name):
        graph, _ = SMOKE_CORPORA["copy-model"]()
        stats = cut_statistics(graph, PARTITIONERS[name](graph, 4), 4)
        # Both strategies enforce a per-shard node budget of ~n/k.
        assert stats["balance"] <= 1.5

    def test_bfs_handles_more_shards_than_nodes(self):
        graph, _ = theta_graph()
        assign = bfs_partition(graph, graph.node_size + 3)
        assert set(assign) == set(graph.nodes())

    def test_label_empty_graph(self):
        from repro import Hypergraph
        assert label_partition(Hypergraph(), 4) == {}

    def test_bfs_empty_graph(self):
        from repro import Hypergraph
        assert bfs_partition(Hypergraph(), 4) == {}

    def test_resolve_partitioner(self):
        fn, name = resolve_partitioner("bfs")
        assert fn is bfs_partition and name == "bfs"
        fn, name = resolve_partitioner(lambda g, k: {})
        assert name == "<lambda>"
        with pytest.raises(GrammarError, match="unknown partitioner"):
            resolve_partitioner("metis")

    def test_cut_statistics_small_graph(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        graph = Hypergraph.from_edges(
            [(label, (1, 2)), (label, (2, 3)), (label, (3, 4))],
            num_nodes=4)
        stats = cut_statistics(graph, {1: 0, 2: 0, 3: 1, 4: 1}, 2)
        assert stats["boundary_edges"] == 1
        assert stats["cut_ratio"] == pytest.approx(1 / 3)
        assert stats["balance"] == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["bfs", "label"])
    def test_compresses_end_to_end(self, name):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner=name,
            validate=False)
        assert handle.node_count() == graph.node_size
        assert handle.edge_count() == graph.num_edges
        assert handle.stats["partitioner"] == name


# ----------------------------------------------------------------------
# Strategy differential: closure ≡ chaining ≡ BFS ≡ ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("corpus", sorted(SMOKE_CORPORA))
def test_reach_strategies_agree_everywhere(corpus):
    """All 10 corpora, 2/4-shard lanes, all four partitioners."""
    graph, alphabet = SMOKE_CORPORA[corpus]()
    rng = random.Random(29)
    for shards in (2, 4):
        for partitioner in sorted(PARTITIONERS):
            handle = ShardedCompressedGraph.compress(
                graph, alphabet, shards=shards,
                partitioner=partitioner, validate=False, cache_size=0)
            out = _ground_truth_out(handle.decompress())
            total = handle.node_count()
            pairs = [(rng.randint(1, total), rng.randint(1, total))
                     for _ in range(12)]
            # Seed a few genuinely cross-shard pairs so boundary
            # routing is always exercised, not just sampled.
            boundary_nodes = sorted(handle.boundary.incident)
            if boundary_nodes:
                pairs.append((boundary_nodes[0], boundary_nodes[-1]))
                pairs.append((1, total))
            for source, target in pairs:
                truth = target in _bfs_reachable(out, source)
                for strategy in ("closure", "chaining", "bfs"):
                    handle.planner.force = strategy
                    answer = handle.reach(source, target)
                    handle.cache.clear()
                    assert answer == truth, (
                        f"{corpus} k={shards} {partitioner} "
                        f"{strategy}: reach({source}, {target}) = "
                        f"{answer}, truth {truth}"
                    )
                handle.planner.force = None
                assert handle.reach(source, target) == truth


def test_default_plan_uses_closure_on_edge_cut_partition():
    """Acceptance: the cost model itself (no forcing) picks the
    closure for an edge-cut partition of a single-component corpus."""
    graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
    handle = ShardedCompressedGraph.compress(
        graph, alphabet, shards=4, partitioner="bfs", validate=False)
    plan = handle.planner.plan(0, 3)
    assert plan.strategy == "closure"
    assert plan.costs["closure"] < plan.costs["bfs"]
    # ...and the hash partition of the same graph is dense enough
    # that the budget fences the closure off.
    dense = ShardedCompressedGraph.compress(
        graph, alphabet, shards=4, partitioner="hash", validate=False)
    assert dense.planner.plan(0, 3).strategy != "closure"


# ----------------------------------------------------------------------
# The planner's cost model
# ----------------------------------------------------------------------
class TestReachPlanner:
    def _handle(self, partitioner="bfs", shards=4):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        return ShardedCompressedGraph.compress(
            graph, alphabet, shards=shards, partitioner=partitioner,
            validate=False)

    def test_untouched_shard_is_local(self):
        graph, alphabet = SMOKE_CORPORA["version-copies"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner="connectivity",
            validate=False)
        assert handle.boundary_edge_count == 0
        plan = handle.planner.plan(0, 1)
        assert plan.strategy == "local"

    def test_entryless_target_shard_is_local(self):
        """1 -> 2 | 3 -> 4: shard 0 exports but nothing enters it, so
        cross-shard reach *into* it is decidable without any probe."""
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        graph = Hypergraph.from_edges(
            [(label, (1, 2)), (label, (2, 3)), (label, (3, 4))],
            num_nodes=4)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {1: 0, 2: 0, 3: 1, 4: 1})
        assert handle.planner.plan(1, 0).strategy == "local"
        assert handle.planner.plan(0, 1).strategy != "local"
        # ...and the answers stay right either way.
        assert handle.reach(1, 4) is True
        assert handle.reach(4, 1) is False

    def test_partition_stats_stay_lazy(self):
        """Reading the cut statistics on a *loaded* handle must not
        canonicalize shards (the CLI `stats` command is a read-only
        printout; builds pay their per-shard pass anyway)."""
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        built = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner="bfs",
            validate=False)
        handle = ShardedCompressedGraph.from_bytes(built.to_bytes())
        assert handle.canonicalizations == 0
        stats = handle.partition_stats
        assert stats["boundary_edges"] == handle.boundary_edge_count
        assert handle.canonicalizations == 0
        # Same numbers the full (index-building) count produces.
        assert stats["cut_ratio"] == pytest.approx(
            handle.boundary_edge_count / handle.edge_count())

    def test_budget_zero_disables_closure(self):
        handle = self._handle()
        handle.planner.closure_budget = 0
        plan = handle.planner.plan(0, 3)
        assert plan.strategy in ("chaining", "bfs")
        assert not handle.planner.closure_allowed

    def test_built_closure_is_sunk_cost(self):
        handle = self._handle()
        handle.planner.closure_budget = 0
        handle.warm_closure()
        plan = handle.planner.plan(0, 3,
                                   closure_built=handle.closure_built)
        assert plan.strategy == "closure"
        assert "already paid" in plan.reason

    def test_force_overrides_costs(self):
        handle = self._handle()
        handle.planner.force = "bfs"
        plan = handle.planner.plan(0, 3)
        assert plan.strategy == "bfs" and "forced" in plan.reason

    def test_costs_are_reported(self):
        handle = self._handle()
        plan = handle.planner.plan(0, 3)
        for key in ("closure", "chaining", "bfs", "closure_build"):
            assert key in plan.costs
        assert plan.costs["closure_build"] == \
            handle.boundary.closure_pairs()

    def test_strategy_probe_matches_plan(self):
        """The hot-path probe and the introspection wrapper must be
        one decision: any drift is a routing bug."""
        handle = self._handle()
        planner = handle.planner
        for source in range(4):
            for target in range(4):
                for built in (False, True):
                    assert (planner.plan(source, target, built).strategy
                            == planner.strategy(source, target, built))
        planner.force = "bfs"
        assert planner.strategy(0, 3) == "bfs"
        planner.force = None

    def test_planner_standalone(self):
        handle = self._handle()
        planner = ReachPlanner(handle.boundary, handle.node_count(),
                               closure_budget=10 ** 9)
        assert planner.closure_allowed
        assert planner.plan(0, 3).strategy == "closure"

    def test_warm_builds_closure_within_budget(self):
        handle = self._handle()
        assert not handle.closure_built
        handle.warm()
        assert handle.closure_built

    def test_warm_skips_closure_over_budget(self):
        handle = self._handle(partitioner="hash")
        assert not handle.planner.closure_allowed
        handle.warm()
        assert not handle.closure_built


# ----------------------------------------------------------------------
# Closure persistence (the "GRPS" trailer section)
# ----------------------------------------------------------------------
class TestClosurePersistence:
    def _warm_handle(self):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner="bfs",
            validate=False)
        handle.warm_closure()
        return graph, alphabet, handle

    def test_roundtrip_is_byte_identical_to_rebuild(self, tmp_path):
        """Acceptance: loaded closure == independently rebuilt one."""
        graph, alphabet, handle = self._warm_handle()
        path = tmp_path / "g.grps"
        handle.save(path)
        loaded = ShardedCompressedGraph.open(path)
        assert loaded.closure_built and loaded.closure_persisted
        loaded_bytes = loaded.warm_closure().to_bytes()
        rebuilt = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner="bfs",
            validate=False)
        assert loaded_bytes == rebuilt.warm_closure().to_bytes()
        assert loaded.warm_closure() == rebuilt.warm_closure()

    def test_loaded_closure_skips_the_rebuild(self, tmp_path,
                                              monkeypatch):
        _, _, handle = self._warm_handle()
        path = tmp_path / "g.grps"
        handle.save(path)
        loaded = ShardedCompressedGraph.open(path)

        def exploding_build(*args, **kwargs):  # pragma: no cover
            raise AssertionError("a persisted closure was rebuilt")

        monkeypatch.setattr(BoundaryClosure, "build", exploding_build)
        closure = loaded.warm_closure()
        assert closure.nodes  # the loaded object, not a rebuild
        # ...and cross-shard reach works against the loaded closure.
        total = loaded.node_count()
        assert loaded.reach(1, total) in (True, False)

    def test_save_without_closure_by_default(self, tmp_path):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        path = tmp_path / "g.grps"
        handle.save(path)  # closure never built -> no section
        loaded = ShardedCompressedGraph.open(path)
        assert not loaded.closure_built
        assert not loaded.closure_persisted
        assert "closure" not in loaded.sizes

    def test_save_with_forced_closure(self, tmp_path):
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, partitioner="bfs",
            validate=False)
        container = handle.save(tmp_path / "g.grps",
                                include_closure=True)
        assert "closure" in container.section_bytes
        assert handle.closure_built  # the save forced the build

    def test_sections_account_for_the_closure(self):
        _, _, handle = self._warm_handle()
        sections = handle.to_container().section_bytes
        assert sections["closure"] == \
            len(handle.warm_closure().to_bytes())
        assert "closure" in handle.sizes

    def test_queries_survive_closure_roundtrip(self, tmp_path):
        _, _, handle = self._warm_handle()
        path = tmp_path / "g.grps"
        handle.save(path)
        loaded = ShardedCompressedGraph.open(path)
        total = loaded.node_count()
        rng = random.Random(31)
        requests = []
        for _ in range(80):
            kind = rng.choice(["out", "in", "reach", "path"])
            if kind in ("reach", "path"):
                requests.append((kind, rng.randint(1, total),
                                 rng.randint(1, total)))
            else:
                requests.append((kind, rng.randint(1, total)))
        assert loaded.batch(requests) == handle.batch(requests)

    def test_resave_of_closure_container_is_stable(self):
        _, _, handle = self._warm_handle()
        blob = handle.to_bytes()
        loaded = ShardedCompressedGraph.from_bytes(blob)
        assert loaded.to_bytes() == blob

    def test_closure_codec_roundtrip(self):
        _, _, handle = self._warm_handle()
        closure = handle.warm_closure()
        decoded = BoundaryClosure.from_bytes(closure.to_bytes())
        assert decoded == closure

    def test_closure_on_hyperedges_raises_cleanly(self, tmp_path):
        """Non-simple graphs cannot use reach, hence no closure: the
        build (and a forced persist) must fail with a clear error,
        while the default save still works closure-less."""
        from repro import Alphabet, Hypergraph
        from repro.exceptions import QueryError
        alphabet = Alphabet()
        simple = alphabet.add_terminal(rank=2, name="e")
        hyper = alphabet.add_terminal(rank=3, name="h")
        graph = Hypergraph.from_edges(
            [(simple, (1, 2)), (simple, (2, 3)), (hyper, (1, 2, 4))],
            num_nodes=4)
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2,
            partitioner=lambda g, k: {1: 0, 2: 0, 3: 1, 4: 1})
        with pytest.raises(QueryError, match="simple"):
            handle.warm_closure()
        with pytest.raises(QueryError, match="simple"):
            handle.to_container(include_closure=True)
        handle.save(tmp_path / "g.grps")  # default: no closure, fine
        loaded = ShardedCompressedGraph.open(tmp_path / "g.grps")
        assert not loaded.closure_persisted

    def test_corrupt_closure_rejected(self):
        with pytest.raises(EncodingError, match="closure"):
            BoundaryClosure.from_bytes(b"\x05\x01")
        closure = BoundaryClosure([], [])
        with pytest.raises(EncodingError, match="trailing"):
            BoundaryClosure.from_bytes(closure.to_bytes() + b"\x00")
        # Row bits beyond the node count mark a corrupt container.
        crafted = BoundaryClosure([3, 7], [1, 2]).to_bytes()
        corrupted = crafted[:-1] + bytes([crafted[-1] | 0x80])
        with pytest.raises(EncodingError, match="beyond"):
            BoundaryClosure.from_bytes(corrupted)

    def test_mismatched_closure_rejected_at_load(self):
        """A structurally valid closure over the wrong boundary node
        set (a spliced container) must fail at load like the meta
        shard-count mismatch does — not as a KeyError at query time."""
        from repro.encoding.container import (
            decode_sharded_container,
            encode_sharded_container,
        )
        graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=4, partitioner="bfs",
            validate=False)
        handle.warm_closure()
        container = decode_sharded_container(handle.to_bytes())
        wrong = BoundaryClosure([1, 2], [2, 1]).to_bytes()
        spliced = encode_sharded_container(container.meta,
                                           container.shards, wrong)
        with pytest.raises(EncodingError, match="boundary node"):
            ShardedCompressedGraph.from_bytes(spliced.data)


# ----------------------------------------------------------------------
# The closure route keeps its probe promise
# ----------------------------------------------------------------------
def test_closure_reach_probes_at_most_one_batch_per_endpoint_shard():
    """Acceptance: cross-shard reach = one in-shard batch per endpoint
    shard (plus closure hops), never per-hop chaining."""
    graph, alphabet = SMOKE_CORPORA["rdf-identica"]()
    handle = ShardedCompressedGraph.compress(
        graph, alphabet, shards=4, partitioner="bfs", validate=False,
        cache_size=0)
    handle.warm_closure()

    calls = []
    originals = [shard.batch for shard in handle.shards]
    for index, shard in enumerate(handle.shards):
        def counted(requests, _index=index,
                    _original=originals[index], **kwargs):
            calls.append(_index)
            return _original(requests, **kwargs)
        shard.batch = counted

    total = handle.node_count()
    rng = random.Random(37)
    checked = 0
    for _ in range(200):
        source = rng.randint(1, total)
        target = rng.randint(1, total)
        source_shard = handle._owner(source)
        target_shard = handle._owner(target)
        if source_shard == target_shard:
            continue
        plan = handle.planner.plan(source_shard, target_shard,
                                   closure_built=True)
        if plan.strategy != "closure":
            continue
        calls.clear()
        handle.reach(source, target)
        assert len(calls) <= 2, (source, target, calls)
        assert calls.count(source_shard) <= 1
        assert calls.count(target_shard) <= 1
        assert set(calls) <= {source_shard, target_shard}
        checked += 1
    assert checked >= 20  # the sample really exercised the route
