"""Failure injection: corrupted inputs must fail loudly, never hang.

A production decoder's contract: any byte-level corruption raises
:class:`ReproError` (usually :class:`EncodingError`) or — when the
corruption happens to decode into a structurally valid but different
grammar — still terminates and yields a validating grammar.  It must
never raise foreign exceptions like IndexError or loop forever.
"""

import random

import pytest

from helpers import copies_graph, random_simple_graph, theta_graph

from repro import compress
from repro.encoding import decode_grammar, encode_grammar
from repro.exceptions import ReproError


def _blob(builder):
    graph, alphabet = builder()
    return encode_grammar(compress(graph, alphabet).grammar).data


def _attempt_decode(data: bytes) -> None:
    """Decode; only library errors (or success) are acceptable."""
    try:
        grammar = decode_grammar(data)
    except ReproError:
        return
    except RecursionError:  # pragma: no cover - would be a real bug
        pytest.fail("decoder recursed unboundedly")
    grammar.validate()


class TestTruncation:
    def test_every_prefix_fails_cleanly(self):
        data = _blob(theta_graph)
        for length in range(len(data)):
            _attempt_decode(data[:length])

    def test_empty_input(self):
        with pytest.raises(ReproError):
            decode_grammar(b"")


class TestBitFlips:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_single_byte_corruptions(self, seed):
        data = bytearray(_blob(lambda: copies_graph(16)))
        rng = random.Random(seed)
        for _ in range(60):
            corrupted = bytearray(data)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            _attempt_decode(bytes(corrupted))

    def test_random_truncation_plus_flip(self):
        data = _blob(lambda: random_simple_graph(2))
        rng = random.Random(42)
        for _ in range(40):
            cut = rng.randrange(5, len(data))
            corrupted = bytearray(data[:cut])
            if corrupted:
                corrupted[rng.randrange(len(corrupted))] ^= 0xFF
            _attempt_decode(bytes(corrupted))


class TestGarbage:
    def test_random_bytes(self):
        rng = random.Random(7)
        for _ in range(30):
            noise = bytes(rng.randrange(256)
                          for _ in range(rng.randrange(1, 400)))
            with pytest.raises(ReproError):
                decode_grammar(b"GRPR\x01" + noise)

    def test_wrong_magic(self):
        with pytest.raises(ReproError):
            decode_grammar(b"XXXX" + b"\x00" * 64)


class TestSemanticGuards:
    def test_oversized_section_length(self):
        data = bytearray(_blob(theta_graph))
        # Blow up the alphabet-length varint (offset 6 after magic,
        # version and k) to point far past the buffer.
        data[6:7] = b"\xff\xff\xff\x7f"
        with pytest.raises(ReproError):
            decode_grammar(bytes(data))
