"""Unit tests for the iterative Tarjan SCC implementation."""

import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.tarjan import condensation, strongly_connected_components


def _as_sets(components):
    return {frozenset(c) for c in components}


class TestTarjan:
    def test_empty(self):
        assert strongly_connected_components([], {}) == []

    def test_isolated_nodes(self):
        comps = strongly_connected_components([1, 2, 3], {})
        assert _as_sets(comps) == {frozenset({1}), frozenset({2}),
                                   frozenset({3})}

    def test_simple_cycle(self):
        succ = {1: [2], 2: [3], 3: [1]}
        comps = strongly_connected_components([1, 2, 3], succ)
        assert _as_sets(comps) == {frozenset({1, 2, 3})}

    def test_dag_is_all_singletons(self):
        succ = {1: [2, 3], 2: [4], 3: [4]}
        comps = strongly_connected_components([1, 2, 3, 4], succ)
        assert len(comps) == 4

    def test_reverse_topological_emission(self):
        # 1 -> 2 -> 3 (all singletons): sinks are emitted first.
        succ = {1: [2], 2: [3]}
        comps = strongly_connected_components([1, 2, 3], succ)
        assert comps == [[3], [2], [1]]

    def test_two_cycles_with_bridge(self):
        succ = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        comps = _as_sets(strongly_connected_components([1, 2, 3, 4], succ))
        assert comps == {frozenset({1, 2}), frozenset({3, 4})}

    def test_long_path_no_recursion_limit(self):
        n = 50_000
        succ = {i: [i + 1] for i in range(n)}
        comps = strongly_connected_components(range(n + 1), succ)
        assert len(comps) == n + 1

    def test_condensation_structure(self):
        succ = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        component_of, comps, dag = condensation([1, 2, 3, 4], succ)
        assert component_of[1] == component_of[2]
        assert component_of[3] == component_of[4]
        src = component_of[1]
        dst = component_of[3]
        assert dst in dag[src]
        assert src not in dag[dst]
        assert len(comps) == 2


@settings(max_examples=50)
@given(st.integers(0, 10_000))
def test_matches_networkx_on_random_digraphs(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 40)
    edges = [(rng.randrange(n), rng.randrange(n))
             for _ in range(rng.randint(0, 120))]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    succ = {u: sorted(graph.successors(u)) for u in graph}
    ours = _as_sets(strongly_connected_components(range(n), succ))
    theirs = {frozenset(c) for c in nx.strongly_connected_components(graph)}
    assert ours == theirs
