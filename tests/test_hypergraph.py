"""Unit tests for the hypergraph data model (paper section II)."""

import pytest

from repro import Alphabet, Hypergraph
from repro.exceptions import HypergraphError


class TestConstruction:
    def test_auto_node_ids_start_at_one(self):
        graph = Hypergraph()
        assert graph.add_node() == 1
        assert graph.add_node() == 2

    def test_explicit_node_ids(self):
        graph = Hypergraph()
        graph.add_node(5)
        assert graph.add_node() == 6

    def test_duplicate_node_rejected(self):
        graph = Hypergraph()
        graph.add_node(1)
        with pytest.raises(HypergraphError):
            graph.add_node(1)

    def test_zero_node_id_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph().add_node(0)

    def test_edge_needs_existing_nodes(self):
        graph = Hypergraph()
        graph.add_node()
        with pytest.raises(HypergraphError):
            graph.add_edge(1, (1, 2))

    def test_attachment_repetition_rejected(self):
        """Paper restriction (1): att contains no node twice."""
        graph = Hypergraph()
        graph.add_node()
        with pytest.raises(HypergraphError):
            graph.add_edge(1, (1, 1))

    def test_external_repetition_rejected(self):
        """Paper restriction (2): ext contains no node twice."""
        graph = Hypergraph()
        graph.add_node()
        with pytest.raises(HypergraphError):
            graph.set_external((1, 1))

    def test_from_edges_builder(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3))],
                                      num_nodes=4, ext=(1,))
        assert graph.node_size == 4
        assert graph.num_edges == 2
        assert graph.ext == (1,)

    def test_hyperedge(self):
        graph = Hypergraph.from_edges([(3, (1, 2, 3))])
        (eid, edge), = graph.edges()
        assert edge.rank == 3
        assert graph.edge(eid).att == (1, 2, 3)


class TestMutation:
    def test_remove_edge_updates_incidence(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        (eid, _), = graph.edges()
        graph.remove_edge(eid)
        assert graph.degree(1) == 0
        assert not graph.has_edge(eid)

    def test_remove_missing_edge_raises(self):
        with pytest.raises(HypergraphError):
            Hypergraph().remove_edge(9)

    def test_remove_node_requires_isolation(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        with pytest.raises(HypergraphError):
            graph.remove_node(1)

    def test_remove_external_node_rejected(self):
        graph = Hypergraph()
        graph.add_node()
        graph.set_external((1,))
        with pytest.raises(HypergraphError):
            graph.remove_node(1)

    def test_remove_isolated_node(self):
        graph = Hypergraph()
        graph.add_node()
        graph.remove_node(1)
        assert graph.node_size == 0


class TestSizes:
    def test_paper_size_measure(self):
        """Rank-<=2 edges cost 1, larger edges their rank (section II)."""
        graph = Hypergraph.from_edges(
            [(1, (1, 2)), (2, (3,)), (3, (1, 2, 3))]
        )
        assert graph.node_size == 3
        assert graph.edge_size == 1 + 1 + 3
        assert graph.total_size == 8

    def test_figure_1d_example(self):
        """The formal hypergraph of the paper's Figure 1d."""
        graph = Hypergraph.from_edges(
            [(1, (1, 2)), (2, (2, 3)), (3, (2, 1, 3))]
        )
        assert graph.node_size == 3
        assert graph.edge_size == 1 + 1 + 3
        assert graph.rank == 0  # ext = epsilon

    def test_rank_is_external_count(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        graph.set_external((2, 1))
        assert graph.rank == 2


class TestQueries:
    def test_neighbors(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (1, 3)),
                                       (2, (4, 1))])
        assert sorted(graph.neighbors(1)) == [2, 3, 4]

    def test_directed_neighbors(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (3, 1))])
        assert graph.out_neighbors(1) == [2]
        assert graph.in_neighbors(1) == [3]

    def test_degree_counts_incidences(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (3, (1, 2, 3))])
        assert graph.degree(1) == 2
        assert graph.degree(3) == 1

    def test_is_simple(self):
        simple = Hypergraph.from_edges([(1, (1, 2)), (2, (1, 2))])
        assert simple.is_simple()
        parallel = Hypergraph.from_edges([(1, (1, 2)), (1, (1, 2))])
        assert not parallel.is_simple()
        hyper = Hypergraph.from_edges([(1, (1, 2, 3))])
        assert not hyper.is_simple()

    def test_labels_and_edges_with_label(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3)),
                                       (1, (3, 1))])
        assert set(graph.labels()) == {1, 2}
        assert len(graph.edges_with_label(1)) == 2


class TestStructureHelpers:
    def test_copy_is_independent(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        clone = graph.copy()
        clone.add_node()
        assert clone.node_size == 3
        assert graph.node_size == 2

    def test_normalized_renumbers_to_1_m(self):
        graph = Hypergraph()
        graph.add_node(10)
        graph.add_node(3)
        graph.add_edge(1, (10, 3))
        graph.set_external((10,))
        normalized, mapping = graph.normalized()
        assert sorted(normalized.nodes()) == [1, 2]
        assert mapping == {3: 1, 10: 2}
        assert normalized.ext == (2,)
        (_, edge), = normalized.edges()
        assert edge.att == (2, 1)

    def test_structurally_equal_ignores_edge_ids(self):
        a = Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3))])
        b = Hypergraph.from_edges([(2, (2, 3)), (1, (1, 2))])
        assert a.structurally_equal(b)

    def test_structurally_equal_detects_difference(self):
        a = Hypergraph.from_edges([(1, (1, 2))], num_nodes=2)
        b = Hypergraph.from_edges([(1, (2, 1))], num_nodes=2)
        assert not a.structurally_equal(b)
