"""The socket deployment: GraphServer, GraphClient, RemoteShard.

Executor-level conformance lives in ``test_executors.py``; this file
covers the deployment surface itself — lifecycle, liveness, info,
codecs, unix-domain endpoints, concurrent clients, and the router's
LRU sitting in front of the shard processes.
"""

from __future__ import annotations

import threading

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import QueryError
from repro.serving import GraphServer, connect, serve

from helpers import theta_graph


@pytest.fixture(scope="module")
def sharded_bytes():
    graph, alphabet = SMOKE_CORPORA["er-random"]()
    handle = ShardedCompressedGraph.compress(graph, alphabet, shards=2,
                                             validate=False)
    return handle, handle.to_bytes()


@pytest.fixture(scope="module")
def server(sharded_bytes):
    _, blob = sharded_bytes
    with GraphServer(blob).start() as running:
        yield running


class TestLifecycle:
    def test_start_is_idempotent(self, sharded_bytes):
        _, blob = sharded_bytes
        running = serve(blob)
        endpoint = running.endpoint
        try:
            with running:  # __enter__ must not re-start
                assert running.endpoint == endpoint
        finally:
            running.close()

    def test_serve_from_file(self, tmp_path):
        graph, alphabet = theta_graph()
        handle = CompressedGraph.compress(graph, alphabet)
        path = tmp_path / "g.grpr"
        handle.save(path)
        with serve(path) as running:
            assert running.num_shards == 1
            with running.connect() as client:
                assert client.query("nodes") == handle.node_count()

    def test_shard_processes_die_with_close(self, sharded_bytes):
        _, blob = sharded_bytes
        running = serve(blob)
        processes = list(running._processes)
        assert all(process.is_alive() for process in processes)
        running.close()
        assert all(not process.is_alive() for process in processes)

    def test_unix_endpoint(self, tmp_path, sharded_bytes):
        _, blob = sharded_bytes
        address = f"unix:{tmp_path}/graph.sock"
        with serve(blob, address=address) as running:
            assert running.endpoint == address
            with connect(address) as client:
                assert client.ping()
        assert not (tmp_path / "graph.sock").exists()  # cleaned up


class TestClient:
    def test_ping_and_info(self, server, sharded_bytes):
        handle, _ = sharded_bytes
        with server.connect() as client:
            assert client.ping()
            info = client.info()
            assert info["type"] == "sharded"
            assert info["shards"] == 2
            assert info["nodes"] == handle.node_count()

    def test_query_matches_local(self, server, sharded_bytes):
        handle, _ = sharded_bytes
        with server.connect() as client:
            assert client.query("out", 1) == handle.out(1)
            assert client.query("degree") == handle.degree()
            assert client.query("path", 1, 1) == handle.path(1, 1)

    def test_batch_raises_first_error_like_the_handles(self, server):
        with server.connect() as client:
            with pytest.raises(QueryError, match="unknown batch query"):
                client.batch([("nope", 1)])

    def test_empty_batch(self, server):
        with server.connect() as client:
            assert client.batch([]) == []
            assert client.execute([]) == []

    def test_binary_codec_client(self, sharded_bytes):
        handle, blob = sharded_bytes
        with serve(blob, codec="binary") as running:
            with running.connect() as client:
                requests = [("out", node) for node in range(1, 12)]
                assert client.batch(requests) == \
                    handle.batch(requests)

    def test_many_concurrent_clients(self, server, sharded_bytes):
        handle, _ = sharded_bytes
        expected = handle.batch([("out", node)
                                 for node in range(1, 21)])
        failures = []

        def worker():
            try:
                with server.connect() as client:
                    got = client.batch([("out", node)
                                        for node in range(1, 21)])
                    if got != expected:
                        failures.append(got)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestProtocolRobustness:
    def test_oversized_frame_answers_then_closes(self, server):
        """A length header past the frame limit desynchronizes the
        stream; the server must answer with a structured ``error``
        frame (fatal) and then close deterministically — not loop
        misparsing payload bytes, and not drop a bare RST — while
        continuing to serve new connections."""
        import socket as socket_module
        import struct

        from repro.serving.codec import parse_address, recv_message

        _, target = parse_address(server.endpoint)
        raw = socket_module.create_connection(target, timeout=5)
        try:
            raw.sendall(struct.pack("!I", 2 ** 31) + b"XXXX")
            raw.settimeout(5)
            # First: the structured verdict (the peer learns *why*).
            reply = recv_message(raw)
            assert reply["op"] == "error"
            assert reply["fatal"] is True
            assert "exceeds" in reply["message"]
            # Then: the deterministic close (FIN, or RST when our
            # unread payload bytes are still in its receive buffer).
            try:
                assert raw.recv(4096) == b""
            except ConnectionResetError:
                pass
        finally:
            raw.close()
        with server.connect() as client:  # the server itself survives
            assert client.ping()

    def test_undecodable_payload_keeps_the_connection(self, server):
        """A bad payload of a well-framed message is recoverable: the
        server answers with an error message and the same connection
        keeps working."""
        import socket as socket_module
        import struct

        from repro.serving.codec import parse_address, recv_message

        _, target = parse_address(server.endpoint)
        raw = socket_module.create_connection(target, timeout=5)
        try:
            payload = b"\x00not a known tag"
            raw.sendall(struct.pack("!I", len(payload)) + payload)
            reply = recv_message(raw)
            assert reply["op"] == "error"
        finally:
            raw.close()


class _ChainBudgetHelpers:
    """The 4-shard chain graph + per-proxy round-trip accounting."""

    SHARDS = 4
    PER_SHARD = 5

    def _chain_handle(self):
        from repro import Alphabet, Hypergraph
        alphabet = Alphabet()
        label = alphabet.add_terminal(rank=2, name="e")
        total = self.SHARDS * self.PER_SHARD
        graph = Hypergraph.from_edges(
            [(label, (node, node + 1)) for node in range(1, total)],
            num_nodes=total)
        assign = {node: (node - 1) // self.PER_SHARD
                  for node in graph.nodes()}
        return ShardedCompressedGraph.compress(
            graph, alphabet, shards=self.SHARDS,
            partitioner=lambda g, k: assign)

    def _deltas(self, server, before):
        return [proxy.round_trips - start
                for proxy, start in zip(server._proxies, before)]


class TestCrossShardReachRoundTrips(_ChainBudgetHelpers):
    """Wire-cost budgets of the planned cross-shard reach routes.

    A 4-shard chain (1 -> 2 -> ... -> 20, five nodes per shard) makes
    the boundary sparse and the hop count maximal, so per-hop routing
    would cost one round trip per probe.  The batched routes must
    stay within one ``batch()`` frame per shard touched.
    """

    def test_closure_reach_one_frame_per_endpoint_shard(self):
        """Acceptance: a persisted closure answers cross-shard reach
        with at most one routed query per endpoint shard — middle
        shards are never contacted, and nothing is rebuilt."""
        handle = self._chain_handle()
        blob = handle.to_bytes(include_closure=True)
        with serve(blob) as running:
            service = running.service
            assert service.closure_built and service.closure_persisted
            with running.connect() as client:
                before = [proxy.round_trips
                          for proxy in running._proxies]
                # Shard 0 interior node -> shard 3 interior node.
                assert client.query("reach", 2, 18) is True
                deltas = self._deltas(running, before)
                assert deltas[0] <= 1          # source-shard batch
                assert deltas[-1] <= 1         # target-shard batch
                assert deltas[1] == deltas[2] == 0  # no chaining hops
                # The reverse direction is decided by the closure and
                # the source batch alone (no exit is reachable).
                before = [proxy.round_trips
                          for proxy in running._proxies]
                assert client.query("reach", 18, 2) is False
                deltas = self._deltas(running, before)
                assert sum(deltas) <= 2

    def test_chained_reach_ships_one_frame_per_shard_wave(self):
        """ROADMAP follow-on: when the router does fall back to
        chaining, each shard's exit probes travel as one ``batch()``
        frame — one round trip per (shard, wave), not one per hop."""
        handle = self._chain_handle()
        blob = handle.to_bytes(include_closure=False)
        with serve(blob) as running:
            service = running.service
            assert not service.closure_built
            service.planner.force = "chaining"
            with running.connect() as client:
                before = [proxy.round_trips
                          for proxy in running._proxies]
                assert client.query("reach", 2, 18) is True
                deltas = self._deltas(running, before)
                # The chain walks each shard exactly once; per-hop
                # routing would cost a round trip per exit probe.
                assert all(delta <= 1 for delta in deltas), deltas
                assert sum(deltas) <= self.SHARDS
                before = [proxy.round_trips
                          for proxy in running._proxies]
                assert client.query("reach", 18, 2) is False
                deltas = self._deltas(running, before)
                assert sum(deltas) <= 1

    def test_served_chain_answers_match_local(self):
        handle = self._chain_handle()
        total = handle.node_count()
        requests = [("reach", source, target)
                    for source in (1, 7, 13, 20)
                    for target in (1, 6, 12, 20)]
        expected = handle.batch(requests)
        with serve(handle.to_bytes(include_closure=True)) as running:
            with running.connect() as client:
                assert client.batch(requests) == expected
        assert total == self.SHARDS * self.PER_SHARD


class TestReplicatedRoundTripBudgets(_ChainBudgetHelpers):
    """The wire-cost budgets are **per logical shard**, not per
    endpoint: replicating a shard must not multiply round trips.

    Every lane here runs with ``replicas=2`` and asserts the *same*
    budgets the single-replica lanes above pin — one completed
    exchange per logical shard touched, no matter how many replicas
    stand behind it.
    """

    def test_closure_reach_budget_holds_under_replicas(self):
        handle = self._chain_handle()
        blob = handle.to_bytes(include_closure=True)
        with serve(blob, replicas=2, cache_size=0) as running:
            assert all(len(proxy.endpoints) == 2
                       for proxy in running._proxies)
            with running.connect() as client:
                before = [proxy.round_trips
                          for proxy in running._proxies]
                assert client.query("reach", 2, 18) is True
                deltas = self._deltas(running, before)
                assert deltas[0] <= 1          # source-shard batch
                assert deltas[-1] <= 1         # target-shard batch
                assert deltas[1] == deltas[2] == 0  # no chaining hops

    def test_replica_trips_sum_to_the_logical_counter(self):
        handle = self._chain_handle()
        blob = handle.to_bytes(include_closure=True)
        with serve(blob, replicas=2, cache_size=0) as running:
            with running.connect() as client:
                for node in range(1, 19):
                    assert client.query("out", node) == \
                        handle.out(node)
            for proxy in running._proxies:
                trips = proxy.replica_round_trips
                assert len(trips) == 2
                assert sum(trips) == proxy.round_trips

    def test_failover_costs_one_completed_exchange(self):
        """A request that failed over still counts a single completed
        exchange on the logical shard: the dead replica's aborted
        attempt never completed, so it never hits the meter."""
        handle = self._chain_handle()
        blob = handle.to_bytes(include_closure=True)
        with serve(blob, replicas=2, cache_size=0) as running:
            with running.connect() as client:
                # Warm the links so the kill poisons live connections.
                assert client.query("out", 2) == handle.out(2)
                assert client.query("out", 3) == handle.out(3)
                running.kill_replica(0, 0)
                before = running._proxies[0].round_trips
                failovers = running._proxies[0].failovers
                # Two queries cover both round-robin positions: one
                # of them fails over from the dead replica.
                assert client.query("out", 2) == handle.out(2)
                assert client.query("out", 4) == handle.out(4)
                assert running._proxies[0].failovers > failovers
                assert running._proxies[0].round_trips - before <= 2


class TestShutdownRaces:
    """Deliberate shutdown vs. unexpected death must be told apart.

    The old accept loop swallowed *every* ``OSError`` with a bare
    ``return``, so a listener dying under a healthy server looked
    exactly like ``close()``.  Now only the flagged path is silent;
    anything else records a :class:`ReproError` with the errno on
    ``fault``.
    """

    def test_deliberate_close_records_no_fault(self, sharded_bytes):
        _, blob = sharded_bytes
        running = serve(blob)
        loop = running._loop
        running.close()
        assert loop.fault is None
        assert running.fault is None

    def test_listener_death_is_a_fault_with_errno(self, sharded_bytes):
        import socket as socket_module
        import time

        from repro.exceptions import ReproError

        _, blob = sharded_bytes
        running = serve(blob)
        try:
            loop = running._loop
            # Not close(): yank the listener out from under a healthy
            # server (shutdown() wakes the pending accept; close()
            # would silently deregister the fd from the event loop).
            running._listener.shutdown(socket_module.SHUT_RDWR)
            deadline = time.monotonic() + 5
            while loop.fault is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert isinstance(loop.fault, ReproError)
            assert "unexpectedly" in str(loop.fault)
            assert "errno" in str(loop.fault)
        finally:
            running.close()


class TestRouterCache:
    def test_router_lru_absorbs_hot_traffic(self, sharded_bytes):
        """Repeated remote batches are answered by the router's LRU
        without another shard round trip (the cache-aware planner in
        front of RemoteShard links)."""
        _, blob = sharded_bytes
        with serve(blob) as running:
            with running.connect() as client:
                requests = [("out", node) for node in range(1, 9)]
                first = client.batch(requests)
                assert client.batch(requests) == first
                assert client.batch(list(reversed(requests))) == \
                    list(reversed(first))
