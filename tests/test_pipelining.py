"""Async pipelined serving: tagged frames, the multiplexing client.

The wire-layer hardening pass and the pipelined front end, pinned:

* the **sequence-tagged frame variant** (lowercase ``j``/``b`` tags)
  round-trips through both codecs and coexists with untagged frames;
* **truncated frames** raise :class:`FrameError` instead of
  masquerading as clean closes (only a death exactly on a frame
  boundary is a clean EOF);
* the **multiplexing client**: interleaved replies resolve to the
  correct futures under a deliberately reordering mock server, a
  reply to a never-issued sequence id poisons the connection with a
  clean raise, and a server killed mid-batch fails every pending
  future instead of hanging;
* **pipelined answers are bit-identical** to strict and in-process
  evaluation, and legacy untagged clients keep their strict
  request–response contract against the event-loop server.

Every test here carries a hard SIGALRM timeout (see
``tests/conftest.py``): a hung event loop fails fast instead of
stalling the suite.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import ReproError
from repro.serving import GraphClient, serve
from repro.serving.codec import (
    MAX_FRAME_BYTES,
    FrameError,
    OversizedFrameError,
    WireError,
    bind_socket,
    decode_frame,
    encode_frame,
    frame_bytes,
    recv_frame,
    send_frame,
)

pytestmark = pytest.mark.timeout(60)


# ----------------------------------------------------------------------
# Sequence-tagged frames (pure codec, no sockets)
# ----------------------------------------------------------------------
@pytest.mark.smoke
class TestSequenceTaggedFrames:
    @pytest.mark.parametrize("codec", ("json", "binary"))
    @pytest.mark.parametrize("seq", (0, 1, 127, 128, 3 * 10 ** 5))
    def test_round_trip_preserves_the_sequence_id(self, codec, seq):
        message = {"op": "results",
                   "results": [{"id": 0, "value": [1, 2, 3]}]}
        payload = encode_frame(message, codec, seq=seq)
        assert payload[0:1] in (b"j", b"b")  # the lowercase tags
        assert decode_frame(payload) == (seq, message)

    @pytest.mark.parametrize("codec", ("json", "binary"))
    def test_untagged_frames_decode_with_no_sequence_id(self, codec):
        payload = encode_frame({"op": "ping"}, codec)
        assert payload[0:1] in (b"J", b"B")  # unchanged legacy tags
        assert decode_frame(payload) == (None, {"op": "ping"})

    def test_negative_sequence_id_is_rejected(self):
        with pytest.raises(WireError, match=">= 0"):
            encode_frame({"op": "ping"}, "json", seq=-1)

    def test_truncated_sequence_tag(self):
        # A lowercase tag followed by an unterminated uvarint.
        with pytest.raises(WireError, match="truncated sequence tag"):
            decode_frame(bytes([ord("j"), 0x80]))

    def test_decode_failure_carries_the_sequence_id(self):
        """A bad payload *after* the sequence id still tells the
        server which request to address its error reply to."""
        payload = bytes([ord("j"), 42]) + b"not json"
        with pytest.raises(WireError) as excinfo:
            decode_frame(payload)
        assert excinfo.value.seq == 42


# ----------------------------------------------------------------------
# Truncated frames over real sockets (the _recv_exact regression)
# ----------------------------------------------------------------------
@pytest.mark.smoke
class TestTruncatedFrames:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5)
        b.settimeout(5)
        return a, b

    def test_clean_close_on_a_frame_boundary_is_none(self):
        a, b = self._pair()
        send_frame(a, {"op": "ping"}, seq=7)
        a.close()
        assert recv_frame(b) == (7, {"op": "ping"})
        assert recv_frame(b) is None  # boundary death = clean EOF
        b.close()

    def test_death_mid_header_raises_frame_error(self):
        """The regression: a peer vanishing inside the length header
        used to decode as ``None`` — indistinguishable from a clean
        close, silently dropping the truncation."""
        a, b = self._pair()
        a.sendall(b"\x00\x00")  # half a length header
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_death_mid_payload_raises_frame_error(self):
        a, b = self._pair()
        frame = frame_bytes({"op": "info"}, seq=3)
        a.sendall(frame[:-2])  # everything but the last two bytes
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_oversized_header_raises_its_own_error(self):
        a, b = self._pair()
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(OversizedFrameError, match="exceeds"):
            recv_frame(b)
        a.close()
        b.close()


# ----------------------------------------------------------------------
# A scriptable mock server (exact control over reply order and death)
# ----------------------------------------------------------------------
class MockServer:
    """Accepts one connection and hands it to a scenario callback."""

    def __init__(self, scenario):
        self._listener, self.endpoint = bind_socket("127.0.0.1:0")
        self.error = None

        def main():
            conn, _ = self._listener.accept()
            try:
                scenario(conn)
            except Exception as exc:  # surfaced by the test
                self.error = exc
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

        self._thread = threading.Thread(target=main, daemon=True)
        self._thread.start()

    def join(self, timeout=5):
        self._thread.join(timeout)

    def close(self):
        self._listener.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _echo_results(conn, seq, message):
    """Answer one batch frame: value = 10 * first argument."""
    results = [{"id": entry["id"], "value": entry["args"][0] * 10}
               for entry in message["requests"]]
    send_frame(conn, {"op": "results", "results": results}, seq=seq)


class TestMultiplexingClient:
    def test_reordered_replies_resolve_the_correct_futures(self):
        """The server answers the second in-flight batch first; each
        future must still get *its* answer, keyed by sequence id."""
        arrived = threading.Event()

        def scenario(conn):
            frames = []
            for _ in range(2):
                frames.append(recv_frame(conn))
            arrived.set()
            for seq, message in reversed(frames):  # deliberate reorder
                _echo_results(conn, seq, message)

        with MockServer(scenario) as server:
            with GraphClient(server.endpoint, pipeline=True) as client:
                first = client.execute_async([("out", 1)])
                second = client.execute_async([("out", 2)])
                assert arrived.wait(5)
                assert second.result(5)[0].value == 20
                assert first.result(5)[0].value == 10
            server.join()
            assert server.error is None

    def test_reply_to_a_never_issued_sequence_id_raises(self):
        """A reply whose sequence id was never issued is a protocol
        violation: the pending future raises cleanly and the
        connection is poisoned for every later call."""

        def scenario(conn):
            seq, message = recv_frame(conn)
            _echo_results(conn, seq + 1000, message)
            recv_frame(conn)  # hold the socket open until the fault

        with MockServer(scenario) as server:
            client = GraphClient(server.endpoint, pipeline=True)
            try:
                future = client.execute_async([("out", 1)])
                with pytest.raises(WireError,
                                   match="never issued"):
                    future.result(5)
                with pytest.raises(WireError, match="never issued"):
                    client.execute([("out", 2)])
            finally:
                client.close()

    def test_server_death_mid_batch_fails_pending_futures(self):
        """A server that dies with requests in flight must fail every
        pending future promptly — not leave callers hung."""

        def scenario(conn):
            recv_frame(conn)  # swallow the batch, answer nothing

        with MockServer(scenario) as server:
            client = GraphClient(server.endpoint, pipeline=True)
            try:
                future = client.execute_async([("out", 1)])
                server.join()  # scenario returns -> connection closes
                with pytest.raises(WireError,
                                   match="in flight"):
                    future.result(10)
            finally:
                client.close()

    def test_reply_truncated_mid_frame_fails_the_future(self):
        """A server dying *inside* a reply frame is a wire failure on
        the client too — the FrameError reaches the future."""

        def scenario(conn):
            seq, message = recv_frame(conn)
            frame = frame_bytes({"op": "results", "results": []},
                                seq=seq)
            conn.sendall(frame[:-1])  # all but the last byte

        with MockServer(scenario) as server:
            client = GraphClient(server.endpoint, pipeline=True)
            try:
                future = client.execute_async([("out", 1)])
                server.join()
                with pytest.raises(FrameError, match="mid-frame"):
                    future.result(10)
            finally:
                client.close()

    def test_untagged_fatal_error_fails_the_connection(self):
        """An untagged ``error`` frame (the server's oversized-frame
        verdict) is connection-level: every pending future fails with
        the server's message."""

        def scenario(conn):
            recv_frame(conn)
            send_frame(conn, {"op": "error",
                              "message": "frame too large",
                              "fatal": True})

        with MockServer(scenario) as server:
            client = GraphClient(server.endpoint, pipeline=True)
            try:
                future = client.execute_async([("out", 1)])
                with pytest.raises(WireError, match="frame too large"):
                    future.result(10)
            finally:
                client.close()

    def test_per_request_errors_stay_per_request(self):
        """An error frame addressed to one sequence id fails only
        that future; others on the same connection still resolve."""

        def scenario(conn):
            for _ in range(2):
                seq, message = recv_frame(conn)
                if message["requests"][0]["args"][0] == 1:
                    send_frame(conn, {"op": "error",
                                      "message": "nope"}, seq=seq)
                else:
                    _echo_results(conn, seq, message)

        with MockServer(scenario) as server:
            with GraphClient(server.endpoint, pipeline=True) as client:
                bad = client.execute_async([("out", 1)])
                good = client.execute_async([("out", 2)])
                assert good.result(5)[0].value == 20
                with pytest.raises(WireError, match="nope"):
                    bad.result(5)

    def test_pool_size_needs_pipelining(self):
        with pytest.raises(ReproError, match="pipeline=True"):
            GraphClient("127.0.0.1:1", pool_size=4)

    def test_execute_async_needs_pipelining(self):
        client = GraphClient("127.0.0.1:1")  # never connects
        with pytest.raises(ReproError, match="pipeline"):
            client.execute_async([("out", 1)])


# ----------------------------------------------------------------------
# Against the real event-loop server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_server():
    graph, alphabet = SMOKE_CORPORA["er-random"]()
    handle = ShardedCompressedGraph.compress(graph, alphabet, shards=2,
                                             validate=False)
    with serve(handle.to_bytes(), cache_size=0) as server:
        yield handle, server


def _mixed_requests(total, count=60, seed=11):
    import random
    rng = random.Random(seed)
    requests = [("degree",), ("components",), ("nodes",), ("edges",)]
    for _ in range(count):
        kind = rng.choice(["out", "in", "neighborhood", "reach",
                           "degree", "path"])
        if kind in ("reach", "path"):
            requests.append((kind, rng.randint(1, min(total, 25)),
                             rng.randint(1, total)))
        else:
            requests.append((kind, rng.randint(1, min(total, 50))))
    return requests


@pytest.mark.smoke
class TestPipelinedServing:
    def test_pipelined_answers_are_bit_identical(self, sharded_server):
        """Conformance under pipelining: strict client, pipelined
        client (pool of 1 and of 3) and the in-process handle agree
        value-for-value *and* type-for-type on the full §V family."""
        handle, server = sharded_server
        requests = _mixed_requests(handle.node_count())
        reference = [result.value for result in
                     handle.execute(requests)]
        with server.connect() as strict, \
                server.connect(pipeline=True) as mux, \
                server.connect(pipeline=True, pool_size=3) as pooled:
            for client in (strict, mux, pooled):
                answers = [result.value
                           for result in client.execute(requests)]
                assert answers == reference
                for expected, actual in zip(reference, answers):
                    assert type(actual) is type(expected)

    def test_many_overlapping_windows_per_connection(self,
                                                     sharded_server):
        """The tentpole shape: many in-flight batches on one
        connection, answered as each completes, all correct."""
        handle, server = sharded_server
        requests = _mixed_requests(handle.node_count(), count=20,
                                   seed=29)
        expected = handle.batch(requests)
        with server.connect(pipeline=True) as client:
            futures = [client.execute_async(requests)
                       for _ in range(24)]
            for future in futures:
                assert [result.unwrap()
                        for result in future.result(30)] == expected

    def test_slow_batch_does_not_block_fast_ones(self, sharded_server):
        """Head-of-line blocking is gone: a ping issued *after* a
        large in-flight batch completes without waiting for it."""
        handle, server = sharded_server
        total = handle.node_count()
        heavy = [("reach", source % total + 1, target % total + 1)
                 for source in range(40) for target in range(25)]
        with server.connect(pipeline=True) as client:
            slow = client.execute_async(heavy)
            assert client.ping()  # resolves while `slow` is in flight
            assert all(result.ok for result in slow.result(60))

    def test_legacy_untagged_clients_still_served(self, sharded_server):
        """Back-compat: the strict client speaks untagged frames to
        the same event-loop server and sees the legacy contract."""
        handle, server = sharded_server
        with server.connect() as client:
            assert not client.pipeline
            assert client.ping()
            assert client.query("out", 1) == handle.out(1)

    def test_info_and_ping_over_the_pipelined_client(self,
                                                     sharded_server):
        _, server = sharded_server
        with server.connect(pipeline=True) as client:
            assert client.ping()
            assert client.info()["shards"] == 2

    def test_round_trips_counted_across_the_pool(self, sharded_server):
        _, server = sharded_server
        with server.connect(pipeline=True, pool_size=2) as client:
            before = client.round_trips
            client.query("out", 1)
            client.query("out", 2)
            assert client.round_trips == before + 2

    def test_binary_codec_pipelines_too(self):
        graph, alphabet = SMOKE_CORPORA["communication"]()
        handle = CompressedGraph.compress(graph, alphabet,
                                          validate=False)
        requests = _mixed_requests(handle.node_count(), count=30)
        expected = handle.batch(requests)
        with serve(handle.to_bytes(), codec="binary",
                   pipeline=8) as server:
            with server.connect(pipeline=True) as client:
                futures = [client.execute_async(requests)
                           for _ in range(6)]
                for future in futures:
                    assert [result.unwrap()
                            for result in future.result(30)] == expected


@pytest.mark.smoke
class TestServerKilledMidBatch:
    def test_shard_death_surfaces_as_error_not_hang(self):
        """Kill the shard processes under a served router: an
        in-flight client batch must come back as **per-request
        structured errors** — never a hang, never a batch abort."""
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        requests = [("out", node) for node in range(1, 30)]
        with serve(handle.to_bytes(), cache_size=0) as server:
            with server.connect(pipeline=True, timeout=20) as client:
                assert client.execute(requests)  # healthy first
                for process in server._processes:
                    process.kill()
                for process in server._processes:
                    process.join(timeout=5)
                results = client.execute(requests)
                assert len(results) == len(requests)
                assert all(result.error for result in results)
                assert any("unavailable" in result.error
                           for result in results)
