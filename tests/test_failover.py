"""Multi-host topology: manifests, replica failover, fault injection.

The contract under test, three layers deep:

* :class:`ClusterManifest` — the pure-data topology file — rejects
  every malformed shape with a :class:`ManifestError` naming the
  offending field, and a router started from a stale or foreign
  manifest fails loudly *before* routing a single query.
* :class:`ReplicatedShard` — round-robin reads over N replica
  endpoints; a retryable link failure (kill, hang past the timeout,
  truncation, reset) is resent to a peer, and only when *every*
  replica fails does the request surface as a per-request
  :class:`ShardUnavailable` error — never a hang, never a batch abort.
* The fault matrix — :class:`faultinject.FaultyProxy` breaks one link
  on the Kth frame (kill / hang / truncate / delay, each direction,
  client↔router and router↔shard) and every lane must end with
  answers **bit-identical to the inline oracle** plus observable
  proof the fault actually fired (``proxy.triggered``) and was
  recovered from (``failovers``).

Determinism policy: no lane sleeps to "wait for" recovery — faults
trigger on frame counts, hangs are bounded by the per-request
timeout, and every test carries the suite's SIGALRM hard timeout.
"""

from __future__ import annotations

import json

import pytest

from faultinject import FaultyProxy

from repro import (
    Alphabet,
    CompressedGraph,
    Hypergraph,
    ShardedCompressedGraph,
)
from repro.bench.corpora import SMOKE_CORPORA
from repro.exceptions import ManifestError, ReproError, ShardUnavailable
from repro.serving import (
    ClusterManifest,
    GraphClient,
    GraphServer,
    ReplicatedShard,
    ShardHost,
    container_hash,
    serve,
)

pytestmark = pytest.mark.timeout(60)

SHARDS = 2
PER_SHARD = 5


def chain_handle(shards: int = SHARDS, per_shard: int = PER_SHARD
                 ) -> ShardedCompressedGraph:
    """A path graph with a pinned node→shard map.

    Node ``n`` lives on shard ``(n - 1) // per_shard``, so tests can
    aim a query at a specific shard without probing the partitioner.
    """
    alphabet = Alphabet()
    label = alphabet.add_terminal(rank=2, name="e")
    total = shards * per_shard
    graph = Hypergraph.from_edges(
        [(label, (node, node + 1)) for node in range(1, total)],
        num_nodes=total)
    assign = {node: (node - 1) // per_shard for node in graph.nodes()}
    return ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards,
        partitioner=lambda g, k: assign)


def probe_requests(handle) -> list:
    """A mixed read batch touching every shard (owner-local kinds)."""
    total = handle.node_count()
    picks = list(range(1, total + 1, 2))
    return ([("out", node) for node in picks]
            + [("in", node) for node in picks[:3]]
            + [("degree", picks[0], "out"), ("nodes",), ("edges",)])


@pytest.fixture(scope="module")
def chain():
    handle = chain_handle()
    return handle, handle.to_bytes()


@pytest.fixture(scope="module")
def oracle(chain):
    handle, _ = chain
    requests = probe_requests(handle)
    return requests, handle.batch(requests)


# ----------------------------------------------------------------------
# The manifest: pure data, validated on every edge
# ----------------------------------------------------------------------
class TestManifestValidation:
    GOOD_HASH = "0" * 64

    def make(self, **overrides):
        fields = dict(shards=(("127.0.0.1:9000", "127.0.0.1:9001"),
                              ("127.0.0.1:9002",)),
                      grps_hash=self.GOOD_HASH)
        fields.update(overrides)
        return ClusterManifest(**fields)

    def test_round_trips_through_json(self, tmp_path):
        manifest = self.make(epoch=3, codec="binary")
        path = manifest.save(tmp_path / "cluster.json")
        loaded = ClusterManifest.load(path)
        assert loaded == manifest
        assert loaded.num_shards == 2
        assert loaded.endpoints_for(0) == ("127.0.0.1:9000",
                                           "127.0.0.1:9001")

    def test_relative_container_resolves_against_manifest_dir(
            self, tmp_path):
        manifest = self.make(container="graph.grps")
        path = manifest.save(tmp_path / "cluster.json")
        loaded = ClusterManifest.load(path)
        assert loaded.container == str(tmp_path / "graph.grps")

    @pytest.mark.parametrize("overrides,needle", [
        ({"epoch": -1}, "epoch"),
        ({"epoch": True}, "epoch"),
        ({"codec": "xml"}, "codec"),
        ({"grps_hash": "abc"}, "grps_hash"),
        ({"grps_hash": "G" * 64}, "grps_hash"),
        ({"shards": ()}, "no shards"),
        ({"shards": ((),)}, "no replica endpoints"),
        ({"shards": (("localhost",),)}, "invalid"),
        ({"shards": ((12345,),)}, "not a string"),
        ({"version": 99}, "version"),
    ])
    def test_bad_fields_raise_naming_the_field(self, overrides,
                                               needle):
        with pytest.raises(ManifestError, match=needle):
            self.make(**overrides)

    def test_unknown_and_missing_fields(self):
        with pytest.raises(ManifestError, match="unknown"):
            ClusterManifest.from_dict(
                {"grps_hash": self.GOOD_HASH,
                 "shards": [["127.0.0.1:1"]], "surprise": 1})
        with pytest.raises(ManifestError, match="missing"):
            ClusterManifest.from_dict({"shards": [["127.0.0.1:1"]]})
        with pytest.raises(ManifestError, match="JSON object"):
            ClusterManifest.from_dict([1, 2])

    def test_load_failures_name_the_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ManifestError, match="cannot read"):
            ClusterManifest.load(missing)
        garbled = tmp_path / "bad.json"
        garbled.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            ClusterManifest.load(garbled)

    def test_container_verification(self, chain):
        _, blob = chain
        manifest = ClusterManifest.for_container(
            blob, [["127.0.0.1:9000"]])
        assert manifest.matches(blob)
        manifest.verify_container(blob)
        with pytest.raises(ManifestError, match="hash mismatch"):
            manifest.verify_container(blob + b"x")

    def test_endpoints_for_range(self):
        manifest = self.make()
        with pytest.raises(ManifestError, match="out of range"):
            manifest.endpoints_for(2)


# ----------------------------------------------------------------------
# ReplicatedShard unit lanes (no processes)
# ----------------------------------------------------------------------
class TestReplicatedShardUnit:
    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(ReproError):
            ReplicatedShard([])

    def test_all_replicas_unreachable_is_shard_unavailable(self):
        # Nothing listens on these ports: every connect is refused,
        # which is retryable, so the sweep exhausts both replicas.
        proxy = ReplicatedShard(["127.0.0.1:1", "127.0.0.1:2"],
                                timeout=1.0, shard_index=3)
        try:
            with pytest.raises(ShardUnavailable) as caught:
                proxy.node_count()
            message = str(caught.value)
            assert "shard 3" in message
            assert "all 2 replicas unavailable" in message
            assert proxy.failovers == 1  # one resend, then exhaustion
        finally:
            proxy.close()

    def test_query_errors_are_not_failed_over(self, chain):
        """A server that *answers* with an error must not be treated
        as down: resending a request the shard rejected would loop."""
        _, blob = chain
        with serve(blob, cache_size=0) as running:
            shard0 = running._proxies[0]
            before = shard0.replica_round_trips
            with pytest.raises(ReproError):
                shard0.batch([("nope", 1)])
            assert shard0.failovers == 0
            assert all(replica.failures == 0
                       for replica in shard0._replicas)
            # The rejected batch still cost exactly one exchange.
            assert sum(shard0.replica_round_trips) == sum(before) + 1


# ----------------------------------------------------------------------
# Forked replicas: round-robin, kill_replica, conformance
# ----------------------------------------------------------------------
class TestForkedReplicaFailover:
    def test_round_robin_distributes_reads(self, chain):
        _, blob = chain
        with serve(blob, replicas=2, cache_size=0) as running:
            with running.connect() as client:
                for node in range(1, 9):
                    client.query("out", node)
            for proxy in running._proxies:
                trips = proxy.replica_round_trips
                assert len(trips) == 2
                assert all(count > 0 for count in trips), trips

    def test_kill_one_replica_mid_session(self, chain, oracle):
        handle, blob = chain
        requests, expected = oracle
        with serve(blob, replicas=2, cache_size=0) as running:
            with running.connect() as client:
                assert client.batch(requests) == expected
                for shard in range(running.num_shards):
                    running.kill_replica(shard, 0)
                assert client.batch(requests) == expected
                assert client.batch(requests) == expected
            total_failovers = sum(proxy.failovers
                                  for proxy in running._proxies)
            assert total_failovers >= 1

    def test_all_replicas_down_is_per_request_error(self, chain):
        """Dead shard 0 answers *its* requests with a structured
        error; shard 1's requests keep answering — no hang, no batch
        abort, exactly the per-request semantics local batches have."""
        handle, blob = chain
        with serve(blob, replicas=2, cache_size=0,
                   shard_timeout=5.0) as running:
            for replica in range(2):
                running.kill_replica(0, replica)
            with running.connect() as client:
                results = client.execute([("out", 2), ("out", 7)])
            assert len(results) == 2
            assert results[0].error is not None
            assert "unavailable" in results[0].error
            assert results[1].error is None
            assert results[1].value == handle.out(7)

    def test_replica_killed_mid_pipelined_batch(self, chain, oracle):
        """Futures issued before the kill must resolve via retry."""
        handle, blob = chain
        requests, expected = oracle
        with serve(blob, replicas=2, cache_size=0) as running:
            with running.connect(pipeline=True) as client:
                # Warm both replicas of both shards so live (soon to
                # be poisoned) connections exist before the kill.
                assert client.execute(requests) == \
                    handle.execute(requests)
                for shard in range(running.num_shards):
                    running.kill_replica(shard, 0)
                futures = [client.execute_async([request])
                           for request in requests]
                values = [future.result(timeout=30)[0]
                          for future in futures]
            assert [result.value for result in values] == expected
            assert all(result.error is None for result in values)
            assert sum(proxy.failovers
                       for proxy in running._proxies) >= 1

    def test_single_grammar_replicas(self):
        graph, alphabet = SMOKE_CORPORA["er-random"]()
        handle = CompressedGraph.compress(graph, alphabet)
        requests = [("out", node) for node in range(1, 9)] + \
            [("nodes",), ("edges",)]
        expected = handle.batch(requests)
        with serve(handle.to_bytes(), replicas=2,
                   cache_size=0) as running:
            assert running.num_shards == 1
            info = running.service.info()
            with running.connect() as client:
                assert client.info()["replicas"] == [2]
                assert client.batch(requests) == expected
                running.kill_replica(0, 0)
                # Two batches cover both round-robin start positions,
                # so one of them is guaranteed to hit the dead replica
                # and fail over.
                assert client.batch(requests) == expected
                assert client.batch(requests) == expected
            assert running.service.failovers >= 1
        assert info["nodes"] == handle.node_count()

    @pytest.mark.parametrize("corpus", sorted(SMOKE_CORPORA))
    def test_kill_replica_conformance_all_corpora(self, corpus):
        """The harness gate: on every smoke corpus, answers after a
        replica kill are bit-identical to the inline oracle."""
        graph, alphabet = SMOKE_CORPORA[corpus]()
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, shards=2, validate=False)
        nodes = sorted(graph.nodes())
        picks = nodes[::max(1, len(nodes) // 8)][:8]
        requests = ([("out", node) for node in picks]
                    + [("in", picks[0]), ("degree",), ("nodes",),
                       ("edges",)])
        expected = handle.batch(requests)
        with serve(handle.to_bytes(), replicas=2,
                   cache_size=0) as running:
            with running.connect() as client:
                assert client.batch(requests) == expected
                for shard in range(running.num_shards):
                    running.kill_replica(shard, 0)
                assert client.batch(requests) == expected


# ----------------------------------------------------------------------
# The fault matrix: router↔shard links through a FaultyProxy
# ----------------------------------------------------------------------
class RouterShardCluster:
    """2 ShardHosts, each fronted twice: once directly, once proxied.

    The proxy endpoint and the direct endpoint of a shard hit the
    *same* host, so any answer that comes back is correct by
    construction — the lanes assert the failover happened *and* the
    answers match the oracle.
    """

    def __init__(self, blob: bytes, shard_timeout: float) -> None:
        self.hosts = [ShardHost(blob, shard=index).start()
                      for index in range(SHARDS)]
        self.proxies = [FaultyProxy(host.endpoint)
                        for host in self.hosts]
        manifest = ClusterManifest.for_container(
            blob, [[self.proxies[index].endpoint,
                    self.hosts[index].endpoint]
                   for index in range(SHARDS)])
        self.server = GraphServer(blob, manifest=manifest,
                                  cache_size=0,
                                  shard_timeout=shard_timeout)
        self.server.start()

    def close(self) -> None:
        self.server.close()
        for proxy in self.proxies:
            proxy.close()
        for host in self.hosts:
            host.close()

    def __enter__(self) -> "RouterShardCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TestRouterShardFaults:
    # (fault, direction, op filter, extra arm kwargs).  ``hang`` and
    # ``delay`` both rely on the router's per-request timeout; the
    # delay is longer than the timeout so the slow reply loses the
    # race and the request fails over.
    LANES = [
        ("kill", "request", "batch", {}),
        ("kill", "reply", "results", {}),
        ("truncate", "request", "batch", {}),
        ("truncate", "reply", "results", {}),
        ("hang", "request", "batch", {}),
        ("hang", "reply", "results", {}),
        ("delay", "reply", "results", {"delay": 3.0}),
    ]

    @pytest.mark.parametrize(
        "fault,direction,only_op,extra",
        LANES, ids=[f"{f}-{d}" for f, d, _, _ in LANES])
    def test_fault_on_shard_link_fails_over(self, chain, fault,
                                            direction, only_op,
                                            extra):
        handle, blob = chain
        with RouterShardCluster(blob, shard_timeout=1.0) as cluster:
            proxy = cluster.proxies[0]
            proxy.arm(fault, direction=direction, only_op=only_op,
                      **extra)
            with cluster.server.connect() as client:
                # Round-robin alternates the proxied and the direct
                # endpoint, so within two shard-0 reads the armed
                # frame is hit; every answer must equal the oracle
                # regardless of which replica served it.
                for attempt in range(4):
                    node = 1 + (attempt % PER_SHARD)
                    assert client.query("out", node) == \
                        handle.out(node)
                    if proxy.triggered.is_set():
                        break
                assert proxy.triggered.is_set()
                # And the cluster stays healthy afterwards.
                requests = probe_requests(handle)
                assert client.batch(requests) == \
                    handle.batch(requests)
            assert cluster.server._proxies[0].failovers >= 1


# ----------------------------------------------------------------------
# The fault matrix: the client↔router link
# ----------------------------------------------------------------------
class TestClientRouterFaults:
    LANES = [
        ("kill", {}),
        ("truncate", {}),
        ("hang", {}),
        ("delay", {"delay": 3.0}),
    ]

    @pytest.mark.parametrize("fault,extra", LANES,
                             ids=[f for f, _ in LANES])
    def test_strict_client_retries_through_fault(self, chain, oracle,
                                                 fault, extra):
        _, blob = chain
        requests, expected = oracle
        with serve(blob, cache_size=0) as running:
            with FaultyProxy(running.endpoint) as proxy:
                proxy.arm(fault, direction="reply",
                          only_op="results", **extra)
                client = GraphClient(proxy.endpoint, timeout=1.0,
                                     retries=1)
                try:
                    assert client.batch(requests) == expected
                    assert proxy.triggered.is_set()
                    # The retry burned the broken link; the replacement
                    # connection keeps serving.
                    assert client.batch(requests) == expected
                finally:
                    client.close()

    def test_pipelined_client_retries_through_kill(self, chain,
                                                   oracle):
        _, blob = chain
        requests, expected = oracle
        with serve(blob, cache_size=0) as running:
            with FaultyProxy(running.endpoint) as proxy:
                proxy.arm("kill", direction="reply",
                          only_op="results")
                client = GraphClient(proxy.endpoint, timeout=5.0,
                                     pipeline=True, retries=1)
                try:
                    results = client.execute(requests)
                    assert [result.value for result in results] == \
                        expected
                    assert proxy.triggered.is_set()
                finally:
                    client.close()

    def test_no_retries_surfaces_the_failure(self, chain, oracle):
        """retries=0 (the default) keeps the old contract: the link
        death is the caller's problem, raised as a wire error."""
        _, blob = chain
        requests, _ = oracle
        with serve(blob, cache_size=0) as running:
            with FaultyProxy(running.endpoint) as proxy:
                proxy.arm("kill", direction="reply",
                          only_op="results")
                client = GraphClient(proxy.endpoint, timeout=5.0)
                try:
                    with pytest.raises(ReproError):
                        client.batch(requests)
                finally:
                    client.close()


# ----------------------------------------------------------------------
# Manifest-mode clusters over ShardHosts
# ----------------------------------------------------------------------
class TestManifestCluster:
    def _hosts(self, blob, epoch=0, replicas=2):
        return [[ShardHost(blob, shard=index, epoch=epoch).start()
                 for _ in range(replicas)]
                for index in range(SHARDS)]

    def _manifest(self, blob, groups, epoch=0, **kwargs):
        return ClusterManifest.for_container(
            blob, [[host.endpoint for host in group]
                   for group in groups], epoch=epoch, **kwargs)

    def _close_all(self, groups):
        for group in groups:
            for host in group:
                host.close()

    def test_cluster_serves_and_survives_replica_death(self, chain,
                                                       oracle):
        handle, blob = chain
        requests, expected = oracle
        groups = self._hosts(blob, epoch=7)
        try:
            manifest = self._manifest(blob, groups, epoch=7)
            with GraphServer(blob, manifest=manifest,
                             cache_size=0).start() as running:
                assert not running._processes  # nothing was forked
                with running.connect() as client:
                    info = client.info()
                    assert info["epoch"] == 7
                    assert info["replicas"] == [2, 2]
                    assert client.batch(requests) == expected
                    # Kill replica 0 of every shard out from under
                    # the router; answers must not change.
                    for group in groups:
                        group[0].close()
                    assert client.batch(requests) == expected
                assert sum(proxy.failovers
                           for proxy in running._proxies) >= 1
        finally:
            self._close_all(groups)

    def test_stale_epoch_fails_before_routing(self, chain):
        _, blob = chain
        groups = self._hosts(blob, epoch=1)
        try:
            manifest = self._manifest(blob, groups, epoch=2)
            with pytest.raises(ManifestError, match="stale manifest"):
                GraphServer(blob, manifest=manifest).start()
        finally:
            self._close_all(groups)

    def test_foreign_container_hash_fails(self, chain):
        _, blob = chain
        groups = self._hosts(blob)
        try:
            manifest = ClusterManifest.for_container(
                blob + b"tampered",
                [[host.endpoint for host in group]
                 for group in groups])
            with pytest.raises(ManifestError, match="hash mismatch"):
                GraphServer(blob, manifest=manifest).start()
        finally:
            self._close_all(groups)

    def test_swapped_shard_groups_fail(self, chain):
        _, blob = chain
        groups = self._hosts(blob, replicas=1)
        try:
            manifest = self._manifest(blob, list(reversed(groups)))
            with pytest.raises(ManifestError, match="expects shard"):
                GraphServer(blob, manifest=manifest).start()
        finally:
            self._close_all(groups)

    def test_whole_shard_down_fails_at_start(self, chain):
        _, blob = chain
        groups = self._hosts(blob)
        try:
            for host in groups[1]:
                host.close()
            manifest = self._manifest(blob, groups)
            with pytest.raises(ManifestError,
                               match="no reachable replica"):
                GraphServer(blob, manifest=manifest).start()
        finally:
            self._close_all(groups)

    def test_shard_count_mismatch(self, chain):
        _, blob = chain
        manifest = ClusterManifest.for_container(
            blob, [["127.0.0.1:9000"]])  # one group, two shards
        with pytest.raises(ManifestError, match="lists 1 shards"):
            GraphServer(blob, manifest=manifest).start()

    def test_manifest_names_the_container(self, chain, oracle,
                                          tmp_path):
        """``serve(manifest=path)`` with no container argument loads
        the build the manifest names, relative to the manifest."""
        handle, blob = chain
        requests, expected = oracle
        (tmp_path / "graph.grps").write_bytes(blob)
        groups = self._hosts(blob, replicas=1)
        try:
            manifest = self._manifest(blob, groups,
                                      container="graph.grps")
            manifest_path = manifest.save(tmp_path / "cluster.json")
            with serve(manifest=manifest_path,
                       cache_size=0) as running:
                with running.connect() as client:
                    assert client.batch(requests) == expected
        finally:
            self._close_all(groups)

    def test_shard_host_info_self_description(self, chain):
        _, blob = chain
        with ShardHost(blob, shard=1, epoch=4) as host:
            client = GraphClient(host.endpoint)
            try:
                info = client.info()
            finally:
                client.close()
        assert info["type"] == "shard"
        assert info["shard"] == 1
        assert info["epoch"] == 4
        assert info["grps_hash"] == container_hash(blob)

    def test_shard_host_index_out_of_range(self, chain):
        _, blob = chain
        with pytest.raises(ReproError, match="out of range"):
            ShardHost(blob, shard=9).start()


# ----------------------------------------------------------------------
# The CLI face of the topology
# ----------------------------------------------------------------------
class TestClusterCLI:
    def test_manifest_subcommand_writes_a_valid_file(self, chain,
                                                     tmp_path,
                                                     capsys):
        from repro.cli import main
        _, blob = chain
        container = tmp_path / "graph.grps"
        container.write_bytes(blob)
        output = tmp_path / "cluster.json"
        code = main(["manifest", str(container), str(output),
                     "--endpoints",
                     "127.0.0.1:9000,127.0.0.1:9001",
                     "127.0.0.1:9002", "--epoch", "5"])
        assert code == 0
        assert "2 shards" in capsys.readouterr().out
        manifest = ClusterManifest.load(output)
        assert manifest.epoch == 5
        assert manifest.num_shards == 2
        assert manifest.grps_hash == container_hash(blob)
        payload = json.loads(output.read_text())
        assert payload["shards"] == [["127.0.0.1:9000",
                                      "127.0.0.1:9001"],
                                     ["127.0.0.1:9002"]]

    def test_manifest_subcommand_rejects_wrong_group_count(
            self, chain, tmp_path, capsys):
        from repro.cli import main
        _, blob = chain
        container = tmp_path / "graph.grps"
        container.write_bytes(blob)
        code = main(["manifest", str(container),
                     str(tmp_path / "cluster.json"),
                     "--endpoints", "127.0.0.1:9000"])
        assert code == 2
        assert "2 shards" in capsys.readouterr().err

    def test_serve_requires_container_or_manifest(self, capsys):
        from repro.cli import main
        code = main(["serve"])
        assert code == 2
        assert "--manifest" in capsys.readouterr().err
