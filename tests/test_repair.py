"""Unit and behavior tests for the gRePair algorithm itself."""

import pytest

from helpers import copies_graph, isomorphic, star_graph, theta_graph

from repro import (
    Alphabet,
    GRePair,
    GRePairSettings,
    Hypergraph,
    compress,
    derive,
)
from repro.core.alphabet import VIRTUAL_LABEL_NAME
from repro.exceptions import GrammarError


class TestFigure1:
    """The paper's running example: theta graph -> S = AAA, A -> ab."""

    def test_grammar_shape(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(order="natural"))
        grammar = result.grammar
        assert grammar.num_rules == 1
        (rule,) = list(grammar.rules())
        assert rule.rhs.num_edges == 2
        assert rule.rhs.rank == 2
        start_labels = {edge.label for _, edge in grammar.start.edges()}
        assert start_labels == {rule.lhs}
        assert grammar.start.num_edges == 3

    def test_size_shrinks(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet,
                          GRePairSettings(order="natural"))
        assert result.grammar.size < graph.total_size

    def test_roundtrip_isomorphic(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)


class TestFigure1c:
    """The paper's Figure 1c point: digrams whose nodes are all
    external would need hyperedges, and 'hyperedges are more expensive
    than ordinary ones' — no compression is achieved."""

    def test_no_gain_when_every_node_is_external(self):
        # Theta graph plus a c-triangle over the middle nodes: every
        # node of every (a, b) digram now has outside edges, so only
        # rank-3+ digrams exist and none of them pays for its rule.
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        b = alphabet.add_terminal(2, "b")
        c = alphabet.add_terminal(2, "c")
        graph = Hypergraph()
        source = graph.add_node()
        target = graph.add_node()
        middles = []
        for _ in range(3):
            middle = graph.add_node()
            middles.append(middle)
            graph.add_edge(a, (source, middle))
            graph.add_edge(b, (middle, target))
        graph.add_edge(c, (middles[0], middles[1]))
        graph.add_edge(c, (middles[1], middles[2]))
        graph.add_edge(c, (middles[2], middles[0]))
        result = compress(graph, alphabet,
                          GRePairSettings(order="natural"))
        assert result.grammar.size == graph.total_size
        assert result.grammar.num_rules == 0
        assert isomorphic(derive(result.grammar), graph)


class TestMaxRank:
    def test_high_rank_digrams_skipped(self):
        """With maxRank=2, no nonterminal exceeds rank 2."""
        graph, alphabet = copies_graph(8)
        result = compress(graph, alphabet, GRePairSettings(max_rank=2))
        for rule in result.grammar.rules():
            assert rule.rhs.rank <= 2

    def test_max_rank_bounds_all_rules(self):
        graph, alphabet = copies_graph(8)
        result = compress(graph, alphabet, GRePairSettings(max_rank=3))
        for rule in result.grammar.rules():
            assert rule.rhs.rank <= 3

    def test_invalid_max_rank_rejected(self):
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError):
            GRePair(graph, alphabet, max_rank=1)


class TestStarCompression:
    """The RDF-types mechanism: hub stars compress to log size."""

    def test_star_compresses_heavily(self):
        graph, alphabet = star_graph(200)
        result = compress(graph, alphabet)
        assert result.size_ratio < 0.15
        assert isomorphic(derive(result.grammar), graph)

    def test_star_grammar_is_hierarchical(self):
        graph, alphabet = star_graph(64)
        result = compress(graph, alphabet)
        assert result.grammar.height() >= 3  # doubling hierarchy


class TestVirtualEdges:
    def test_disconnected_copies_need_virtual_pass(self):
        graph, alphabet = copies_graph(32)
        with_virtual = compress(graph, alphabet,
                                GRePairSettings(virtual_edges=True))
        without = compress(graph, alphabet,
                           GRePairSettings(virtual_edges=False))
        assert with_virtual.grammar.size < without.grammar.size

    def test_no_virtual_edges_remain(self):
        graph, alphabet = copies_graph(32)
        result = compress(graph, alphabet)
        grammar = result.grammar
        virtual = grammar.alphabet.by_name(VIRTUAL_LABEL_NAME)
        for host in [grammar.start] + [r.rhs for r in grammar.rules()]:
            assert not host.edges_with_label(virtual)

    def test_roundtrip_with_virtual_pass(self):
        graph, alphabet = copies_graph(32)
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)

    def test_virtual_stats_recorded(self):
        graph, alphabet = copies_graph(16)
        result = compress(graph, alphabet)
        assert result.stats["virtual_edges_added"] == 15

    def test_connected_graph_skips_virtual_pass(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        assert result.stats["virtual_edges_added"] == 0


class TestDeterminism:
    def test_same_input_same_grammar(self):
        graph, alphabet = copies_graph(16)
        first = compress(graph, alphabet)
        second = compress(graph, alphabet)
        assert first.grammar.size == second.grammar.size
        assert (first.grammar.start.edge_multiset()
                == second.grammar.start.edge_multiset())

    def test_input_not_mutated(self):
        graph, alphabet = theta_graph()
        before_edges = graph.num_edges
        before_labels = len(alphabet)
        compress(graph, alphabet)
        assert graph.num_edges == before_edges
        assert len(alphabet) == before_labels

    def test_single_use_guard(self):
        graph, alphabet = theta_graph()
        algorithm = GRePair(graph.copy(), alphabet.copy())
        algorithm.run()
        with pytest.raises(GrammarError):
            algorithm.run()


class TestTermination:
    def test_empty_graph(self):
        alphabet = Alphabet()
        alphabet.add_terminal(2, "t")
        result = compress(Hypergraph(), alphabet)
        assert result.grammar.num_rules == 0

    def test_single_edge(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph.from_edges([(t, (1, 2))])
        result = compress(graph, alphabet)
        assert result.grammar.num_rules == 0
        assert isomorphic(derive(result.grammar), graph)

    def test_no_repeats_no_rules(self):
        """Every digram unique -> grammar equals the input."""
        alphabet = Alphabet()
        labels = [alphabet.add_terminal(2, f"u{i}") for i in range(6)]
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(7)]
        for i, label in enumerate(labels):
            graph.add_edge(label, (nodes[i], nodes[i + 1]))
        result = compress(graph, alphabet)
        assert result.grammar.num_rules == 0

    def test_terminates_on_dense_graph(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(12)]
        for u in nodes:
            for v in nodes:
                if u != v:
                    graph.add_edge(t, (u, v))
        result = compress(graph, alphabet)
        assert isomorphic(derive(result.grammar), graph)


class TestEngines:
    """Engine selection and the incremental engine's pass guarantees."""

    def test_invalid_engine_rejected(self):
        graph, alphabet = theta_graph()
        with pytest.raises(GrammarError):
            GRePair(graph, alphabet, engine="magic")

    def test_default_engine_is_incremental(self):
        graph, alphabet = theta_graph()
        result = compress(graph, alphabet)
        assert result.stats["engine"] == "incremental"

    def test_recount_engine_selectable(self):
        graph, alphabet = copies_graph(8)
        result = compress(graph, alphabet,
                          GRePairSettings(engine="recount"))
        assert result.stats["engine"] == "recount"
        assert isomorphic(derive(result.grammar), graph)

    def test_incremental_never_recounts(self):
        for builder in (theta_graph, lambda: copies_graph(16),
                        lambda: star_graph(100)):
            graph, alphabet = builder()
            result = compress(graph, alphabet)
            assert result.stats["recount_passes"] == 0
            # At most one seed pass per phase (main + virtual).
            assert result.stats["passes"] <= 2

    def test_engines_produce_equivalent_grammars(self):
        graph, alphabet = copies_graph(24)
        incremental = compress(graph, alphabet)
        recount = compress(graph, alphabet,
                           GRePairSettings(engine="recount"))
        assert incremental.grammar.size == recount.grammar.size
        assert isomorphic(derive(incremental.grammar), graph)
        assert isomorphic(derive(recount.grammar), graph)

    def test_queue_instrumentation_recorded(self):
        graph, alphabet = copies_graph(16)
        result = compress(graph, alphabet)
        assert result.stats["queue_pops"] > 0
        assert result.stats["queue_pushes"] > 0
        assert result.stats_obj.as_dict() == result.stats

    def test_streaming_requires_incremental(self):
        graph, alphabet = theta_graph()
        algorithm = GRePair(graph.copy(), alphabet.copy(),
                            engine="recount")
        with pytest.raises(GrammarError):
            algorithm.begin_streaming()

    def test_streaming_guards(self):
        graph, alphabet = theta_graph()
        algorithm = GRePair(graph.copy(), alphabet.copy())
        with pytest.raises(GrammarError):
            algorithm.ingest_edge(1, (1, 2))
        with pytest.raises(GrammarError):
            algorithm.drain()
        with pytest.raises(GrammarError):
            algorithm.finish_streaming()


class TestNodeOrderEffect:
    def test_orders_can_change_outcome(self):
        """Different ω may find different occurrence sets (Fig. 5)."""
        graph, alphabet = copies_graph(16)
        sizes = {
            order: compress(graph, alphabet,
                            GRePairSettings(order=order)).grammar.size
            for order in ("fp", "natural", "random")
        }
        # All must round-trip; sizes may differ but stay positive.
        assert all(size > 0 for size in sizes.values())

    def test_fp_best_or_tied_on_version_like_input(self):
        graph, alphabet = copies_graph(24)
        fp = compress(graph, alphabet, GRePairSettings(order="fp"))
        rnd = compress(graph, alphabet,
                       GRePairSettings(order="random", seed=5))
        assert fp.grammar.size <= rnd.grammar.size
