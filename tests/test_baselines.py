"""Tests for the three baseline compressors (k2, LM, HN)."""

import pytest

from helpers import random_simple_graph

from repro import Alphabet, Hypergraph
from repro.baselines import HNCompressor, K2Compressor, \
    ListMergeCompressor
from repro.datasets.synthetic import copy_model_graph
from repro.exceptions import EncodingError


def _unlabeled(seed=0, n=60, m=150):
    graph, alphabet = random_simple_graph(seed, num_nodes=n,
                                          num_edges=m, num_labels=1)
    return graph, alphabet


class TestK2Baseline:
    def test_roundtrip(self):
        graph, _ = random_simple_graph(1)
        comp = K2Compressor()
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_labeled_roundtrip(self):
        graph, _ = random_simple_graph(2, num_labels=4)
        comp = K2Compressor()
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_neighbor_queries(self):
        graph, _ = _unlabeled(3)
        comp = K2Compressor()
        data = comp.compress(graph)
        for node in range(1, graph.node_size + 1):
            assert comp.out_neighbors(data, node) == sorted(
                graph.out_neighbors(node))
            assert comp.in_neighbors(data, node) == sorted(
                graph.in_neighbors(node))

    def test_has_edge(self):
        graph, _ = _unlabeled(4, n=20, m=40)
        comp = K2Compressor()
        data = comp.compress(graph)
        edge_set = {edge.att for _, edge in graph.edges()}
        for u in range(1, 21):
            for v in range(1, 21):
                if u != v:
                    assert comp.has_edge(data, u, v) == ((u, v) in
                                                         edge_set)

    def test_per_label_queries(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        b = alphabet.add_terminal(2, "b")
        graph = Hypergraph.from_edges([(a, (1, 2)), (b, (1, 3))])
        comp = K2Compressor()
        data = comp.compress(graph)
        assert comp.out_neighbors(data, 1, label=a) == [2]
        assert comp.out_neighbors(data, 1, label=b) == [3]

    def test_parallel_edges_rejected(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (1, 2))])
        with pytest.raises(EncodingError):
            K2Compressor().compress(graph)

    def test_hyperedge_rejected(self):
        graph = Hypergraph.from_edges([(1, (1, 2, 3))])
        with pytest.raises(EncodingError):
            K2Compressor().compress(graph)


class TestListMerge:
    def test_roundtrip(self):
        graph, _ = _unlabeled(5)
        comp = ListMergeCompressor()
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_out_neighbors(self):
        graph, _ = _unlabeled(6, n=150, m=400)
        comp = ListMergeCompressor(chunk_size=16)
        data = comp.compress(graph)
        for node in (1, 17, 80, 150):
            assert sorted(comp.out_neighbors(data, node)) == sorted(
                graph.out_neighbors(node))

    def test_out_of_range_query(self):
        graph, _ = _unlabeled(7, n=10, m=20)
        comp = ListMergeCompressor()
        data = comp.compress(graph)
        with pytest.raises(EncodingError):
            comp.out_neighbors(data, 11)

    def test_chunk_size_validation(self):
        with pytest.raises(EncodingError):
            ListMergeCompressor(chunk_size=0)

    def test_merging_helps_on_copy_model(self):
        """Overlapping adjacency lists (web-like) compress well."""
        web, _ = copy_model_graph(300, seed=8)
        rand, _ = _unlabeled(8, n=300, m=web.num_edges)
        comp = ListMergeCompressor()
        assert len(comp.compress(web)) < len(comp.compress(rand))

    def test_empty_graph(self):
        comp = ListMergeCompressor()
        decoded = comp.decompress(comp.compress(Hypergraph()))
        assert decoded.node_size == 0


class TestHN:
    def _biclique_graph(self, sources=20, targets=15):
        graph = Hypergraph()
        for _ in range(sources + targets + 5):
            graph.add_node()
        for u in range(1, sources + 1):
            for v in range(sources + 1, sources + targets + 1):
                graph.add_edge(1, (u, v))
        return graph

    def test_roundtrip_biclique(self):
        graph = self._biclique_graph()
        comp = HNCompressor()
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_roundtrip_random(self):
        graph, _ = _unlabeled(9)
        comp = HNCompressor()
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_virtual_nodes_shrink_bicliques(self):
        graph = self._biclique_graph()
        hn_size = len(HNCompressor().compress(graph))
        k2_size = len(K2Compressor().compress(graph))
        assert hn_size < k2_size

    def test_mining_disabled_on_sparse_graph(self):
        """Graphs without dense substructure mine nothing: HN == k2
        tree plus a two-varint header."""
        graph, _ = _unlabeled(10, n=40, m=60)
        hn = HNCompressor()
        data = hn.compress(graph)
        decoded = hn.decompress(data)
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()

    def test_multi_pass_nesting(self):
        """Two overlapping bicliques can nest virtual nodes (P=2)."""
        graph = Hypergraph()
        for _ in range(80):
            graph.add_node()
        shared = list(range(41, 61))
        for u in range(1, 30):
            for v in shared:
                graph.add_edge(1, (u, v))
        for u in range(30, 41):
            for v in shared[:12]:
                graph.add_edge(1, (u, v))
        comp = HNCompressor(passes=2)
        decoded = comp.decompress(comp.compress(graph))
        assert decoded.edge_multiset() == graph.normalized()[0].edge_multiset()
