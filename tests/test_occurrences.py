"""Unit tests for occurrence lists, counting discipline and the queue."""

from repro.core.digram import DigramKey, Occurrence
from repro.core.occurrences import (
    BucketQueue,
    OccurrenceList,
    OccurrenceTable,
)


def _key(label_a=1, label_b=2):
    """A rank-1 digram key over two rank-2 edges sharing one node."""
    return DigramKey(label_a, 2, label_b, (1, 2), (False, True, False))


class TestOccurrenceTable:
    def test_record_and_lookup(self):
        table = OccurrenceTable()
        occ = Occurrence(10, 11)
        table.record(_key(), occ)
        assert len(table.get(_key())) == 1
        assert table.occurrences_of_edge(10) == [(_key(), occ)]

    def test_partner_label_discipline(self):
        """An edge joins at most one occurrence per partner label."""
        table = OccurrenceTable()
        table.record(_key(1, 2), Occurrence(10, 11))
        # 10 already counted with a label-2 partner:
        assert not table.can_pair(10, 2)
        # ...but may still pair with a label-3 edge:
        assert table.can_pair(10, 3)

    def test_same_label_digram_blocks_both_slots(self):
        table = OccurrenceTable()
        key = _key(5, 5)
        table.record(key, Occurrence(20, 21))
        assert not table.can_pair(20, 5)
        assert not table.can_pair(21, 5)

    def test_release_restores_slots(self):
        table = OccurrenceTable()
        occ = Occurrence(10, 11)
        table.record(_key(), occ)
        table.release(_key(), occ)
        assert table.can_pair(10, 2)
        assert table.can_pair(11, 1)
        assert len(table.get(_key())) == 0

    def test_release_edge_cascades_across_digrams(self):
        table = OccurrenceTable()
        table.record(_key(1, 2), Occurrence(10, 11))
        table.record(_key(1, 3), Occurrence(10, 12))
        affected = table.release_edge(10)
        assert sorted(k.label_b for k in affected) == [2, 3]
        assert table.occurrences_of_edge(10) == []
        assert table.can_pair(11, 1)

    def test_drop_list_frees_everything(self):
        table = OccurrenceTable()
        table.record(_key(), Occurrence(1, 2))
        table.record(_key(), Occurrence(3, 4))
        table.drop_list(_key())
        assert table.get(_key()) is None
        for edge in (1, 2, 3, 4):
            assert table.can_pair(edge, 1)
            assert table.can_pair(edge, 2)

    def test_same_key_occurrences_are_edge_disjoint(self):
        """Within one digram the recorded occurrences never overlap."""
        table = OccurrenceTable()
        table.record(_key(), Occurrence(1, 2))
        # Edge 1 cannot be recorded again with a label-2 partner.
        assert not table.can_pair(1, 2)


class TestBucketQueue:
    def _list_with(self, key, count):
        olist = OccurrenceList(key)
        for i in range(count):
            olist.add(Occurrence(100 + 2 * i, 101 + 2 * i))
        return olist

    def test_single_occurrence_not_queued(self):
        queue = BucketQueue(100)
        olist = self._list_with(_key(), 1)
        queue.file(olist)
        assert queue.pop_most_frequent() is None

    def test_most_frequent_first(self):
        queue = BucketQueue(100)
        small = self._list_with(_key(1, 2), 2)
        large = self._list_with(_key(1, 3), 7)
        queue.file(small)
        queue.file(large)
        assert queue.pop_most_frequent() == _key(1, 3)
        assert queue.pop_most_frequent() == _key(1, 2)
        assert queue.pop_most_frequent() is None

    def test_top_bucket_holds_everything_above_sqrt(self):
        queue = BucketQueue(16)  # top bucket = 4
        huge = self._list_with(_key(1, 2), 50)
        big = self._list_with(_key(1, 3), 5)
        queue.file(big)
        queue.file(huge)
        popped = {queue.pop_most_frequent(), queue.pop_most_frequent()}
        assert popped == {_key(1, 2), _key(1, 3)}

    def test_refile_moves_between_buckets(self):
        queue = BucketQueue(100)
        olist = self._list_with(_key(), 5)
        queue.file(olist)
        # Simulate shrinkage: remove occurrences and re-file.
        for occ in list(olist)[:4]:
            olist.discard(occ)
        queue.file(olist)  # now length 1 -> dequeued entirely
        assert queue.pop_most_frequent() is None

    def test_remove(self):
        queue = BucketQueue(100)
        olist = self._list_with(_key(), 3)
        queue.file(olist)
        queue.remove(olist)
        assert queue.pop_most_frequent() is None

    def test_pop_requires_caller_to_reset_bucket(self):
        queue = BucketQueue(100)
        olist = self._list_with(_key(), 3)
        queue.file(olist)
        assert queue.pop_most_frequent() == _key()
        olist.bucket = None  # caller contract
        queue.file(olist)
        assert queue.pop_most_frequent() == _key()

    def test_len_counts_queued_digrams(self):
        queue = BucketQueue(100)
        queue.file(self._list_with(_key(1, 2), 2))
        queue.file(self._list_with(_key(1, 3), 3))
        assert len(queue) == 2
