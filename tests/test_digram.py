"""Unit tests for digram keys and occurrences (paper Defs. 2-3)."""

from repro import Hypergraph
from repro.core.digram import (
    digram_key,
    removal_nodes,
    replacement_attachment,
    rule_graph,
)


def _path_graph():
    """1 -a-> 2 -b-> 3 with extra edge at 3 (so 3 is external)."""
    return Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3)), (3, (3, 4))])


class TestDigramKey:
    def test_non_adjacent_pair_is_not_a_digram(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (3, 4))])
        key, occ, _ = digram_key(graph, 1, 2)
        assert key is None
        assert occ is None

    def test_same_edge_is_not_a_digram(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        key, _, _ = digram_key(graph, 1, 1)
        assert key is None

    def test_externality_follows_definition3(self):
        """A node is external iff incident with an edge outside the pair."""
        graph = _path_graph()
        key, _, _ = digram_key(graph, 1, 2)
        # Nodes 1, 2 have no other edges -> internal; 3 has one -> ext.
        assert key.rank == 1
        flags = dict(zip([0, 1, 2], key.ext_flags))
        assert sum(key.ext_flags) == 1

    def test_host_external_nodes_are_external(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3))])
        graph.set_external((1,))
        key, _, _ = digram_key(graph, 1, 2)
        assert key.rank == 1  # node 1 external via host ext

    def test_orientation_canonical(self):
        """Both orientations of the same pair give the same key."""
        graph = _path_graph()
        key_ab, occ_ab, _ = digram_key(graph, 1, 2)
        key_ba, occ_ba, _ = digram_key(graph, 2, 1)
        assert key_ab == key_ba
        assert occ_ab == occ_ba

    def test_isomorphic_occurrences_share_key(self):
        graph = Hypergraph.from_edges([
            (1, (1, 2)), (2, (2, 3)), (3, (3, 10)),   # occurrence 1
            (1, (4, 5)), (2, (5, 6)), (3, (6, 11)),   # occurrence 2
        ])
        key1, _, _ = digram_key(graph, 1, 2)
        key2, _, _ = digram_key(graph, 4, 5)
        assert key1 == key2

    def test_different_labels_different_keys(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (2, (2, 3)),
                                       (1, (4, 2)), (1, (2, 5))])
        key_ab, _, _ = digram_key(graph, 1, 2)
        key_aa, _, _ = digram_key(graph, 1, 3)
        assert key_ab != key_aa

    def test_direction_matters(self):
        fwd = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 3))])
        bwd = Hypergraph.from_edges([(1, (1, 2)), (1, (3, 2))])
        key_fwd, _, _ = digram_key(fwd, 1, 2)
        key_bwd, _, _ = digram_key(bwd, 1, 2)
        assert key_fwd != key_bwd

    def test_externality_is_part_of_identity(self):
        """The paper's Figure 4: same shape, different ext -> distinct."""
        bare = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 3))])
        decorated = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 3)),
                                           (2, (2, 9))])
        key_bare, _, _ = digram_key(bare, 1, 2)
        key_dec, _, _ = digram_key(decorated, 1, 2)
        assert key_bare != key_dec

    def test_hyperedge_pair(self):
        graph = Hypergraph.from_edges([(1, (1, 2, 3)), (2, (3, 4))])
        key, _, _ = digram_key(graph, 1, 2)
        assert key is not None
        assert key.num_nodes == 4

    def test_shared_both_endpoints(self):
        """Parallel a/b edges between the same two nodes."""
        graph = Hypergraph.from_edges([(1, (1, 2)), (2, (1, 2)),
                                       (3, (1, 9)), (3, (2, 9))])
        key, _, _ = digram_key(graph, 1, 2)
        assert key.num_nodes == 2
        assert key.rank == 2


class TestRuleGraph:
    def test_rule_graph_matches_key(self):
        graph = _path_graph()
        key, occ, local = digram_key(graph, 1, 2)
        rhs = rule_graph(key)
        assert rhs.rank == key.rank
        assert rhs.num_edges == 2
        assert rhs.node_size == key.num_nodes
        labels = sorted(edge.label for _, edge in rhs.edges())
        assert labels == sorted([1, 2])

    def test_replacement_attachment_order_is_stable(self):
        """Two occurrences of one key produce consistent attachments."""
        graph = Hypergraph.from_edges([
            (1, (1, 2)), (2, (2, 3)), (3, (1, 20)), (3, (3, 21)),
            (1, (4, 5)), (2, (5, 6)), (3, (4, 22)), (3, (6, 23)),
        ])
        key1, occ1, local1 = digram_key(graph, 1, 2)
        key2, occ2, local2 = digram_key(graph, 5, 6)
        assert key1 == key2
        att1 = replacement_attachment(key1, local1)
        att2 = replacement_attachment(key2, local2)
        # Corresponding positions: (1, 3) and (4, 6).
        assert att1 == (1, 3)
        assert att2 == (4, 6)

    def test_removal_nodes_are_internal_ones(self):
        graph = _path_graph()
        key, occ, local = digram_key(graph, 1, 2)
        doomed = set(removal_nodes(key, local))
        assert doomed == {1, 2}

    def test_rule_application_reproduces_occurrence(self):
        """Replacing then deriving restores the original edge pair."""
        from repro import Alphabet, SLHRGrammar, derive
        graph = _path_graph()
        key, occ, local = digram_key(graph, 1, 2)
        alphabet = Alphabet()
        for _ in range(3):
            alphabet.add_terminal(2)
        nt = alphabet.fresh_nonterminal(key.rank)
        attachment = replacement_attachment(key, local)
        original = graph.copy()
        graph.remove_edge(occ.edge_a)
        graph.remove_edge(occ.edge_b)
        for node in removal_nodes(key, local):
            graph.remove_node(node)
        graph.add_edge(nt, attachment)
        grammar = SLHRGrammar(alphabet, graph)
        grammar.add_rule(nt, rule_graph(key))
        derived = derive(grammar)
        assert (sorted(e.label for _, e in derived.edges())
                == sorted(e.label for _, e in original.edges()))
        assert derived.node_size == original.node_size


class TestExternalityStability:
    """The degree bound behind the incremental engine's drift repair.

    ``EXT_STABLE_DEGREE`` claims: a non-host-external node of degree
    > 3 is external in *every* occurrence it participates in, so degree
    changes staying above the bound can never drift a recorded digram
    key.  Verified by brute force over random graphs.
    """

    def test_high_degree_nodes_always_external(self):
        import random

        from repro.core.digram import EXT_STABLE_DEGREE, digram_key

        rng = random.Random(99)
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(12)]
        for _ in range(60):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v:
                graph.add_edge(rng.randint(1, 3), (u, v))
        edge_ids = graph.edge_ids()
        for _ in range(300):
            a, b = rng.choice(edge_ids), rng.choice(edge_ids)
            key, occ, local = digram_key(graph, a, b)
            if key is None:
                continue
            for node, idx in local.items():
                if graph.degree(node) > EXT_STABLE_DEGREE:
                    assert key.ext_flags[idx]

    def test_keys_stable_under_high_degree_changes(self):
        """Degree changes staying above the bound never drift a key."""
        import random

        from repro.core.digram import EXT_STABLE_DEGREE, digram_key

        rng = random.Random(7)
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(8)]
        # Dense core: every node ends up with degree well above the
        # stability bound.
        for u in nodes:
            for v in nodes:
                if u != v and rng.random() < 0.8:
                    graph.add_edge(1, (u, v))
        assert all(graph.degree(n) > EXT_STABLE_DEGREE + 1
                   for n in nodes)
        edge_ids = graph.edge_ids()
        samples = []
        for _ in range(60):
            a, b = rng.choice(edge_ids), rng.choice(edge_ids)
            key, occ, _ = digram_key(graph, a, b)
            if key is not None:
                samples.append((key, occ))
        # Remove one edge per node (degrees stay > the bound) and
        # check every sampled occurrence's key is unchanged.
        for node in nodes:
            for eid in graph.incident(node):
                used = {e for _, occ in samples for e in occ.edges()}
                if eid not in used:
                    graph.remove_edge(eid)
                    break
        assert all(graph.degree(n) > EXT_STABLE_DEGREE for n in nodes)
        for key, occ in samples:
            current, canonical, _ = digram_key(graph, occ.edge_a,
                                               occ.edge_b)
            assert current == key and canonical == occ
