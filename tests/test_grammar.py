"""Unit tests for SL-HR grammars, including the paper's Fig. 6 example."""

import pytest

from repro import Alphabet, Hypergraph, SLHRGrammar
from repro.core.grammar import handle_size
from repro.exceptions import GrammarError


def _simple_grammar():
    """S = three parallel A-edges; A -> a.b path (paper Figure 1)."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    nt = alphabet.fresh_nonterminal(2)
    start = Hypergraph.from_edges([(nt, (1, 2))] * 3, num_nodes=2)
    rhs = Hypergraph.from_edges([(a, (1, 2)), (b, (2, 3))], ext=(1, 3))
    grammar = SLHRGrammar(alphabet, start)
    grammar.add_rule(nt, rhs)
    return grammar, alphabet, nt


class TestHandleSize:
    def test_rank2_handle(self):
        """Fixed by the paper's con(A) = 4*(5-3)-5 example: |handle|=3."""
        assert handle_size(2) == 3

    def test_rank1_handle(self):
        assert handle_size(1) == 2

    def test_hyperedge_handles(self):
        assert handle_size(3) == 6
        assert handle_size(4) == 8


class TestRules:
    def test_add_and_lookup(self):
        grammar, _, nt = _simple_grammar()
        assert grammar.has_rule(nt)
        assert grammar.num_rules == 1
        assert grammar.rhs(nt).num_edges == 2

    def test_terminal_lhs_rejected(self):
        grammar, alphabet, _ = _simple_grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule(alphabet.by_name("a"),
                             grammar.rhs(grammar.nonterminals()[0]))

    def test_duplicate_rule_rejected(self):
        grammar, _, nt = _simple_grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule(nt, grammar.rhs(nt))

    def test_rank_mismatch_rejected(self):
        alphabet = Alphabet()
        nt = alphabet.fresh_nonterminal(3)
        start = Hypergraph.from_edges([], num_nodes=1)
        grammar = SLHRGrammar(alphabet, start)
        rhs = Hypergraph.from_edges([], num_nodes=2, ext=(1, 2))
        with pytest.raises(GrammarError):
            grammar.add_rule(nt, rhs)


class TestSizeAccounting:
    def test_grammar_size_includes_start(self):
        grammar, _, _ = _simple_grammar()
        # |S| = 2 nodes + 3 edges = 5; |rhs| = 3 nodes + 2 edges = 5.
        assert grammar.start.total_size == 5
        assert grammar.size == 10

    def test_figure6_contribution(self):
        """con(A) = 4*(5-3)-5 = 3 (paper section III-A3).

        The rule A -> (3 nodes, 2 edges) of rank 2 referenced 4 times.
        """
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "t")
        nt = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(nt, (1, 2)), (nt, (3, 4)),
                                       (nt, (5, 6)), (nt, (7, 8))],
                                      num_nodes=8)
        rhs = Hypergraph.from_edges([(a, (1, 2)), (a, (2, 3))],
                                    ext=(1, 3))
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(nt, rhs)
        assert grammar.contribution(nt) == 3

    def test_figure6_size_difference(self):
        """Deriving every A grows the grammar by exactly con(A)."""
        from repro import derive
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "t")
        nt = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(nt, (1, 2)), (nt, (3, 4)),
                                       (nt, (5, 6)), (nt, (7, 8))],
                                      num_nodes=8)
        rhs = Hypergraph.from_edges([(a, (1, 2)), (a, (2, 3))],
                                    ext=(1, 3))
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(nt, rhs)
        derived = derive(grammar)
        assert derived.total_size - grammar.size == grammar.contribution(nt)


class TestStructure:
    def test_references_counts_all_graphs(self):
        grammar, _, nt = _simple_grammar()
        assert grammar.references() == {nt: 3}

    def test_bottom_up_order_children_first(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        low = alphabet.fresh_nonterminal(2)
        high = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(high, (1, 2))], num_nodes=2)
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(high,
                         Hypergraph.from_edges([(low, (1, 2))],
                                               ext=(1, 2)))
        grammar.add_rule(low,
                         Hypergraph.from_edges([(t, (1, 2))], ext=(1, 2)))
        order = grammar.bottom_up_order()
        assert order.index(low) < order.index(high)
        assert grammar.height() == 2

    def test_cycle_detected(self):
        alphabet = Alphabet()
        x = alphabet.fresh_nonterminal(2)
        y = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(x, (1, 2))], num_nodes=2)
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(x, Hypergraph.from_edges([(y, (1, 2))],
                                                  ext=(1, 2)))
        grammar.add_rule(y, Hypergraph.from_edges([(x, (1, 2))],
                                                  ext=(1, 2)))
        with pytest.raises(GrammarError):
            grammar.bottom_up_order()

    def test_validate_flags_missing_rule(self):
        alphabet = Alphabet()
        nt = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(nt, (1, 2))], num_nodes=2)
        grammar = SLHRGrammar(alphabet, start)
        with pytest.raises(GrammarError):
            grammar.validate()

    def test_derived_counts(self):
        grammar, _, nt = _simple_grammar()
        nodes, edges = grammar.derived_counts()
        assert nodes[nt] == 1  # one internal node per application
        assert edges[nt] == 2
        assert grammar.derived_node_size() == 2 + 3 * 1
        assert grammar.derived_edge_count() == 6


class TestInlineEdge:
    def test_inline_merges_externals(self):
        grammar, _, nt = _simple_grammar()
        start = grammar.start
        target = grammar.nonterminal_edges(start)[0]
        new_edges = grammar.inline_edge(start, target)
        assert len(new_edges) == 2
        assert start.num_edges == 4  # 2 remaining A-edges + a + b
        assert start.node_size == 3  # one internal node materialized

    def test_inline_with_fresh_base(self):
        grammar, _, nt = _simple_grammar()
        start = grammar.start
        target = grammar.nonterminal_edges(start)[0]
        grammar.inline_edge(start, target, fresh_base=100)
        assert 100 in start.nodes()


class TestCanonicalize:
    def test_external_first_numbering(self):
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        nt = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(nt, (1, 2))], num_nodes=2)
        # rhs with ext out of ID order: ext = (3, 1)
        rhs = Hypergraph.from_edges([(t, (3, 2)), (t, (2, 1))],
                                    ext=(3, 1))
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(nt, rhs)
        canonical = grammar.canonicalize()
        new_rhs = canonical.rhs(nt)
        assert new_rhs.ext == (1, 2)
        # old 3 -> 1, old 1 -> 2, old 2 (internal) -> 3
        assert sorted(e.att for _, e in new_rhs.edges()) == [
            (1, 3), (3, 2)
        ]

    def test_canonical_val_equals_original_val(self):
        from repro import derive
        grammar, _, _ = _simple_grammar()
        original = derive(grammar)
        canonical = derive(grammar.canonicalize())
        assert original.structurally_equal(canonical)

    def test_edges_sorted_by_label_then_attachment(self):
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        b = alphabet.add_terminal(2, "b")
        start = Hypergraph.from_edges([(b, (1, 2)), (a, (2, 3)),
                                       (a, (1, 2))], num_nodes=3)
        grammar = SLHRGrammar(alphabet, start).canonicalize()
        listed = [(e.label, e.att) for _, e in sorted(grammar.start.edges())]
        assert listed == sorted(listed)
