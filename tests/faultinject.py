"""Controllable fault injection for the serving stack.

:class:`FaultyProxy` is a frame-aware TCP relay that sits on any link
of the deployment — client↔router or router↔shard — and breaks it *on
the Kth frame*, deterministically:

* ``kill``     — swallow the frame and close both sockets (the reader
  sees a reset / clean-close-before-reply → ``ConnectionLost``).
* ``hang``     — swallow the frame and every later one in that
  direction, holding the connection open (the reader blocks until its
  per-request timeout → ``RequestTimeout``).
* ``truncate`` — forward the length header plus half the payload,
  then close (the reader dies mid-frame → ``FrameError``).
* ``delay``    — sleep ``delay`` seconds, then forward intact (past a
  per-request timeout this forces a failover without losing bytes).

Faults are **one-shot**: triggering clears the spec, so the very next
attempt through the same proxy — a fresh client connection, a
replica's reconnect — passes cleanly.  That is exactly the shape a
retry lane needs: fail once, prove the caller recovered, and let the
recovered path run against the same endpoint.

Determinism comes from *frame counting*, not timing: the proxy parses
the ``4-byte length | payload`` framing and counts only frames that
match the armed direction and (optionally) op, so handshake ``info``
or ``ping`` traffic never shifts which request gets hit.  Nothing
here sleeps except the explicit ``delay`` fault.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional

from repro.serving.codec import connect_socket, decode_frame

_LENGTH = struct.Struct("!I")

#: Fault kinds :meth:`FaultyProxy.arm` accepts.
FAULTS = ("kill", "hang", "truncate", "delay")
#: ``request`` = client→server frames, ``reply`` = server→client.
DIRECTIONS = ("request", "reply")


def _read_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or ``None`` if the stream ended."""
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except OSError:
            return None
        if not chunk:
            return None
        chunks.extend(chunk)
    return bytes(chunks)


class FaultyProxy:
    """A TCP relay to ``target`` that breaks on the Kth matching frame.

    ``arm()`` installs one fault; the :attr:`triggered` event proves a
    lane actually exercised it (a test that never tripped its fault is
    vacuous, so assert ``proxy.triggered.is_set()``).
    """

    def __init__(self, target: str, host: str = "127.0.0.1") -> None:
        self._target = target
        self.triggered = threading.Event()
        self._lock = threading.Lock()
        self._fault: Optional[Dict[str, Any]] = None
        self._count = 0
        self._closing = False
        self._conns: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        bound_host, port = self._listener.getsockname()[:2]
        self.endpoint = f"{bound_host}:{port}"
        acceptor = threading.Thread(target=self._accept_loop,
                                    daemon=True)
        acceptor.start()
        self._threads.append(acceptor)

    # -- fault control --------------------------------------------------
    def arm(self, kind: str, direction: str = "reply", after: int = 1,
            only_op: Optional[str] = None, delay: float = 0.0
            ) -> "FaultyProxy":
        """Install a one-shot fault on the ``after``-th matching frame.

        ``only_op`` counts only frames whose decoded message has that
        ``op`` (e.g. ``"batch"`` on the request direction, ``"results"``
        on the reply direction), so connection-setup traffic cannot
        shift the target.
        """
        if kind not in FAULTS:
            raise ValueError(f"unknown fault {kind!r}; expected one "
                             f"of {FAULTS}")
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}; "
                             f"expected one of {DIRECTIONS}")
        with self._lock:
            self._fault = {"kind": kind, "direction": direction,
                           "after": int(after), "only_op": only_op,
                           "delay": float(delay)}
            self._count = 0
        self.triggered.clear()
        return self

    def clear(self) -> None:
        """Disarm without triggering."""
        with self._lock:
            self._fault = None
            self._count = 0

    def _check(self, direction: str, payload: bytes
               ) -> Optional[Dict[str, Any]]:
        """The armed fault if this frame is the Kth match, else None."""
        with self._lock:
            spec = self._fault
            if spec is None or spec["direction"] != direction:
                return None
            if spec["only_op"] is not None:
                try:
                    _, message = decode_frame(payload)
                except Exception:
                    return None
                if message.get("op") != spec["only_op"]:
                    return None
            self._count += 1
            if self._count < spec["after"]:
                return None
            self._fault = None  # one-shot: the next attempt passes
        return spec

    # -- relay mechanics ------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                upstream = connect_socket(self._target, timeout=10.0)
            except Exception:
                client.close()
                continue
            try:
                client.setsockopt(socket.IPPROTO_TCP,
                                  socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover
                pass
            with self._lock:
                if self._closing:
                    client.close()
                    upstream.close()
                    return
                self._conns.extend([client, upstream])
            for source, sink, direction in (
                    (client, upstream, "request"),
                    (upstream, client, "reply")):
                pump = threading.Thread(
                    target=self._pump,
                    args=(source, sink, direction), daemon=True)
                pump.start()
                with self._lock:
                    self._threads.append(pump)

    def _pump(self, source: socket.socket, sink: socket.socket,
              direction: str) -> None:
        try:
            while True:
                header = _read_exact(source, _LENGTH.size)
                if header is None:
                    return
                (length,) = _LENGTH.unpack(header)
                payload = _read_exact(source, length)
                if payload is None:
                    return
                spec = self._check(direction, payload)
                if spec is None:
                    sink.sendall(header + payload)
                    continue
                self.triggered.set()
                kind = spec["kind"]
                if kind == "delay":
                    time.sleep(spec["delay"])
                    sink.sendall(header + payload)
                    continue
                if kind == "truncate":
                    sink.sendall(header + payload[:max(1, length // 2)])
                    return
                if kind == "hang":
                    # Swallow everything further in this direction but
                    # hold both sockets open: the reader must *time
                    # out*, not see a close.  Ends when the source (or
                    # the proxy) closes.
                    while _read_exact(source, 1) is not None:
                        pass
                    return
                return  # kill: fall through to the close below
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closing = True
            conns = list(self._conns)
            self._conns = []
            threads = list(self._threads)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
