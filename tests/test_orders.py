"""Unit tests for node orders and FP refinement (paper section III-B1)."""

import pytest

from repro import Alphabet, Hypergraph
from repro.core.orders import (
    NODE_ORDERS,
    bfs_order,
    dfs_order,
    fixpoint_colors,
    fixpoint_order,
    fp_equivalence_classes,
    natural_order,
    node_order,
    random_order,
)
from repro.exceptions import HypergraphError


def _figure8_graph():
    """The paper's Figure 8: path 1-2-3(center), center to 4 and 5.

    Undirected in the paper; we model each undirected edge as one
    directed edge (colors depend on degrees, not directions, because
    our refinement treats positions per edge — so we test class counts,
    not exact colors).
    """
    return Hypergraph.from_edges(
        [(1, (1, 2)), (1, (2, 3)), (1, (3, 4)), (1, (3, 5))]
    )


class TestBasicOrders:
    def test_natural_is_sorted_ids(self):
        graph = Hypergraph()
        for node in (5, 2, 9):
            graph.add_node(node)
        assert natural_order(graph) == [2, 5, 9]

    def test_bfs_visits_components_in_id_order(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (3, 4))])
        order = bfs_order(graph)
        assert order.index(1) < order.index(3)
        assert set(order) == {1, 2, 3, 4}

    def test_bfs_layers(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (1, 3)),
                                       (1, (2, 4))])
        order = bfs_order(graph)
        assert order[0] == 1
        assert set(order[1:3]) == {2, 3}
        assert order[3] == 4

    def test_dfs_goes_deep_first(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 4)),
                                       (1, (1, 3))])
        order = dfs_order(graph)
        assert order[:3] == [1, 2, 4]

    def test_random_is_seeded_permutation(self):
        graph = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 3))])
        first = random_order(graph, seed=3)
        second = random_order(graph, seed=3)
        other = random_order(graph, seed=4)
        assert first == second
        assert sorted(first) == [1, 2, 3]
        assert sorted(other) == [1, 2, 3]

    def test_every_order_is_a_permutation(self):
        graph = _figure8_graph()
        for name in NODE_ORDERS:
            assert sorted(node_order(graph, name, seed=1)) == [1, 2, 3,
                                                               4, 5]

    def test_unknown_order_rejected(self):
        with pytest.raises(HypergraphError):
            node_order(Hypergraph(), "nope")


class TestFixpoint:
    def test_fp0_is_degree_coloring(self):
        graph = _figure8_graph()
        colors = fixpoint_colors(graph, iterations=0)
        assert colors[3] == 3  # center: degree 3
        assert colors[1] == 1 and colors[4] == 1

    def test_figure8_class_count(self):
        """The paper's Figure 8 refines to 4 classes (colors 1,2,3,4
        with the two leaves 4,5 equivalent)."""
        graph = _figure8_graph()
        assert fp_equivalence_classes(graph) >= 4
        colors = fixpoint_colors(graph)
        assert colors[4] == colors[5]  # symmetric leaves stay together

    def test_refinement_separates_by_context(self):
        """Two degree-1 nodes with different neighbors' degrees split."""
        graph = Hypergraph.from_edges(
            [(1, (1, 2)), (1, (2, 3)), (1, (3, 4)), (1, (3, 5))]
        )
        fp0 = fixpoint_colors(graph, iterations=0)
        assert fp0[1] == fp0[4]  # same degree
        fp = fixpoint_colors(graph)
        assert fp[1] != fp[4]  # neighbor degrees differ (2 vs 3)

    def test_isomorphic_components_get_same_colors(self):
        graph = Hypergraph.from_edges([
            (1, (1, 2)), (1, (2, 3)),     # path 1
            (1, (4, 5)), (1, (5, 6)),     # path 2 (isomorphic)
        ])
        colors = fixpoint_colors(graph)
        assert colors[1] == colors[4]
        assert colors[2] == colors[5]
        assert colors[3] == colors[6]

    def test_labels_refine_colors(self):
        plain = Hypergraph.from_edges([(1, (1, 2)), (1, (3, 4))])
        labeled = Hypergraph.from_edges([(1, (1, 2)), (2, (3, 4))])
        assert fp_equivalence_classes(plain) < fp_equivalence_classes(
            labeled
        )

    def test_direction_refines_colors(self):
        graph = Hypergraph.from_edges([(1, (1, 2))])
        colors = fixpoint_colors(graph)
        assert colors[1] != colors[2]

    def test_empty_graph(self):
        assert fp_equivalence_classes(Hypergraph()) == 0

    def test_fixpoint_order_sorted_by_color(self):
        graph = _figure8_graph()
        colors = fixpoint_colors(graph)
        order = fixpoint_order(graph)
        assert order == sorted(graph.nodes(),
                               key=lambda v: (colors[v], v))

    def test_class_count_monotone_under_copies(self):
        """Copying a graph must not increase the FP class count."""
        single = Hypergraph.from_edges([(1, (1, 2)), (1, (2, 3))])
        double = Hypergraph.from_edges([
            (1, (1, 2)), (1, (2, 3)), (1, (4, 5)), (1, (5, 6)),
        ])
        assert (fp_equivalence_classes(double)
                == fp_equivalence_classes(single))
