"""Unit tests for the pruning phase (paper section III-A3)."""

from helpers import isomorphic

from repro import Alphabet, Hypergraph, SLHRGrammar, derive
from repro.core.pruning import prune_grammar


def _grammar_with_refs(ref_count):
    """S has `ref_count` A-edges; A -> a.b with one internal node."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(2, "a")
    b = alphabet.add_terminal(2, "b")
    nt = alphabet.fresh_nonterminal(2)
    edges = [(nt, (2 * i + 1, 2 * i + 2)) for i in range(ref_count)]
    start = Hypergraph.from_edges(edges, num_nodes=2 * ref_count)
    grammar = SLHRGrammar(alphabet, start)
    grammar.add_rule(nt, Hypergraph.from_edges(
        [(a, (1, 2)), (b, (2, 3))], ext=(1, 3)))
    return grammar, nt


class TestPhase1:
    def test_unreferenced_rule_removed(self):
        grammar, nt = _grammar_with_refs(2)
        dead = grammar.alphabet.fresh_nonterminal(2)
        grammar.add_rule(dead, Hypergraph.from_edges(
            [(1, (1, 2))], ext=(1, 2)))
        removed = prune_grammar(grammar)
        assert removed >= 1
        assert not grammar.has_rule(dead)

    def test_singly_referenced_rule_inlined(self):
        grammar, nt = _grammar_with_refs(1)
        before = derive(grammar)
        removed = prune_grammar(grammar)
        assert removed == 1
        assert grammar.num_rules == 0
        assert isomorphic(derive(grammar), before)

    def test_ref0_cascade(self):
        """Removing a dead rule can make its children removable."""
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        inner = alphabet.fresh_nonterminal(2)
        dead = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges([(t, (1, 2))], num_nodes=2)
        grammar = SLHRGrammar(alphabet, start)
        # `dead` is unreferenced but references `inner` twice.
        grammar.add_rule(dead, Hypergraph.from_edges(
            [(inner, (1, 2)), (inner, (2, 3))], ext=(1, 3)))
        grammar.add_rule(inner, Hypergraph.from_edges(
            [(t, (1, 2))], ext=(1, 2)))
        prune_grammar(grammar)
        assert grammar.num_rules == 0


class TestPhase2:
    def test_positive_contribution_kept(self):
        """con(A) = 3*(5-3)-5 = 1 > 0 with three references."""
        grammar, nt = _grammar_with_refs(3)
        removed = prune_grammar(grammar)
        assert removed == 0
        assert grammar.has_rule(nt)

    def test_zero_contribution_removed(self):
        """con(A) = 2*(5-3)-5 = -1 <= 0 with two references."""
        grammar, nt = _grammar_with_refs(2)
        before = derive(grammar)
        removed = prune_grammar(grammar)
        assert removed == 1
        assert grammar.num_rules == 0
        assert isomorphic(derive(grammar), before)

    def test_hyperedge_rule_with_no_savings_removed(self):
        """A rank-3 rule whose rhs saves no nodes never contributes."""
        alphabet = Alphabet()
        a = alphabet.add_terminal(2, "a")
        b = alphabet.add_terminal(2, "b")
        nt = alphabet.fresh_nonterminal(3)
        start = Hypergraph.from_edges(
            [(nt, (1, 2, 3)), (nt, (4, 5, 6)), (nt, (7, 8, 9)),
             (nt, (2, 3, 4))], num_nodes=9)
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(nt, Hypergraph.from_edges(
            [(a, (1, 2)), (b, (2, 3))], ext=(1, 2, 3)))
        before = derive(grammar)
        prune_grammar(grammar)
        assert grammar.num_rules == 0
        assert isomorphic(derive(grammar), before)

    def test_bottom_up_cascade_preserves_value(self):
        """Inlining a child changes the parent's size; value invariant."""
        alphabet = Alphabet()
        t = alphabet.add_terminal(2, "t")
        child = alphabet.fresh_nonterminal(2)
        parent = alphabet.fresh_nonterminal(2)
        start = Hypergraph.from_edges(
            [(parent, (1, 2)), (parent, (3, 4)), (child, (5, 6)),
             (child, (6, 7))], num_nodes=7)
        grammar = SLHRGrammar(alphabet, start)
        grammar.add_rule(parent, Hypergraph.from_edges(
            [(child, (1, 2)), (t, (2, 3))], ext=(1, 3)))
        grammar.add_rule(child, Hypergraph.from_edges(
            [(t, (1, 2)), (t, (2, 3))], ext=(1, 3)))
        before = derive(grammar)
        prune_grammar(grammar)
        grammar.validate()
        assert isomorphic(derive(grammar), before)


class TestValuePreservation:
    def test_pruning_never_changes_val(self):
        from helpers import copies_graph
        from repro import GRePairSettings, compress
        graph, alphabet = copies_graph(16)
        pruned = compress(graph, alphabet, GRePairSettings(prune=True))
        unpruned = compress(graph, alphabet, GRePairSettings(prune=False))
        assert isomorphic(derive(pruned.grammar),
                          derive(unpruned.grammar))

    def test_pruning_never_grows_grammar(self):
        from helpers import copies_graph
        from repro import GRePairSettings, compress
        graph, alphabet = copies_graph(16)
        pruned = compress(graph, alphabet, GRePairSettings(prune=True))
        unpruned = compress(graph, alphabet, GRePairSettings(prune=False))
        assert pruned.grammar.size <= unpruned.grammar.size
