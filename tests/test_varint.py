"""Unit tests for LEB128 varints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import EncodingError
from repro.util.varint import read_uvarint, uvarint_bytes, write_uvarint


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),
    ])
    def test_known_encodings(self, value, encoded):
        assert uvarint_bytes(value) == encoded

    def test_rejects_negative(self):
        with pytest.raises(EncodingError):
            write_uvarint(bytearray(), -1)

    def test_truncated_stream_raises(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80")

    def test_read_at_offset(self):
        data = b"\xff" + uvarint_bytes(300)
        value, pos = read_uvarint(data, 1)
        assert value == 300
        assert pos == len(data)

    def test_overlong_raises(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80" * 10 + b"\x01")


@given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=50))
def test_varint_sequence_roundtrip(values):
    out = bytearray()
    for value in values:
        write_uvarint(out, value)
    pos = 0
    decoded = []
    for _ in values:
        value, pos = read_uvarint(bytes(out), pos)
        decoded.append(value)
    assert decoded == values
    assert pos == len(out)
