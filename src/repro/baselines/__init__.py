"""Baseline compressors the paper compares against (section IV).

* :mod:`k2baseline` — the plain k2-tree representation of Brisaboa,
  Ladra and Navarro [21], extended to labeled (RDF) graphs with one
  tree per predicate as in Alvarez-Garcia et al. [8].  The paper used
  its own Scala implementation of exactly this scheme.
* :mod:`listmerge` — the "list merge" (LM) compressor of Grabowski and
  Bieniecki [20]: blocks of 64 adjacency lists are merged into one
  ordered list plus per-node membership bitmaps, then Deflate does the
  rest.  State of the art for out-neighbor-only web graph queries.
* :mod:`hn` — Hernandez and Navarro [22]: dense-substructure (virtual
  node) mining in the style of Buehrer and Chellapilla [23] followed
  by a k2-tree of the residual graph (parameters T=10, P=2, ES=10 as
  in the paper).

All three expose ``compress(graph) -> bytes`` / ``decompress(data)``
plus a byte-size report, so the benchmark harness can compute bpe the
same way for every contender.  LM and HN operate on unlabeled simple
digraphs only — the paper likewise compares them only on network and
unlabeled version graphs.
"""

from repro.baselines.hn import HNCompressor
from repro.baselines.k2baseline import K2Compressor
from repro.baselines.listmerge import ListMergeCompressor

__all__ = [
    "HNCompressor",
    "K2Compressor",
    "ListMergeCompressor",
]
