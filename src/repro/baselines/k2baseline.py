"""Plain k2-tree graph compressor (Brisaboa et al. [21], RDF per [8]).

The graph's adjacency relation is stored as one k2-tree per edge label
(for unlabeled graphs that is a single tree) — the paper's main
baseline and also the representation it reuses for grammar start
graphs.  Supports the k2-tree's native queries: cell (edge existence),
direct (out-) and reverse (in-) neighbors, per label or across labels.

Format::

    varint  node count n
    varint  number of labels
    per label: varint label id, varint tree-byte-length, tree bytes
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import EncodingError
from repro.encoding.k2tree import K2Tree
from repro.util.varint import read_uvarint, write_uvarint


class K2Compressor:
    """Whole-graph k2-tree compressor.

    Parameters
    ----------
    k:
        Tree arity parameter; the paper uses ``k = 2`` ("as this
        provides the best compression").
    """

    def __init__(self, k: int = 2) -> None:
        self.k = k

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, graph: Hypergraph) -> bytes:
        """Serialize a simple graph as per-label k2-trees.

        Node IDs may be arbitrary; they are normalized to ``1..n``
        first (matrix rows/columns are 0-based node indices).
        """
        normalized, _ = graph.normalized()
        n = normalized.node_size
        by_label: Dict[int, List[Tuple[int, int]]] = {}
        for _, edge in normalized.edges():
            if len(edge.att) != 2:
                raise EncodingError(
                    "k2-tree baseline supports rank-2 edges only, got "
                    f"rank {len(edge.att)}"
                )
            by_label.setdefault(edge.label, []).append(
                (edge.att[0] - 1, edge.att[1] - 1)
            )
        out = bytearray()
        write_uvarint(out, n)
        write_uvarint(out, len(by_label))
        for label in sorted(by_label):
            cells = by_label[label]
            if len(set(cells)) != len(cells):
                raise EncodingError(
                    f"label {label} has parallel edges; the k2 baseline "
                    "requires a simple graph"
                )
            tree = K2Tree.from_cells(cells, n, self.k)
            payload = tree.to_bytes()
            write_uvarint(out, label)
            write_uvarint(out, len(payload))
            out.extend(payload)
        return bytes(out)

    # ------------------------------------------------------------------
    # Decompression and queries
    # ------------------------------------------------------------------
    @staticmethod
    def _parse(data: bytes) -> Tuple[int, Dict[int, K2Tree]]:
        n, pos = read_uvarint(data, 0)
        label_count, pos = read_uvarint(data, pos)
        trees: Dict[int, K2Tree] = {}
        for _ in range(label_count):
            label, pos = read_uvarint(data, pos)
            length, pos = read_uvarint(data, pos)
            trees[label] = K2Tree.from_bytes(data[pos:pos + length])
            pos += length
        return n, trees

    def decompress(self, data: bytes) -> Hypergraph:
        """Rebuild the graph (nodes ``1..n``)."""
        n, trees = self._parse(data)
        graph = Hypergraph()
        for _ in range(n):
            graph.add_node()
        for label in sorted(trees):
            for row, col in trees[label].cells():
                graph.add_edge(label, (row + 1, col + 1))
        return graph

    def out_neighbors(self, data: bytes, node: int,
                      label: Optional[int] = None) -> List[int]:
        """Out-neighbors of ``node`` (1-based), optionally per label."""
        n, trees = self._parse(data)
        if not 1 <= node <= n:
            raise EncodingError(f"node {node} out of range 1..{n}")
        result = set()
        for lab, tree in trees.items():
            if label is not None and lab != label:
                continue
            result.update(col + 1 for col in tree.row_ones(node - 1))
        return sorted(result)

    def in_neighbors(self, data: bytes, node: int,
                     label: Optional[int] = None) -> List[int]:
        """In-neighbors of ``node`` (1-based), optionally per label."""
        n, trees = self._parse(data)
        if not 1 <= node <= n:
            raise EncodingError(f"node {node} out of range 1..{n}")
        result = set()
        for lab, tree in trees.items():
            if label is not None and lab != label:
                continue
            result.update(row + 1 for row in tree.col_ones(node - 1))
        return sorted(result)

    def has_edge(self, data: bytes, source: int, target: int,
                 label: Optional[int] = None) -> bool:
        """Edge-existence query on the compressed form."""
        _, trees = self._parse(data)
        for lab, tree in trees.items():
            if label is not None and lab != label:
                continue
            if tree.get(source - 1, target - 1):
                return True
        return False
