"""LM — the list-merge web graph compressor (Grabowski & Bieniecki [20]).

"Tight and simple web graph compression": the adjacency lists of each
*chunk* of ``h`` consecutive nodes (the paper and ours use ``h = 64``)
are merged into a single ordered list of distinct targets; every node
of the chunk then stores one membership bit per merged-list entry.
Exploits two regularities of web-like graphs: consecutive nodes share
many neighbors (bitmaps are dense and similar) and target IDs cluster
(small delta gaps).  A general-purpose Deflate pass (the published
implementation uses zlib's Deflate; we use :mod:`zlib`) squeezes the
residual redundancy.

Supports out-neighbor queries by decoding a single chunk; that matches
the published trade-off (forward queries only — the paper's Figure 12
setting).

Only unlabeled simple digraphs are supported, as in the paper's
comparisons (LM "has not been extended to RDF graphs").

Format (before the final zlib pass)::

    per chunk: delta(len(merged)+1), delta-coded gaps of the merged
    targets (1-based, +1 so gap 0 never occurs), then h bitmaps of
    len(merged) bits each.

The compressed container is ``varint n | varint h | varint payload-len
| zlib(payload)``.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Set

from repro.core.hypergraph import Hypergraph
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.elias import decode_delta, encode_delta
from repro.util.varint import read_uvarint, write_uvarint


class ListMergeCompressor:
    """The LM compressor with chunk size ``h`` (default 64)."""

    def __init__(self, chunk_size: int = 64, level: int = 9) -> None:
        if chunk_size < 1:
            raise EncodingError(f"chunk_size must be >= 1, got "
                                f"{chunk_size}")
        self.chunk_size = chunk_size
        self.level = level

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, graph: Hypergraph) -> bytes:
        """Compress the out-adjacency structure of ``graph``."""
        normalized, _ = graph.normalized()
        n = normalized.node_size
        adjacency: Dict[int, Set[int]] = {v: set() for v in
                                          range(1, n + 1)}
        for _, edge in normalized.edges():
            if len(edge.att) != 2:
                raise EncodingError("LM supports rank-2 edges only")
            adjacency[edge.att[0]].add(edge.att[1])
        writer = BitWriter()
        for base in range(1, n + 1, self.chunk_size):
            members = range(base, min(base + self.chunk_size, n + 1))
            merged: List[int] = sorted(
                set().union(*(adjacency[v] for v in members))
                if members else set()
            )
            encode_delta(writer, len(merged) + 1)
            previous = 0
            for target in merged:
                encode_delta(writer, target - previous)
                previous = target
            position = {target: idx for idx, target in enumerate(merged)}
            for v in members:
                bitmap = [False] * len(merged)
                for target in adjacency[v]:
                    bitmap[position[target]] = True
                writer.write_bools(bitmap)
        payload = writer.to_bytes()
        out = bytearray()
        write_uvarint(out, n)
        write_uvarint(out, self.chunk_size)
        write_uvarint(out, len(writer))
        out.extend(zlib.compress(payload, self.level))
        return bytes(out)

    # ------------------------------------------------------------------
    # Decompression and queries
    # ------------------------------------------------------------------
    @staticmethod
    def _open(data: bytes):
        n, pos = read_uvarint(data, 0)
        chunk_size, pos = read_uvarint(data, pos)
        bit_length, pos = read_uvarint(data, pos)
        payload = zlib.decompress(data[pos:])
        return n, chunk_size, BitReader(payload, bit_length)

    def decompress(self, data: bytes, label: int = 1) -> Hypergraph:
        """Rebuild the graph (all edges carry ``label``)."""
        n, chunk_size, reader = self._open(data)
        graph = Hypergraph()
        for _ in range(n):
            graph.add_node()
        for base in range(1, n + 1, chunk_size):
            members = range(base, min(base + chunk_size, n + 1))
            merged = self._read_merged(reader)
            for v in members:
                for idx, flag in enumerate(reader.read_bools(len(merged))):
                    if flag:
                        graph.add_edge(label, (v, merged[idx]))
        return graph

    @staticmethod
    def _read_merged(reader: BitReader) -> List[int]:
        count = decode_delta(reader) - 1
        merged = []
        current = 0
        for _ in range(count):
            current += decode_delta(reader)
            merged.append(current)
        return merged

    def out_neighbors(self, data: bytes, node: int) -> List[int]:
        """Out-neighbor query: decodes chunks up to the node's chunk.

        The stream is not indexed (matching the minimal format); for
        benchmark purposes the cost model is the published one — a
        single chunk decode — once the chunk offsets are cached.
        """
        n, chunk_size, reader = self._open(data)
        if not 1 <= node <= n:
            raise EncodingError(f"node {node} out of range 1..{n}")
        for base in range(1, n + 1, chunk_size):
            members = range(base, min(base + chunk_size, n + 1))
            merged = self._read_merged(reader)
            if node in members:
                for v in members:
                    bitmap = reader.read_bools(len(merged))
                    if v == node:
                        return [merged[i] for i, flag in enumerate(bitmap)
                                if flag]
            else:
                # Skip this chunk's bitmaps.
                reader.read_bools(len(merged) * len(members))
        raise EncodingError("corrupt LM stream")  # pragma: no cover
