"""Classic string RePair (Larsson & Moffat [15]).

Included for the paper's conclusion claim: "gRePair over string- and
tree-graphs obtains similar compression ratios as the original
specialized versions for strings and trees."  The benchmark
``bench_string_graphs.py`` feeds the same underlying string to this
compressor and, as a labeled path graph, to gRePair, and compares
grammar sizes.

The implementation is the textbook loop: repeatedly replace the most
frequent adjacent symbol pair by a fresh nonterminal until no pair
occurs twice, then prune rules referenced at most once by inlining
them (which makes right-hand sides variable-length, exactly as in the
paper's ``B -> abc`` pruning example).  The original's O(n) data
structures are unnecessary at test scale; the replacement decisions —
most frequent pair, ties by first occurrence — are the same.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple


class StringGrammar:
    """Result of string RePair: final sequence plus rules."""

    def __init__(self, sequence: List[int],
                 rules: Dict[int, List[int]]) -> None:
        self.sequence = sequence
        self.rules = rules

    @property
    def size(self) -> int:
        """Grammar size: |final sequence| + sum of rule rhs lengths."""
        return len(self.sequence) + sum(len(rhs) for rhs in
                                        self.rules.values())

    def expand(self) -> List[int]:
        """Derive the original string back (correctness check)."""
        cache: Dict[int, List[int]] = {}

        def expand_symbol(symbol: int) -> List[int]:
            if symbol not in self.rules:
                return [symbol]
            if symbol not in cache:
                expanded: List[int] = []
                for child in self.rules[symbol]:
                    expanded.extend(expand_symbol(child))
                cache[symbol] = expanded
            return cache[symbol]

        result: List[int] = []
        for symbol in self.sequence:
            result.extend(expand_symbol(symbol))
        return result


def _most_frequent_pair(
    sequence: Sequence[int],
) -> Tuple[int, int] | None:
    """Most frequent adjacent pair under RePair's non-overlap count.

    In a run ``aaa`` the pair ``aa`` counts once, not twice.
    """
    counts: Counter = Counter()
    previous_was_pair = False
    for left, right in zip(sequence, sequence[1:]):
        if previous_was_pair and left == right:
            previous_was_pair = False
            continue
        counts[(left, right)] += 1
        previous_was_pair = left == right
    if not counts:
        return None
    pair, count = counts.most_common(1)[0]
    return pair if count >= 2 else None


def _replace_pair(sequence: List[int], pair: Tuple[int, int],
                  symbol: int) -> List[int]:
    result: List[int] = []
    i = 0
    while i < len(sequence):
        if (i + 1 < len(sequence)
                and (sequence[i], sequence[i + 1]) == pair):
            result.append(symbol)
            i += 2
        else:
            result.append(sequence[i])
            i += 1
    return result


def _prune(sequence: List[int], rules: Dict[int, List[int]]) -> None:
    """Inline every rule referenced at most once (variable-length rhs)."""
    changed = True
    while changed:
        changed = False
        refs: Counter = Counter(sequence)
        for rhs in rules.values():
            refs.update(rhs)
        for symbol in list(rules):
            if refs[symbol] > 1:
                continue
            body = rules.pop(symbol)
            replaced = False
            for i, value in enumerate(sequence):
                if value == symbol:
                    sequence[i:i + 1] = body
                    replaced = True
                    break
            if not replaced:
                for rhs in rules.values():
                    for i, value in enumerate(rhs):
                        if value == symbol:
                            rhs[i:i + 1] = body
                            replaced = True
                            break
                    if replaced:
                        break
            changed = True


def string_repair(sequence: Sequence[int],
                  first_nonterminal: int = 1 << 20) -> StringGrammar:
    """Run RePair on an integer sequence.

    ``first_nonterminal`` must exceed every input symbol; fresh
    nonterminals count up from it.
    """
    working = list(sequence)
    rules: Dict[int, List[int]] = {}
    next_symbol = first_nonterminal
    while True:
        pair = _most_frequent_pair(working)
        if pair is None:
            break
        rules[next_symbol] = list(pair)
        working = _replace_pair(working, pair, next_symbol)
        next_symbol += 1
    _prune(working, rules)
    return StringGrammar(working, rules)


__all__ = ["StringGrammar", "string_repair"]
