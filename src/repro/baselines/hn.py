"""HN — virtual-node mining + k2-tree (Hernandez & Navarro [22]).

The method combines the dense-substructure detection of Buehrer and
Chellapilla [23] with a k2-tree of the residual graph: repeatedly find
bicliques (a set of sources S sharing a set C of out-neighbors),
replace the |S| x |C| edges with a fresh *virtual node* v and
|S| + |C| edges (u -> v for u in S, v -> c for c in C), then encode
what remains as a k2-tree.

Mining follows the shingle-clustering recipe of [23]: sources are
bucketed by the min-hash ("shingle") of their out-neighbor sets, so
sources with heavily overlapping lists collide; inside a bucket a
greedy scan grows S while the common neighbor set stays >= ES.
Parameters follow the paper's choice for HN: ``T = 10`` (minimum edge
saving for a biclique to be materialized), ``P = 2`` mining passes and
``ES = 10`` (minimum common-neighbor-set size).

Decompression expands virtual nodes transitively (a later pass can
capture virtual nodes of an earlier one).  Unlabeled simple digraphs
only, as in the paper's comparisons.

Format::

    varint real-node count n
    varint total node count (n + virtual nodes)
    k2-tree bytes of the residual graph over all nodes
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import EncodingError
from repro.encoding.k2tree import K2Tree
from repro.util.varint import read_uvarint, write_uvarint

#: Multiplier/offset of the cheap deterministic integer hash used for
#: shingles (64-bit splitmix-style).
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


def _shingle(targets: Set[int]) -> int:
    """Min-hash of a target set (deterministic across runs)."""
    return min(((t * _HASH_MULT) ^ (t >> 7)) & _HASH_MASK
               for t in targets)


class HNCompressor:
    """Dense-substructure virtual nodes followed by a k2-tree."""

    def __init__(self, min_saving: int = 10, passes: int = 2,
                 min_edge_set: int = 10, k: int = 2) -> None:
        self.min_saving = min_saving
        self.passes = passes
        self.min_edge_set = min_edge_set
        self.k = k

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def _mine_pass(self, adjacency: Dict[int, Set[int]],
                   next_virtual: int) -> Tuple[int, int]:
        """One clustering pass; returns (new next_virtual, bicliques)."""
        buckets: Dict[int, List[int]] = {}
        for source, targets in adjacency.items():
            if len(targets) >= self.min_edge_set:
                buckets.setdefault(_shingle(targets), []).append(source)
        found = 0
        for shingle in sorted(buckets):
            bucket = sorted(buckets[shingle])
            used: Set[int] = set()
            for anchor in bucket:
                if anchor in used:
                    continue
                common = set(adjacency[anchor])
                group = [anchor]
                for candidate in bucket:
                    if candidate in used or candidate == anchor:
                        continue
                    narrowed = common & adjacency[candidate]
                    if len(narrowed) >= self.min_edge_set:
                        common = narrowed
                        group.append(candidate)
                if len(group) < 2:
                    continue
                saving = (len(group) * len(common)
                          - (len(group) + len(common)))
                if saving < self.min_saving:
                    continue
                virtual = next_virtual
                next_virtual += 1
                adjacency[virtual] = set(common)
                for source in group:
                    adjacency[source] -= common
                    adjacency[source].add(virtual)
                    used.add(source)
                found += 1
        return next_virtual, found

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, graph: Hypergraph) -> bytes:
        """Mine virtual nodes, then k2-encode the residual graph."""
        normalized, _ = graph.normalized()
        n = normalized.node_size
        adjacency: Dict[int, Set[int]] = {v: set() for v in
                                          range(1, n + 1)}
        for _, edge in normalized.edges():
            if len(edge.att) != 2:
                raise EncodingError("HN supports rank-2 edges only")
            adjacency[edge.att[0]].add(edge.att[1])
        next_virtual = n + 1
        for _ in range(self.passes):
            next_virtual, found = self._mine_pass(adjacency, next_virtual)
            if not found:
                break
        total = next_virtual - 1
        cells = [(source - 1, target - 1)
                 for source, targets in adjacency.items()
                 for target in targets]
        tree = K2Tree.from_cells(cells, total, self.k)
        payload = tree.to_bytes()
        out = bytearray()
        write_uvarint(out, n)
        write_uvarint(out, total)
        out.extend(payload)
        return bytes(out)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, data: bytes, label: int = 1) -> Hypergraph:
        """Expand virtual nodes back into their bicliques."""
        n, pos = read_uvarint(data, 0)
        total, pos = read_uvarint(data, pos)
        tree = K2Tree.from_bytes(data[pos:])
        successors: Dict[int, List[int]] = {}
        for row, col in tree.cells():
            successors.setdefault(row + 1, []).append(col + 1)

        # Resolve virtual targets transitively, memoized.  Virtual
        # nodes reference only strictly newer virtual nodes' targets,
        # and expansion is acyclic by construction.
        resolved: Dict[int, Set[int]] = {}

        def expand(node: int) -> Set[int]:
            if node in resolved:
                return resolved[node]
            result: Set[int] = set()
            for target in successors.get(node, ()):  # pragma: no branch
                if target <= n:
                    result.add(target)
                else:
                    result |= expand(target)
            resolved[node] = result
            return result

        graph = Hypergraph()
        for _ in range(n):
            graph.add_node()
        for source in range(1, n + 1):
            targets: Set[int] = set()
            for target in successors.get(source, ()):
                if target <= n:
                    targets.add(target)
                else:
                    targets |= expand(target)
            for target in sorted(targets):
                graph.add_edge(label, (source, target))
        return graph
