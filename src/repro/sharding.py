"""Partitioned serving: :class:`ShardedCompressedGraph`.

One grammar per graph stops scaling when the graph outgrows a single
compression run (or a single machine's build budget).  This module
keeps the :class:`repro.api.CompressedGraph` serving interface but
spreads the graph over ``k`` independent per-shard grammars.  It is
orchestration glue over the :mod:`repro.partition` layer, which owns
the actual partition topology:

* **partition** — a pluggable partitioner
  (:data:`repro.partition.PARTITIONERS`: ``hash`` by default,
  ``connectivity`` keeps whole components together, ``bfs`` and
  ``label`` minimize the edge cut so even a single giant component
  splits with a small boundary) assigns every node to a shard;
  :func:`repro.partition.build_plan` scores the cut
  (``boundary_edges`` / ``cut_ratio`` / ``balance``, see
  :attr:`ShardedCompressedGraph.partition_stats`).
* **pin the boundary** — edges whose attachment spans two shards
  cannot live inside any shard grammar; they are kept verbatim in a
  :class:`repro.partition.BoundaryGraph`.  Their endpoints are marked
  **external** in the shard subgraphs before compression: gRePair
  never folds an external node into a rule (see
  :func:`repro.core.digram.occurrence_key`), so every boundary node
  provably survives in its shard's start graph with its original ID.
  That survival is what makes boundary structures translatable into
  the canonical per-shard query numbering — the one piece of node
  identity compression otherwise erases.
* **compress shards independently** — optionally fanned out over a
  thread pool (``parallel="thread"``) or forked worker processes
  (``parallel="process"``, one compression per core — gRePair is pure
  Python, so only processes sidestep the GIL); each shard becomes a
  full ``CompressedGraph`` handle.
* **serve** — the global ID space is shard-major: shard ``i`` owns the
  contiguous ID block ``base_i + 1 .. base_i + n_i`` where the local
  IDs are the shard's own canonical ``val`` numbering.  Per-node
  queries (``out`` / ``in_`` / ``neighborhood`` / ``degree``) route to
  the owning shard and merge that node's boundary edges;
  ``components`` combines per-shard counts with a union-find over the
  boundary summary built at partition time; ``path`` runs BFS over
  the merged neighborhoods.  Cross-shard ``reach`` is planned per
  query by a :class:`repro.partition.ReachPlanner`: a lazily built
  (and container-persisted) :class:`repro.partition.BoundaryClosure`
  answers it with one in-shard Theorem-6 batch per endpoint shard
  plus O(1) closure hops; when the closure is over budget the planner
  falls back to batched boundary chaining (sparse) or merged-BFS
  (dense).  A differential suite asserts every answer equals the
  unsharded handle's under every strategy.
* **persist** — :meth:`save` / :meth:`open` use the multi-shard
  container framing of :mod:`repro.encoding.container` ("GRPS"): one
  routing-summary meta section plus one complete "GRPR" container per
  shard, with the existing per-section size accounting kept per
  shard, plus an optional closure trailer section so a warmed
  boundary closure survives the round trip and cold-started servers
  skip the rebuild.
* **cache + batch** — the same per-handle query-result LRU as the
  unsharded facade, and ``batch(..., parallel=True)`` plans a batch
  (via :func:`repro.serving.plan_batch`): deduplicates it,
  pre-filters the LRU, groups shard-local requests per shard (each
  group ships through the shard handle's own ``batch()`` — the wire
  format), and fans the groups out across threads.  The handle is a
  :class:`repro.serving.GraphService`, so the typed ``execute()``
  surface, every executor, and :func:`repro.serving.serve` (one
  socket-served process per shard behind a router, with
  :class:`repro.serving.router.RemoteShard` proxies standing in for
  the local shard handles) all apply unchanged — including the
  planner and the closure, which the router consults identically.

:func:`open_compressed` dispatches on the container magic and returns
whichever handle type a file holds.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph
from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.pipeline import GRePairSettings
from repro.encoding.container import (
    ShardedFile,
    decode_sharded_container,
    encode_sharded_container,
    is_sharded_container,
    map_file,
)
from repro.exceptions import EncodingError, GrammarError, QueryError
from repro.partition import (
    PARTITIONERS,
    BoundaryClosure,
    BoundaryGraph,
    ProductClosure,
    ReachPlanner,
    bfs_partition,
    build_plan,
    connectivity_partition,
    hash_partition,
    label_partition,
    resolve_partitioner,
)
from repro.queries.cache import QueryCache
from repro.rpq.counts import validate_args as _validate_pattern_count
from repro.rpq.engine import _resolve_states
from repro.rpq.regex import (
    PatternDFA,
    cache_key as _rpq_cache_key,
    compile_pattern,
)
from repro.serving.executors import (
    Executor,
    InlineExecutor,
    ThreadExecutor,
    evaluate_request,
    fork_map,
)
from repro.serving.protocol import (
    GraphService,
    QueryKind,
    QueryRequest,
    QueryResult,
)
from repro.util.unionfind import UnionFind
from repro.util.varint import read_uvarint, write_uvarint

__all__ = [
    "PARTITIONERS",
    "ShardedCompressedGraph",
    "bfs_partition",
    "connectivity_partition",
    "hash_partition",
    "label_partition",
    "open_compressed",
]

_META_VERSION = 1


def _terminal_order(alphabet: Alphabet) -> Dict[int, int]:
    """Label -> 1-based terminal position (the compact container ID).

    ``encode_grammar`` compacts every shard alphabet the same way —
    terminals first, in iteration order — so this single mapping
    translates boundary-edge labels into the ID space every *loaded*
    shard grammar uses.
    """
    return {label: position for position, label in
            enumerate(alphabet.terminals(), start=1)}


def _compress_shard(subgraph: Hypergraph, alphabet: Alphabet,
                    settings: GRePairSettings, validate: bool,
                    cache_size: int) -> CompressedGraph:
    """Compress one pinned shard subgraph into its own handle.

    The pin (the subgraph's ``ext`` sequence) only exists to steer the
    compressor; it is stripped from the resulting start graph before
    the handle is created, restoring an ordinary rank-0 grammar.
    """
    if subgraph.num_edges == 0:
        # gRePair has nothing to do; wrap the trivial grammar directly
        # (also covers shards that received no nodes at all).  Original
        # node IDs are kept so the boundary locator works unchanged.
        start = Hypergraph()
        for node in sorted(subgraph.nodes()):
            start.add_node(node)
        return CompressedGraph.from_grammar(
            SLHRGrammar(alphabet.copy(), start), cache_size=cache_size)
    handle = CompressedGraph.compress(subgraph, alphabet, settings,
                                      validate=validate,
                                      cache_size=cache_size)
    handle.grammar.start.set_external(())
    return handle


# ----------------------------------------------------------------------
# The sharded serving handle
# ----------------------------------------------------------------------
class ShardedCompressedGraph(GraphService):
    """k per-shard grammars behind one ``CompressedGraph``-shaped API.

    Construct through :meth:`compress`, :meth:`open` or
    :meth:`from_bytes`.  Global node IDs are shard-major: shard ``i``
    owns ``bases[i] + 1 .. bases[i] + n_i``, local IDs being the
    shard's canonical ``val`` numbering (the same numbering an
    unsharded handle would use for that shard alone).  The handle is
    immutable after construction and safe to share between threads;
    every per-shard index — and the boundary closure — builds lazily,
    at most once.
    """

    _BATCH_KINDS = CompressedGraph._BATCH_KINDS

    def __init__(self, shards: List[CompressedGraph],
                 alphabet: Alphabet,
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 shard_nodes: List[int],
                 simple: bool = True,
                 partitioner: str = "hash",
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 container: Optional[ShardedFile] = None,
                 container_key: Optional[Tuple[Any, ...]] = None,
                 closure: Optional[BoundaryClosure] = None,
                 closure_persisted: bool = False,
                 label_names: Optional[Sequence[
                     Tuple[int, Optional[str]]]] = None,
                 rpq_closures: Optional[List[
                     Tuple[PatternDFA, ProductClosure]]] = None,
                 rpq_closures_persisted: bool = False) -> None:
        """Internal: boundary structures must already be in global IDs.

        Use the classmethod constructors.  ``label_names`` substitutes
        for the alphabet when the handle fronts socket-proxy shards
        (the router has no grammar of its own): a ``(label, name)``
        table covering the terminals boundary edges may carry.
        """
        self._shards = shards
        self._alphabet = alphabet
        self._label_table: Optional[Dict[int, Optional[str]]] = (
            dict(label_names) if label_names is not None else None)
        self._extrema = extrema
        self._degree_error = degree_error
        self._partitioner = partitioner
        self._cache = QueryCache(cache_size)
        self._lock = threading.RLock()
        self._container = container
        self._container_key = container_key
        self._bases: List[int] = []
        base = 0
        for count in shard_nodes:
            self._bases.append(base)
            base += count
        self._total_nodes = base
        self._shard_nodes = list(shard_nodes)
        self._component_count: Optional[int] = None
        #: True iff every edge of the full graph has rank 2; mirrors
        #: the unsharded handle, whose reach raises on any hyperedge.
        self._simple = simple
        #: The boundary topology (summaries, exits/entries, blocks).
        self._boundary = BoundaryGraph(boundary_edges, blocks,
                                       self._bases)
        #: The cross-shard reach cost model (shared with the router).
        self._planner = ReachPlanner(self._boundary, self._total_nodes)
        if (closure is not None
                and closure.nodes != sorted(self._boundary.incident)):
            # A structurally valid closure over the wrong node set
            # (a spliced or corrupted container) must fail here, like
            # the meta/shard-count mismatch does — not as a KeyError
            # from the first reach that takes the closure route.
            raise EncodingError(
                "closure section covers a different boundary node "
                "set than the container meta"
            )
        self._closure_obj = closure
        self._closure_persisted = closure_persisted
        boundary_nodes = sorted(self._boundary.incident)
        self._rpq_closures: Dict[Tuple, Tuple[PatternDFA,
                                              ProductClosure]] = {}
        for dfa, product in (rpq_closures or []):
            if product.nodes != boundary_nodes:
                raise EncodingError(
                    "rpq closure section covers a different boundary "
                    "node set than the container meta"
                )
            if product.num_states != dfa.num_states:
                raise EncodingError(
                    "rpq closure state count disagrees with its "
                    "pattern DFA"
                )
            self._rpq_closures[dfa.key] = (dfa, product)
        self._rpq_closures_persisted = rpq_closures_persisted
        #: Lazily built labeled boundary out-adjacency (global IDs).
        self._boundary_out_edges: Optional[
            Dict[int, List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def compress(cls, graph: Hypergraph, alphabet: Alphabet,
                 settings: Optional[GRePairSettings] = None,
                 shards: int = 4,
                 partitioner: Union[str, Callable[[Hypergraph, int],
                                                  Dict[int, int]]] = "hash",
                 parallel: Union[bool, str] = False,
                 max_workers: Optional[int] = None,
                 validate: bool = True,
                 cache_size: int = DEFAULT_CACHE_SIZE
                 ) -> "ShardedCompressedGraph":
        """Partition ``graph``, compress every shard, build the handle.

        ``partitioner`` is a name from
        :data:`repro.partition.PARTITIONERS` or any
        ``(graph, shards) -> {node: shard}`` callable covering every
        node with values in ``range(shards)``.  The per-shard
        compressions are independent by construction; ``parallel``
        picks where they run: ``False`` sequentially, ``True`` or
        ``"thread"`` on a thread pool, ``"process"`` on **forked
        worker processes** (one compression per core — the thread
        pool is GIL-bound, so CPU-heavy builds only scale this way;
        each worker ships its finished grammar back to the parent).
        """
        if shards < 1:
            raise GrammarError(f"shards must be >= 1, got {shards}")
        if settings is None:
            settings = GRePairSettings()
        partition_fn, partitioner_name = resolve_partitioner(partitioner)
        assign = partition_fn(graph, shards)
        missing = [node for node in graph.nodes() if node not in assign]
        if missing:
            raise GrammarError(
                f"partitioner left {len(missing)} nodes unassigned "
                f"(first: {missing[:3]})"
            )
        bad = {shard for shard in assign.values()
               if not 0 <= shard < shards}
        if bad:
            raise GrammarError(
                f"partitioner produced out-of-range shards {sorted(bad)}")
        plan = build_plan(graph, assign, shards)

        def build(index: int) -> CompressedGraph:
            return _compress_shard(plan.subgraphs[index], alphabet,
                                   settings, validate, cache_size)

        mode = {False: None, True: "thread"}.get(parallel, parallel)
        if mode not in (None, "thread", "process"):
            raise GrammarError(
                f"unknown parallel mode {parallel!r}; expected False, "
                "True, 'thread' or 'process'"
            )
        if mode == "process" and shards > 1:
            # Fork workers: each compresses its shards and ships the
            # finished grammar (+ result metadata) back over a pipe;
            # locks and handles never cross the process boundary.
            def build_payload(index: int):
                handle = build(index)
                return handle._grammar, handle.result

            payloads = fork_map(
                [lambda index=index: build_payload(index)
                 for index in range(shards)],
                max_workers=max_workers)
            handles = [CompressedGraph(grammar, result=result,
                                       cache_size=cache_size)
                       for grammar, result in payloads]
        elif mode == "thread" and shards > 1:
            from concurrent.futures import ThreadPoolExecutor
            workers = max_workers or min(8, shards)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                handles = list(pool.map(build, range(shards)))
        else:
            handles = [build(index) for index in range(shards)]

        # Translate the boundary summary into the shard-major global ID
        # space.  Boundary nodes survive in the shard start graphs (the
        # pin guarantees it), and canonicalization numbers start nodes
        # 1..m in ascending original-ID order — so a boundary node's
        # local ID is its rank among the surviving start nodes.
        locators: List[Dict[int, int]] = []
        shard_nodes: List[int] = []
        for index, handle in enumerate(handles):
            survivors = sorted(handle.grammar.start.nodes())
            locator = {original: position for position, original in
                       enumerate(survivors, start=1)}
            for pinned in plan.boundary_nodes[index]:
                if pinned not in locator:  # pragma: no cover - guarded
                    raise GrammarError(
                        f"boundary node {pinned} was folded into a rule "
                        f"of shard {index}; the external pin failed"
                    )
            locators.append(locator)
            count = handle.node_count()
            if count != plan.subgraphs[index].node_size:
                raise GrammarError(
                    f"shard {index} derives {count} nodes but was "
                    f"assigned {plan.subgraphs[index].node_size}"
                )
            shard_nodes.append(count)
        bases = [0] * shards
        for index in range(1, shards):
            bases[index] = bases[index - 1] + shard_nodes[index - 1]

        def to_global(node: int) -> int:
            shard = assign[node]
            return bases[shard] + locators[shard][node]

        boundary_edges = [
            (label, tuple(to_global(node) for node in att))
            for label, att in plan.boundary_edges
        ]
        blocks = [
            [tuple(sorted(to_global(node) for node in block))
             for block in shard_blocks]
            for shard_blocks in plan.blocks
        ]
        reference = alphabet.copy()
        return cls(handles, reference, boundary_edges, blocks,
                   plan.extrema, plan.degree_error, shard_nodes,
                   simple=plan.simple, partitioner=partitioner_name,
                   cache_size=cache_size)

    @classmethod
    def from_bytes(cls, buf: Union[bytes, bytearray, memoryview,
                                   ShardedFile],
                   cache_size: int = DEFAULT_CACHE_SIZE
                   ) -> "ShardedCompressedGraph":
        """Load a handle from serialized "GRPS" container bytes.

        This is the full-open path: every shard is decoded (a local
        handle serves all of them), so all blobs materialize.  Readers
        that own a subset of shards decode the
        :class:`~repro.encoding.container.DecodedContainer` themselves
        and materialize only their own — see
        :class:`repro.serving.router.ShardHost`.
        """
        if isinstance(buf, ShardedFile):
            data = buf.data
        elif isinstance(buf, bytearray):
            data = bytes(buf)  # defend against caller mutation
        else:
            data = buf
        parsed = decode_sharded_container(data)
        blobs = parsed.shards
        shards = [CompressedGraph.from_bytes(blob, cache_size=cache_size)
                  for blob in blobs]
        (shard_nodes, boundary_edges, blocks, extrema, degree_error,
         simple, partitioner) = _decode_meta(parsed.meta, len(blobs))
        if len(shard_nodes) != len(shards):
            raise EncodingError(
                f"meta lists {len(shard_nodes)} shards, container "
                f"holds {len(shards)}"
            )
        # Every shard was compressed from a copy of one input alphabet,
        # so their terminal lists agree up to pass-minted extras (the
        # virtual-edge label) appended at the end.  Boundary labels
        # only reference the shared prefix; verify exactly that.
        def signature(handle: CompressedGraph
                      ) -> List[Tuple[int, Optional[str]]]:
            terminal_alphabet = handle.grammar.alphabet
            return [(terminal_alphabet.rank(label),
                     terminal_alphabet.name(label))
                    for label in terminal_alphabet.terminals()]

        reference_signature = signature(shards[0])
        for index, shard in enumerate(shards[1:], start=1):
            shard_signature = signature(shard)
            common = min(len(reference_signature), len(shard_signature))
            if shard_signature[:common] != reference_signature[:common]:
                raise EncodingError(
                    f"shard {index} terminal alphabet differs from "
                    "shard 0; the container was not produced by one "
                    "build"
                )
        reference = shards[0].grammar.alphabet
        closure = (BoundaryClosure.from_bytes(parsed.closure)
                   if parsed.has_closure else None)
        rpq_closures = (_decode_rpq_closures(parsed.rpq_closures)
                        if parsed.has_rpq_closures else None)
        container = ShardedFile(
            data=data, section_bytes=parsed.section_bytes())
        # Like CompressedGraph.from_bytes: remember the k the file was
        # encoded with so save()/to_bytes() reuse the loaded bytes only
        # when the requested parameters match.
        k, _ = read_uvarint(blobs[0], 5)
        return cls(shards, reference, boundary_edges, blocks, extrema,
                   degree_error, shard_nodes, simple=simple,
                   partitioner=partitioner, cache_size=cache_size,
                   container=container,
                   container_key=(True, k, closure is not None,
                                  len(rpq_closures or [])),
                   closure=closure,
                   closure_persisted=closure is not None,
                   rpq_closures=rpq_closures,
                   rpq_closures_persisted=rpq_closures is not None)

    @classmethod
    def open(cls, path: Union[str, Path],
             cache_size: int = DEFAULT_CACHE_SIZE
             ) -> "ShardedCompressedGraph":
        """Load a handle from a ``.grps`` container file (mmap-backed)."""
        return cls.from_bytes(map_file(path), cache_size=cache_size)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_container(self, include_names: bool = True, k: int = 2,
                     include_closure: Optional[bool] = None
                     ) -> ShardedFile:
        """Serialize to the multi-shard container format.

        ``include_closure=None`` (the default) persists the boundary
        closure exactly when it is already built — so a warmed handle
        round-trips its closure for free and a cold handle pays
        nothing; ``True`` forces the build first, ``False`` drops it.
        Warmed RPQ product closures follow the same default: whatever
        :meth:`warm_rpq_closure` has built rides along in the ``'R'``
        trailer section (dropped with ``include_closure=False``).
        Cached per parameter set: loaded handles keep reporting the
        file they came from, and repeated ``sizes``/``total_bytes``
        accesses do not re-encode every shard.
        """
        include_rpq = include_closure is not False
        if include_closure is None:
            include_closure = self.closure_built
        with self._lock:
            rpq_entries = (sorted(self._rpq_closures.values(),
                                  key=lambda entry: entry[0].to_bytes())
                           if include_rpq else [])
        key = (include_names, k, bool(include_closure),
               len(rpq_entries))
        with self._lock:
            if self._container is not None and self._container_key == key:
                return self._container
        order = _terminal_order(self._alphabet)
        boundary_edges = [
            (order[label], att)
            for label, att in self._boundary.edges
        ]
        meta = _encode_meta(self._shard_nodes, boundary_edges,
                            self._boundary.blocks, self._extrema,
                            self._degree_error, self._simple,
                            self._partitioner)
        blobs = [shard.to_bytes(include_names=include_names, k=k)
                 for shard in self._shards]
        closure_bytes = (self.warm_closure().to_bytes()
                         if include_closure else None)
        rpq_bytes = (_encode_rpq_closures(rpq_entries)
                     if rpq_entries else None)
        container = encode_sharded_container(meta, blobs, closure_bytes,
                                             rpq_bytes)
        with self._lock:
            self._container = container
            self._container_key = key
            self._closure_persisted = bool(include_closure)
            self._rpq_closures_persisted = bool(rpq_entries)
        return container

    def _current_container(self) -> ShardedFile:
        """The existing container if any, else a default encoding."""
        with self._lock:
            container = self._container
        if container is not None:
            return container
        return self.to_container()

    def to_bytes(self, include_names: bool = True, k: int = 2,
                 include_closure: Optional[bool] = None) -> bytes:
        """Serialize to "GRPS" container bytes."""
        data = self.to_container(include_names, k, include_closure).data
        return data if isinstance(data, bytes) else bytes(data)

    def save(self, path: Union[str, Path], include_names: bool = True,
             k: int = 2,
             include_closure: Optional[bool] = None) -> ShardedFile:
        """Write the container to ``path``; returns the container."""
        container = self.to_container(include_names, k, include_closure)
        container.write(path)
        return container

    @property
    def sizes(self) -> Dict[str, int]:
        """Per-section bytes: ``meta`` plus ``shard<i>/<section>``
        (plus ``closure`` when persisted).

        Loaded handles report the sections parsed from the loaded
        file, exactly like :attr:`CompressedGraph.sizes`.
        """
        return dict(self._current_container().section_bytes)

    @property
    def total_bytes(self) -> int:
        """Size of the serialized container in bytes."""
        return self._current_container().total_bytes

    def bits_per_edge(self, num_edges: Optional[int] = None) -> float:
        """bpe of the serialized container (the paper's size metric)."""
        if num_edges is None:
            num_edges = self.edge_count()
        return self._current_container().bits_per_edge(num_edges)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of per-shard grammars."""
        return len(self._shards)

    @property
    def shards(self) -> List[CompressedGraph]:
        """The per-shard handles (shared, not copies)."""
        return list(self._shards)

    @property
    def alphabet(self) -> Alphabet:
        """The terminal alphabet shared by every shard."""
        return self._alphabet

    @property
    def boundary(self) -> BoundaryGraph:
        """The boundary topology (summaries, exits/entries, blocks)."""
        return self._boundary

    @property
    def boundary_edge_count(self) -> int:
        """Edges of the input that cross shards (kept uncompressed)."""
        return self._boundary.edge_count

    @property
    def planner(self) -> ReachPlanner:
        """The cross-shard reach planner (cost model + overrides)."""
        return self._planner

    @property
    def closure_built(self) -> bool:
        """Whether the boundary closure exists (no side effects)."""
        return self._closure_obj is not None

    @property
    def closure_persisted(self) -> bool:
        """Whether the current container carries a closure section."""
        return self._closure_persisted

    def warm_closure(self) -> BoundaryClosure:
        """Force the boundary closure now (build at most once).

        One in-shard ``batch()`` per shard covers every boundary-node
        pair; the resulting closure makes every cross-shard ``reach``
        one batch per endpoint shard.  Safe to call concurrently.
        Raises :class:`QueryError` for non-simple graphs — their
        ``reach`` raises anyway, so a closure could never be used.
        """
        closure = self._closure_obj
        if closure is None and not self._simple:
            raise QueryError(
                "the boundary closure requires a simple derived "
                "graph; found a terminal hyperedge"
            )
        if closure is None:
            with self._lock:
                closure = self._closure_obj
                if closure is None:
                    closure = BoundaryClosure.build(
                        self._boundary, self._shards, self._bases)
                    self._closure_obj = closure
        return closure

    @property
    def partition_stats(self) -> Dict[str, float]:
        """Cut statistics of this partition: size, ratio, balance.

        Same keys as :func:`repro.partition.cut_statistics`
        (``boundary_edges`` / ``cut_ratio`` / ``balance``), derived
        from the handle itself so loaded containers report them too.
        Counts edges on the raw shard grammars (canonicalization does
        not change edge counts), so reading this never forces the
        shards' lazy query indexes.
        """
        total_edges = self._boundary.edge_count + sum(
            (shard.grammar.derived_edge_count()
             if hasattr(shard, "grammar")     # socket-proxy shards
             else shard.edge_count())         # answer over the wire
            for shard in self._shards)
        ideal = (self._total_nodes / len(self._shards)
                 if self._shards else 0.0)
        return {
            "boundary_edges": self._boundary.edge_count,
            "cut_ratio": (self._boundary.edge_count / total_edges
                          if total_edges else 0.0),
            "balance": (max(self._shard_nodes) / ideal
                        if ideal else 1.0),
        }

    @property
    def canonicalizations(self) -> int:
        """Total canonicalization passes across all shard handles."""
        return sum(shard.canonicalizations for shard in self._shards)

    @property
    def index_built(self) -> bool:
        """Whether every shard's lazy query index exists."""
        return all(shard.index_built for shard in self._shards)

    @property
    def cache(self) -> QueryCache:
        """The handle's query-result LRU."""
        return self._cache

    @property
    def cache_info(self) -> Dict[str, Any]:
        """LRU counters: capacity, size, hits, misses, evictions."""
        return self._cache.info()

    @property
    def cache_hits(self) -> int:
        """Queries answered from the result LRU."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Queries that fell through to evaluation."""
        return self._cache.misses

    @property
    def stats(self) -> Dict[str, object]:
        """Aggregate build statistics over the shards."""
        per_shard = [shard.stats for shard in self._shards]
        return {
            "shards": len(self._shards),
            "partitioner": self._partitioner,
            "boundary_edges": self._boundary.edge_count,
            "boundary_nodes": len(self._boundary.incident),
            "closure_built": self.closure_built,
            "closure_persisted": self.closure_persisted,
            "rpq_closures": len(self._rpq_closures),
            "rpq_closures_persisted": self._rpq_closures_persisted,
            "shard_nodes": list(self._shard_nodes),
            "shard_grammar_sizes": [shard.grammar.size
                                    for shard in self._shards],
            "per_shard": per_shard,
        }

    def summary(self) -> str:
        """One-line description of the handle."""
        total_rules = sum(shard.grammar.num_rules
                          for shard in self._shards)
        total_size = sum(shard.grammar.size for shard in self._shards)
        return (f"{len(self._shards)} shards "
                f"({self._partitioner}), {total_rules} rules, "
                f"sum|G|={total_size}, "
                f"{self._boundary.edge_count} boundary edges, "
                f"{self._total_nodes} nodes")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _owner(self, node_id: int) -> int:
        """Shard index owning a global node ID."""
        if not 1 <= node_id <= self._total_nodes:
            raise QueryError(
                f"node ID {node_id} out of range 1..{self._total_nodes}"
            )
        return bisect_right(self._bases, node_id - 1) - 1

    def _local(self, node_id: int, shard: int) -> int:
        return node_id - self._bases[shard]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def decompress(self, max_edges: Optional[int] = None) -> Hypergraph:
        """Expand the full graph with the global (shard-major) numbering.

        The union of the per-shard ``val`` graphs, offset by the shard
        bases, plus the boundary edges — exactly the ID space every
        query answers in.
        """
        merged = Hypergraph()
        for node in range(1, self._total_nodes + 1):
            merged.add_node(node)
        remaining = max_edges
        for shard_index, shard in enumerate(self._shards):
            base = self._bases[shard_index]
            val = shard.decompress(max_edges=remaining)
            for _, edge in val.edges():
                merged.add_edge(edge.label,
                                tuple(node + base for node in edge.att))
            if remaining is not None:
                remaining -= val.num_edges
                if remaining <= 0:
                    return merged
        for label, att in self._boundary.edges:
            merged.add_edge(label, att)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
        return merged

    # ------------------------------------------------------------------
    # Neighborhood queries (route to the owner, merge the boundary)
    # ------------------------------------------------------------------
    def _merged_neighbors(self, node_id: int, direction: str
                          ) -> List[int]:
        shard = self._owner(node_id)
        local = self._local(node_id, shard)
        base = self._bases[shard]
        handle = self._shards[shard]
        if direction == "out":
            inner = handle.out_neighbors(local)
            extra = self._boundary.out.get(node_id)
        elif direction == "in":
            inner = handle.in_neighbors(local)
            extra = self._boundary.into.get(node_id)
        else:
            inner = handle.neighbors(local)
            extra = self._boundary.undirected.get(node_id)
        result = [node + base for node in inner]
        if extra:
            merged = set(result)
            merged.update(extra)
            return sorted(merged)
        return result

    def out_neighbors(self, node_id: int) -> List[int]:
        """Sorted out-neighbor IDs of ``node_id`` (paper's ``N+``)."""
        return self._cache.get_or_compute(
            ("out", node_id),
            lambda: self._merged_neighbors(node_id, "out"))

    def in_neighbors(self, node_id: int) -> List[int]:
        """Sorted in-neighbor IDs of ``node_id`` (paper's ``N-``)."""
        return self._cache.get_or_compute(
            ("in", node_id),
            lambda: self._merged_neighbors(node_id, "in"))

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted undirected neighborhood ``N(v)``."""
        return self._cache.get_or_compute(
            ("neighborhood", node_id),
            lambda: self._merged_neighbors(node_id, "any"))

    def out(self, node_id: int) -> List[int]:
        """Alias of :meth:`out_neighbors`."""
        return self.out_neighbors(node_id)

    def in_(self, node_id: int) -> List[int]:
        """Alias of :meth:`in_neighbors` (``in`` is a keyword)."""
        return self.in_neighbors(node_id)

    def neighborhood(self, node_id: int) -> List[int]:
        """Alias of :meth:`neighbors`."""
        return self.neighbors(node_id)

    # ------------------------------------------------------------------
    # Speed-up queries (merge per-shard summaries)
    # ------------------------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """(s,t)-reachability across shards, planned per query.

        Same-shard pairs in an untouched shard run the owning shard's
        Theorem-6 query verbatim (``O(|G_i|)``).  Cross-shard pairs go
        through the :class:`repro.partition.ReachPlanner`:

        * **closure** — one in-shard batch per endpoint shard plus
          O(1) hops in the boundary transitive closure (built lazily,
          persisted in the container);
        * **chaining** — batched boundary chaining when the closure is
          over budget and the boundary is sparse: one ``batch()`` per
          (shard, wave) alternates per-shard reachability with
          boundary hops;
        * **BFS** — a dense boundary rivals the graph itself, so fall
          back to BFS over the merged (LRU-backed) neighborhoods, the
          paper's any-algorithm-on-Prop.-4 route.
        """
        return self._cache.get_or_compute(
            ("reach", source_id, target_id),
            lambda: self._reach_uncached(source_id, target_id))

    def _reach_uncached(self, source_id: int, target_id: int) -> bool:
        if not self._simple:
            raise QueryError(
                "reachability requires a simple derived graph; found "
                "a terminal hyperedge"
            )
        source_shard = self._owner(source_id)
        target_shard = self._owner(target_id)
        same_shard = source_shard == target_shard
        if (same_shard
                and self._shards[source_shard].reachable(
                    self._local(source_id, source_shard),
                    self._local(target_id, source_shard))):
            return True
        strategy = self._planner.strategy(
            source_shard, target_shard,
            closure_built=self.closure_built)
        if strategy == "local":
            return False  # no boundary route exists for this pair
        if strategy == "closure":
            return self._reach_by_closure(source_id, target_id,
                                          source_shard, target_shard)
        if strategy == "chaining":
            # The same-shard target check above already ran for the
            # source itself; don't pay that O(|G_i|) query twice.
            checked = {source_id} if same_shard else set()
            return self._reach_by_chaining(source_id, target_shard,
                                           self._local(target_id,
                                                       target_shard),
                                           checked)
        return self._reach_by_bfs(source_id, target_id)

    def _reach_by_closure(self, source_id: int, target_id: int,
                          source_shard: int, target_shard: int) -> bool:
        """Closure route: one in-shard batch per endpoint shard.

        Any cross-shard path decomposes as an intra-shard prefix to
        the first exit, a boundary-graph walk, and an intra-shard
        suffix from the last entry — so the reachable-boundary mask of
        the source plus one probe batch per endpoint shard decides the
        query.  Boundary endpoints themselves skip their batch: their
        closure row is the answer.
        """
        closure = self.warm_closure()
        boundary = self._boundary
        if source_id in boundary.incident:
            mask = (closure.row_mask(source_id)
                    | closure.bit(source_id))
        else:
            exits = boundary.exits[source_shard]
            if not exits:
                return False
            base = self._bases[source_shard]
            answers = self._shards[source_shard].batch(
                [("reach", source_id - base, exit_node - base)
                 for exit_node in exits])
            mask = 0
            for exit_node, reachable in zip(exits, answers):
                if reachable:
                    mask |= (closure.row_mask(exit_node)
                             | closure.bit(exit_node))
        if not mask:
            return False
        if target_id in boundary.incident:
            return bool(mask & closure.bit(target_id))
        candidate_mask = mask & closure.mask_of(
            boundary.entries[target_shard])
        if not candidate_mask:
            return False
        base = self._bases[target_shard]
        answers = self._shards[target_shard].batch(
            [("reach", entry - base, target_id - base)
             for entry in closure.nodes_in(candidate_mask)])
        return any(answers)

    def _reach_by_chaining(self, source_id: int, target_shard: int,
                           target_local: int,
                           already_checked: Set[int]) -> bool:
        """Batched boundary chaining: per-shard reach + boundary hops.

        Each BFS wave groups its frontier by owning shard and ships
        that shard's probes — exit reachability plus (in the target
        shard) the target probe — as **one** ``batch()`` call, the
        wire format socket-proxy shards forward in a single frame.
        """
        boundary = self._boundary
        seen: Set[int] = {source_id}
        frontier = [source_id]
        while frontier:
            by_shard: Dict[int, List[int]] = {}
            for node in frontier:
                by_shard.setdefault(self._owner(node), []).append(node)
            next_frontier: List[int] = []
            for shard in sorted(by_shard):
                base = self._bases[shard]
                exits = boundary.exits[shard]
                probes: List[Tuple[str, int, int]] = []
                outcomes: List[Tuple[int, Optional[int]]] = []
                for node in by_shard[shard]:
                    local = node - base
                    if (shard == target_shard
                            and node not in already_checked):
                        probes.append(("reach", local, target_local))
                        outcomes.append((node, None))
                    for exit_node in exits:
                        probes.append(("reach", local,
                                       exit_node - base))
                        outcomes.append((node, exit_node))
                if not probes:
                    continue
                answers = self._shards[shard].batch(probes)
                for (node, exit_node), reachable in zip(outcomes,
                                                        answers):
                    if not reachable:
                        continue
                    if exit_node is None:
                        return True
                    for entered in boundary.out[exit_node]:
                        if entered not in seen:
                            seen.add(entered)
                            next_frontier.append(entered)
            frontier = next_frontier
        return False

    def _reach_by_bfs(self, source_id: int, target_id: int) -> bool:
        """Plain BFS over the merged neighborhoods (dense boundary)."""
        seen: Set[int] = {source_id}
        frontier = deque([source_id])
        while frontier:
            node = frontier.popleft()
            if node == target_id:
                return True
            for succ in self.out_neighbors(node):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def reach(self, source_id: int, target_id: int) -> bool:
        """Alias of :meth:`reachable`."""
        return self.reachable(source_id, target_id)

    def connected_components(self) -> int:
        """Components of the full graph from per-shard counts.

        Per-shard grammar counts (the paper's one-pass CMSO function)
        are merged with the partition-time boundary summary: every
        within-shard connectivity class of boundary nodes is one
        component of the disjoint union, and a union-find over those
        classes under the boundary edges counts exactly how many
        merges the boundary performs.
        """
        with self._lock:
            if self._component_count is not None:
                return self._component_count
        shard_total = sum(shard.connected_components()
                          for shard in self._shards)
        roots: Dict[int, int] = {}
        for shard_blocks in self._boundary.blocks:
            for block in shard_blocks:
                anchor = block[0]
                for node in block:
                    roots[node] = anchor
        merge = UnionFind(set(roots.values()))
        before = merge.set_count
        for _, att in self._boundary.edges:
            anchor = roots[att[0]]
            for node in att[1:]:
                merge.union(anchor, roots[node])
        count = shard_total - (before - merge.set_count)
        with self._lock:
            self._component_count = count
        return count

    def components(self) -> int:
        """Alias of :meth:`connected_components`."""
        return self.connected_components()

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Union[int, Dict[str, int]]:
        """Degree information without decompressing.

        Same contract as :meth:`CompressedGraph.degree`: per-node
        counts are distinct neighbors (boundary edges merged in); the
        no-argument form returns the true multiplicity-counting
        extrema, precomputed over the whole input at partition time
        (boundary edges contribute to boundary nodes' degrees, so no
        single shard could answer this).
        """
        if node_id is None:
            if self._extrema is None:
                raise QueryError(self._degree_error
                                 or "degree extrema unavailable")
            return dict(self._extrema)
        if direction == "out":
            return len(self.out_neighbors(node_id))
        if direction == "in":
            return len(self.in_neighbors(node_id))
        if direction == "any":
            return len(self.neighbors(node_id))
        raise QueryError(f"unknown direction {direction!r}; "
                         "expected 'out', 'in' or 'any'")

    def degrees(self) -> Dict[str, int]:
        """The degree extrema dict (sharded form of the evaluator)."""
        result = self.degree()
        assert isinstance(result, dict)
        return result

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        """A shortest directed path as global node IDs, or ``None``."""
        from repro.queries.traversal import shortest_path
        return self._cache.get_or_compute(
            ("path", source_id, target_id),
            lambda: shortest_path(self, source_id, target_id))

    def node_count(self) -> int:
        """``|val|_V`` of the full graph (sum of shard counts)."""
        return self._total_nodes

    def edge_count(self) -> int:
        """Terminal edges of the full graph (shards + boundary)."""
        return (sum(shard.edge_count() for shard in self._shards)
                + self._boundary.edge_count)

    # ------------------------------------------------------------------
    # Regular path queries / pattern counts
    # ------------------------------------------------------------------
    def _label_name(self, label: int) -> Optional[str]:
        """The name of a terminal label, alphabet or proxy table."""
        if self._alphabet is not None:
            return self._alphabet.name(label)
        if self._label_table is not None:
            return self._label_table.get(label)
        return None

    def _boundary_out(self) -> Dict[int, List[Tuple[int, int]]]:
        """Labeled boundary out-adjacency (lazy, built once)."""
        table = self._boundary_out_edges
        if table is None:
            with self._lock:
                table = self._boundary_out_edges
                if table is None:
                    table = {}
                    for label, att in self._boundary.edges:
                        if len(att) == 2:
                            table.setdefault(att[0], []).append(
                                (label, att[1]))
                    self._boundary_out_edges = table
        return table

    def out_edges(self, node_id: int) -> List[List[int]]:
        """Labeled outgoing edges as sorted ``[label, target]`` pairs.

        The owning shard's labeled adjacency (shifted into global
        IDs) merged with the node's outgoing boundary edges — the
        sharded mirror of :meth:`CompressedGraph.out_edges`.
        """
        return self._cache.get_or_compute(
            ("out_edges", node_id),
            lambda: self._out_edges_uncached(node_id))

    def _out_edges_uncached(self, node_id: int) -> List[List[int]]:
        shard = self._owner(node_id)
        base = self._bases[shard]
        inner = self._shards[shard].batch(
            [("out_edges", node_id - base)])[0]
        merged = {(label, target + base) for label, target in inner}
        merged.update(self._boundary_out().get(node_id, ()))
        return [list(pair) for pair in sorted(merged)]

    def pattern_count(self, sub_kind: str, *args: Any) -> int:
        """Labeled pattern counts over the full graph.

        Per-shard grammar-pass counts plus exact boundary
        corrections: boundary edges contribute their own label counts,
        and for ``digram``/``star`` the mixed terms at boundary nodes
        are reconstructed from batched per-node labeled-degree probes
        (``node_in``/``node_out``) against the owning shards.
        """
        return self._cache.get_or_compute(
            ("pattern_count", sub_kind, *args),
            lambda: self._pattern_count_uncached(sub_kind, *args))

    def _pattern_count_uncached(self, sub_kind: str,
                                *args: Any) -> int:
        _validate_pattern_count(sub_kind, args)
        if not self._simple:
            raise QueryError(
                "pattern counts require a simple derived graph "
                "(rank-2 edges only); found a hyperedge")
        if sub_kind == "label":
            return (self._shard_count_sum("label", args[0])
                    + self._boundary_label_count(args[0]))
        if sub_kind in ("node_out", "node_in"):
            name, node = args
            shard = self._owner(node)
            inner = self._shards[shard].batch(
                [("pattern_count", sub_kind, name,
                  node - self._bases[shard])])[0]
            return inner + self._boundary_degree(name, node, sub_kind)
        if sub_kind == "star":
            return self._star_count(args[0], args[1])
        return self._digram_count(args[0], args[1])

    def _shard_count_sum(self, sub_kind: str, *args: Any) -> int:
        return sum(shard.batch([("pattern_count", sub_kind, *args)])[0]
                   for shard in self._shards)

    def _boundary_label_count(self, name: str) -> int:
        return sum(1 for label, att in self._boundary.edges
                   if len(att) == 2 and self._label_name(label) == name)

    def _boundary_degree(self, name: str, node: int,
                         direction: str) -> int:
        position = 0 if direction == "node_out" else 1
        return sum(1 for label, att in self._boundary.edges
                   if len(att) == 2 and att[position] == node
                   and self._label_name(label) == name)

    def _boundary_label_degrees(self, name: str
                                ) -> Tuple[Dict[int, int],
                                           Dict[int, int]]:
        """Boundary-edge out-/in-degrees of one label name, per node."""
        out: Dict[int, int] = {}
        into: Dict[int, int] = {}
        for label, att in self._boundary.edges:
            if len(att) == 2 and self._label_name(label) == name:
                out[att[0]] = out.get(att[0], 0) + 1
                into[att[1]] = into.get(att[1], 0) + 1
        return out, into

    def _shard_degree_probes(self, wanted: List[Tuple[str, str, int]]
                             ) -> List[int]:
        """Batched ``node_out``/``node_in`` probes, grouped per shard.

        ``wanted`` rows are ``(sub_kind, label name, global node)``;
        answers come back in row order, one shard ``batch()`` per
        owning shard.
        """
        by_shard: Dict[int, List[int]] = {}
        for row, (_, _, node) in enumerate(wanted):
            by_shard.setdefault(self._owner(node), []).append(row)
        answers: List[int] = [0] * len(wanted)
        for shard in sorted(by_shard):
            base = self._bases[shard]
            rows = by_shard[shard]
            batch = [("pattern_count", wanted[row][0], wanted[row][1],
                      wanted[row][2] - base) for row in rows]
            for row, answer in zip(rows,
                                   self._shards[shard].batch(batch)):
                answers[row] = answer
        return answers

    def _digram_count(self, first: str, second: str) -> int:
        total = self._shard_count_sum("digram", first, second)
        b_out, b_in = self._boundary_label_degrees(second)[0], \
            self._boundary_label_degrees(first)[1]
        affected = sorted(set(b_in) | set(b_out))
        if not affected:
            return total
        probes = [("node_in", first, node) for node in affected] + \
                 [("node_out", second, node) for node in affected]
        answers = self._shard_degree_probes(probes)
        half = len(affected)
        for position, node in enumerate(affected):
            shard_in = answers[position]
            shard_out = answers[half + position]
            boundary_in = b_in.get(node, 0)
            boundary_out = b_out.get(node, 0)
            total += ((shard_in + boundary_in)
                      * (shard_out + boundary_out)
                      - shard_in * shard_out)
        return total

    def _star_count(self, name: str, threshold: int) -> int:
        total = self._shard_count_sum("star", name, threshold)
        b_out = self._boundary_label_degrees(name)[0]
        affected = sorted(b_out)
        if not affected or threshold == 0:
            # With k == 0 every node already counts in its shard; the
            # boundary cannot push anyone over an absent threshold.
            return total
        answers = self._shard_degree_probes(
            [("node_out", name, node) for node in affected])
        for node, shard_out in zip(affected, answers):
            merged = shard_out + b_out[node]
            total += ((1 if merged >= threshold else 0)
                      - (1 if shard_out >= threshold else 0))
        return total

    def rpq(self, pattern: str, source: int, target: int,
            from_state: Optional[int] = None,
            to_state: Optional[int] = None) -> bool:
        """Does some ``source -> target`` path spell a word of ``pattern``?

        Same contract as :meth:`CompressedGraph.rpq`, evaluated across
        shards: the owning shard answers same-shard pairs directly;
        cross-shard pairs are planned per query by
        :meth:`repro.partition.ReachPlanner.rpq_strategy` over the
        per-pattern :class:`repro.partition.ProductClosure`, batched
        product chaining, or a product BFS over the merged labeled
        adjacency.
        """
        states: Tuple[Any, ...] = ()
        if to_state is not None:
            states = (from_state, to_state)
        elif from_state is not None:
            states = (from_state,)
        return self._cache.get_or_compute(
            ("rpq", _rpq_cache_key(pattern), source, target, *states),
            lambda: self._rpq_uncached(pattern, source, target,
                                       from_state, to_state))

    def _rpq_uncached(self, pattern: str, source: int, target: int,
                      from_state: Optional[int] = None,
                      to_state: Optional[int] = None) -> bool:
        if not self._simple:
            raise QueryError(
                "regular path queries require a simple derived graph; "
                "found a terminal hyperedge"
            )
        dfa = compile_pattern(pattern)
        start, accept = _resolve_states(dfa, from_state, to_state)
        source_shard = self._owner(source)
        target_shard = self._owner(target)
        if source == target and start in accept:
            return True
        # Probes ship the pattern text; every evaluator compiles it to
        # the same canonical DFA, so state numbers agree end to end.
        # ``(..., q)`` probes run q -> accepting, ``(..., q, q2)``
        # probes run q -> {q2}.
        accept_tail: Tuple[int, ...] = (
            () if to_state is None else (to_state,))
        if source_shard == target_shard:
            base = self._bases[source_shard]
            direct = self._shards[source_shard].batch(
                [("rpq", pattern, source - base, target - base,
                  start, *accept_tail)])[0]
            if direct:
                return True
        strategy = self._planner.rpq_strategy(
            source_shard, target_shard, dfa.num_states,
            closure_built=dfa.key in self._rpq_closures)
        if strategy == "local":
            return False  # no boundary route exists for this pair
        if strategy == "closure":
            return self._rpq_by_closure(pattern, dfa, source, target,
                                        start, accept, accept_tail,
                                        source_shard, target_shard)
        if strategy == "chaining":
            already = ({(source, start)}
                       if source_shard == target_shard else set())
            return self._rpq_by_chaining(pattern, dfa, source, target,
                                         start, accept, accept_tail,
                                         target_shard, already)
        return self._rpq_by_bfs(dfa, source, target, start, accept)

    def warm_rpq_closure(self, pattern: str) -> ProductClosure:
        """Force the product closure for one pattern (build at most
        once per canonical DFA; equivalent patterns share it).

        One ``batch()`` of state-to-state probes per shard covers
        every ordered (boundary node, state) pair, after which every
        cross-shard query of the pattern costs one in-shard batch per
        endpoint shard.  Persisted by :meth:`to_container` alongside
        the reach closure.
        """
        if not self._simple:
            raise QueryError(
                "the rpq boundary closure requires a simple derived "
                "graph; found a terminal hyperedge"
            )
        dfa = compile_pattern(pattern)
        with self._lock:
            entry = self._rpq_closures.get(dfa.key)
        if entry is None:
            product = ProductClosure.build(
                self._boundary, self._shards, self._bases, pattern,
                dfa.num_states,
                lambda state, label: dfa.step_name(
                    state, self._label_name(label)))
            with self._lock:
                entry = self._rpq_closures.setdefault(
                    dfa.key, (dfa, product))
        return entry[1]

    @property
    def rpq_closures_built(self) -> int:
        """Warmed product closures (one per canonical pattern DFA)."""
        return len(self._rpq_closures)

    @property
    def rpq_closures_persisted(self) -> bool:
        """Whether the current container carries an 'R' section."""
        return self._rpq_closures_persisted

    @property
    def rpq_info(self) -> Dict[str, int]:
        """Aggregate RPQ accounting over the shards plus closures."""
        info = {"skeleton_builds": 0, "cached_dfas": 0,
                "skeleton_entries": 0}
        for shard in self._shards:
            shard_info = getattr(shard, "rpq_info", None)
            if isinstance(shard_info, dict):
                for key in info:
                    info[key] += shard_info.get(key, 0)
        info["rpq_closures"] = len(self._rpq_closures)
        return info

    def _rpq_by_closure(self, pattern: str, dfa: PatternDFA,
                        source: int, target: int, start: int,
                        accept, accept_tail: Tuple[int, ...],
                        source_shard: int, target_shard: int) -> bool:
        """Closure route: one in-shard batch per endpoint shard.

        The product-closure mirror of reach's ``_reach_by_closure``:
        the reachable product-vertex mask of ``(source, start)``,
        intersected with the target shard's entry vertices, decides
        which entry probes to ship.
        """
        closure = self.warm_rpq_closure(pattern)
        boundary = self._boundary
        num_states = dfa.num_states
        if source in boundary.incident:
            mask = (closure.row_mask(source, start)
                    | closure.bit(source, start))
        else:
            exits = boundary.exits[source_shard]
            if not exits:
                return False
            base = self._bases[source_shard]
            probes = [(exit_node, state) for exit_node in exits
                      for state in range(num_states)]
            answers = self._shards[source_shard].batch(
                [("rpq", pattern, source - base, exit_node - base,
                  start, state) for exit_node, state in probes])
            mask = 0
            for (exit_node, state), matched in zip(probes, answers):
                if matched:
                    mask |= (closure.row_mask(exit_node, state)
                             | closure.bit(exit_node, state))
        if not mask:
            return False
        if target in boundary.incident:
            return any(mask & closure.bit(target, state)
                       for state in accept)
        entries = boundary.entries[target_shard]
        if not entries:
            return False
        candidate_mask = mask & closure.mask_of(
            (entry, state) for entry in entries
            for state in range(num_states))
        if not candidate_mask:
            return False
        base = self._bases[target_shard]
        answers = self._shards[target_shard].batch(
            [("rpq", pattern, entry - base, target - base, state,
              *accept_tail)
             for entry, state in closure.vertices_in(candidate_mask)])
        return any(answers)

    def _rpq_by_chaining(self, pattern: str, dfa: PatternDFA,
                         source: int, target: int, start: int,
                         accept, accept_tail: Tuple[int, ...],
                         target_shard: int,
                         checked: Set[Tuple[int, int]]) -> bool:
        """Batched product chaining: per-shard RPQ probes + DFA-stepped
        boundary hops, one ``batch()`` per (shard, wave)."""
        boundary = self._boundary
        boundary_out = self._boundary_out()
        num_states = dfa.num_states
        seen: Set[Tuple[int, int]] = {(source, start)}
        frontier: List[Tuple[int, int]] = [(source, start)]
        while frontier:
            by_shard: Dict[int, List[Tuple[int, int]]] = {}
            for vertex in frontier:
                by_shard.setdefault(self._owner(vertex[0]),
                                    []).append(vertex)
            next_frontier: List[Tuple[int, int]] = []
            for shard in sorted(by_shard):
                base = self._bases[shard]
                exits = boundary.exits[shard]
                hits: Set[Tuple[int, int]] = set()
                probes: List[Tuple[Any, ...]] = []
                probe_hits: List[Optional[Tuple[int, int]]] = []
                for node, state in by_shard[shard]:
                    local = node - base
                    if (shard == target_shard
                            and (node, state) not in checked):
                        checked.add((node, state))
                        probes.append(("rpq", pattern, local,
                                       target - base, state,
                                       *accept_tail))
                        probe_hits.append(None)
                    for exit_node in exits:
                        for next_state in range(num_states):
                            if exit_node == node and \
                                    next_state == state:
                                # The empty in-shard path: this
                                # frontier vertex is itself an exit.
                                hits.add((exit_node, next_state))
                                continue
                            probes.append(("rpq", pattern, local,
                                           exit_node - base, state,
                                           next_state))
                            probe_hits.append((exit_node, next_state))
                if probes:
                    answers = self._shards[shard].batch(probes)
                    for hit, matched in zip(probe_hits, answers):
                        if not matched:
                            continue
                        if hit is None:
                            return True
                        hits.add(hit)
                for exit_node, state in hits:
                    for label, entered in boundary_out.get(exit_node,
                                                           ()):
                        next_state = dfa.step_name(
                            state, self._label_name(label))
                        if next_state is None:
                            continue
                        if entered == target and next_state in accept:
                            return True
                        vertex = (entered, next_state)
                        if vertex not in seen:
                            seen.add(vertex)
                            next_frontier.append(vertex)
            frontier = next_frontier
        return False

    def _rpq_by_bfs(self, dfa: PatternDFA, source: int, target: int,
                    start: int, accept) -> bool:
        """Product BFS over the merged labeled adjacency (dense
        boundary); expansions go through the ``out_edges`` LRU."""
        seen: Set[Tuple[int, int]] = {(source, start)}
        queue = deque(seen)
        while queue:
            node, state = queue.popleft()
            for label, successor in self.out_edges(node):
                next_state = dfa.step_name(state,
                                           self._label_name(label))
                if next_state is None:
                    continue
                if successor == target and next_state in accept:
                    return True
                vertex = (successor, next_state)
                if vertex not in seen:
                    seen.add(vertex)
                    queue.append(vertex)
        return False

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def batch(self, requests: Iterable[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None,
              executor: Optional[Executor] = None) -> List[Any]:
        """Evaluate many queries; results come back in request order.

        Same wire format as :meth:`CompressedGraph.batch`.  The
        sequential path routes request by request.  ``parallel=True``
        plans the batch: it deduplicates repeated requests,
        pre-filters the handle's result LRU (hot requests never reach
        a shard), groups every remaining shard-local request per
        owning shard — each group is shipped through that shard
        handle's own ``batch()`` and translated back in one pass —
        and fans the groups plus the remaining cross-shard requests
        out across a thread pool, bulk-inserting the answers back
        into the LRU.  ``executor`` overrides the strategy entirely;
        the typed :meth:`execute` surface is the one with per-request
        errors.
        """
        if executor is None:
            executor = (ThreadExecutor(max_workers) if parallel
                        else InlineExecutor())
        results = executor.run(self, list(requests), strict=True)
        return [result.unwrap() for result in results]

    def _uncached_query(self, kind: QueryKind,
                        args: Tuple[Any, ...]) -> Any:
        """One typed request, bypassing the result LRU (see
        :meth:`CompressedGraph._uncached_query`)."""
        if kind is QueryKind.OUT:
            if len(args) != 1:
                raise TypeError(f"out() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "out")
        if kind is QueryKind.IN:
            if len(args) != 1:
                raise TypeError(f"in() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "in")
        if kind is QueryKind.NEIGHBORHOOD:
            if len(args) != 1:
                raise TypeError(f"neighborhood() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "any")
        if kind is QueryKind.REACH:
            return self._reach_uncached(*args)
        if kind is QueryKind.PATH:
            from repro.queries.traversal import shortest_path
            return shortest_path(self, *args)
        if kind is QueryKind.RPQ:
            return self._rpq_uncached(*args)
        if kind is QueryKind.PATTERN_COUNT:
            return self._pattern_count_uncached(*args)
        if kind is QueryKind.OUT_EDGES:
            if len(args) != 1:
                raise TypeError(f"out_edges() takes 1 argument "
                                f"({len(args)} given)")
            return self._out_edges_uncached(args[0])
        from repro.serving.protocol import KIND_METHODS
        return getattr(self, KIND_METHODS[kind])(*args)

    def warm(self) -> "ShardedCompressedGraph":
        """Force every shard's lazy structures (see
        :meth:`CompressedGraph.warm`); degree extrema and the
        component merge are already partition-time artifacts.  The
        boundary closure is built too whenever the planner's budget
        admits it, so serving starts with the cheap reach regime."""
        for shard in self._shards:
            warm = getattr(shard, "warm", None)
            if warm is not None:
                warm()
        self.connected_components()
        self.edge_count()
        if (self._simple and not self.closure_built
                and self._planner.closure_allowed):
            self.warm_closure()
        return self

    # Kinds a shard can answer alone for a non-boundary node, and the
    # local batch kind each translates to.
    _LOCAL_KINDS = {
        QueryKind.OUT: "out",
        QueryKind.IN: "in",
        QueryKind.NEIGHBORHOOD: "neighborhood",
        QueryKind.DEGREE: "degree",
        QueryKind.OUT_EDGES: "out_edges",
    }
    #: Answers that are lists of local node IDs (need the +base shift).
    _OFFSET_RESULTS = {"out", "in", "neighborhood"}

    def _route_local(self, kind: QueryKind, args: Tuple[Any, ...]
                     ) -> Optional[Tuple[int, Tuple[Any, ...], str]]:
        """``(shard, local_request, local_kind)`` when one shard can
        answer exactly, else ``None``."""
        local_kind = self._LOCAL_KINDS.get(kind)
        if local_kind is not None:
            if not args or not isinstance(args[0], int):
                return None
            node = args[0]
            if not 1 <= node <= self._total_nodes:
                return None  # let the general path raise QueryError
            if node in self._boundary.incident:
                return None
            shard = self._owner(node)
            local = self._local(node, shard)
            return shard, (local_kind, local, *args[1:]), local_kind
        if kind is QueryKind.REACH and len(args) == 2 \
                and all(isinstance(arg, int) for arg in args):
            source, target = args
            if not (1 <= source <= self._total_nodes
                    and 1 <= target <= self._total_nodes):
                return None
            shard = self._owner(source)
            # A shard that no boundary edge touches can never be left
            # or re-entered, so its local answer is the global one.
            if (shard == self._owner(target)
                    and shard not in self._boundary.touched):
                return (shard,
                        ("reach", self._local(source, shard),
                         self._local(target, shard)),
                        "reach")
        if kind is QueryKind.RPQ and len(args) == 3 \
                and isinstance(args[0], str) \
                and all(isinstance(arg, int) for arg in args[1:]):
            pattern, source, target = args
            if not (1 <= source <= self._total_nodes
                    and 1 <= target <= self._total_nodes):
                return None
            shard = self._owner(source)
            # An untouched shard is never left or re-entered, so the
            # in-shard RPQ answer is the global one.
            if (shard == self._owner(target)
                    and shard not in self._boundary.touched):
                return (shard,
                        ("rpq", pattern, self._local(source, shard),
                         self._local(target, shard)),
                        "rpq")
        return None

    def _fanout_jobs(self, jobs: List[QueryRequest],
                     emit: Callable[[int, QueryResult], None],
                     max_workers: Optional[int]) -> None:
        """The sharded planned path, executor-shaped.

        Called by :class:`repro.serving.ThreadExecutor` with the
        already deduplicated, cache-filtered jobs.  Classifies them —
        shard-routable (shipped through the owning shard's own
        ``batch()``, the wire format), batchable reach (answered from
        per-source BFS closures with batch-scoped memoization),
        everything else (chunked across threads) — and fans the
        groups out across a thread pool.
        """
        from concurrent.futures import ThreadPoolExecutor

        shard_groups: Dict[int, List[Tuple[QueryRequest,
                                           Tuple[Any, ...], str]]] = {}
        reach_pairs: List[Tuple[int, int, int]] = []
        general: List[QueryRequest] = []
        for request in jobs:
            routed = self._route_local(request.kind, request.args)
            if routed is not None:
                shard, local_request, local_kind = routed
                shard_groups.setdefault(shard, []).append(
                    (request, local_request, local_kind))
                continue
            args = request.args
            if (request.kind is QueryKind.REACH and self._simple
                    and len(args) == 2
                    and all(isinstance(arg, int)
                            and 1 <= arg <= self._total_nodes
                            for arg in args)):
                # Only the dense-boundary regime benefits from the
                # per-source BFS memoization below; closure/chaining
                # plans already batch their shard probes, so they run
                # through the planner like single-shot calls do.
                strategy = self._planner.strategy(
                    self._owner(args[0]), self._owner(args[1]),
                    closure_built=self.closure_built)
                if strategy == "bfs":
                    reach_pairs.append((request.id, args[0], args[1]))
                    continue
            general.append(request)

        def run_group(shard: int,
                      items: List[Tuple[QueryRequest, Tuple[Any, ...],
                                        str]]) -> None:
            base = self._bases[shard]
            try:
                answers = self._shards[shard].batch(
                    [local for _, local, _ in items])
            except QueryError:
                # A malformed routed request (e.g. a bad degree
                # direction) poisons the grouped call; answer the
                # group request by request so the error stays
                # per-request.
                for request, _, _ in items:
                    emit(request.id, evaluate_request(self, request,
                                                      uncached=True))
                return
            for (request, _, local_kind), answer in zip(items, answers):
                if local_kind in self._OFFSET_RESULTS:
                    answer = [node + base for node in answer]
                elif local_kind == "out_edges":
                    answer = [[label, target + base]
                              for label, target in answer]
                emit(request.id, QueryResult(id=request.id,
                                             value=answer))

        def run_general(chunk: List[QueryRequest]) -> None:
            for request in chunk:
                emit(request.id, evaluate_request(self, request,
                                                  uncached=True))

        def run_reach(pairs: List[Tuple[int, int, int]]) -> None:
            """All reach answers from per-source BFS closures.

            One traversal per distinct source answers every target
            asked of that source, and the neighborhood expansions are
            memoized across the whole batch — the planned path's main
            advantage over request-at-a-time evaluation.
            """
            adjacency: Dict[int, List[int]] = {}

            def successors(node: int) -> List[int]:
                known = adjacency.get(node)
                if known is None:
                    known = adjacency[node] = self.out_neighbors(node)
                return known

            by_source: Dict[int, List[Tuple[int, int]]] = {}
            for position, source, target in pairs:
                by_source.setdefault(source, []).append(
                    (position, target))
            for source, wanted in by_source.items():
                targets = {target for _, target in wanted}
                seen = {source}
                missing = set(targets) - seen
                frontier = deque([source])
                while frontier and missing:
                    node = frontier.popleft()
                    for succ in successors(node):
                        if succ not in seen:
                            seen.add(succ)
                            missing.discard(succ)
                            frontier.append(succ)
                for position, target in wanted:
                    emit(position, QueryResult(id=position,
                                               value=target in seen))

        tasks: List[Callable[[], None]] = []
        for shard, items in sorted(shard_groups.items()):
            tasks.append(lambda shard=shard, items=items:
                         run_group(shard, items))
        if reach_pairs:
            tasks.append(lambda: run_reach(reach_pairs))
        if general:
            # Bundle the leftovers: one pool task per chunk, not per
            # request (thread dispatch would dwarf small queries).
            splits = min(len(general), max(1, (max_workers or 4)))
            for index in range(splits):
                chunk = general[index::splits]
                tasks.append(lambda chunk=chunk: run_general(chunk))

        workers = max_workers or min(8, max(len(tasks), 1))
        if workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                task()
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for _ in pool.map(lambda task: task(), tasks):
                    pass

    def __repr__(self) -> str:
        built = "built" if self.index_built else "lazy"
        return (f"ShardedCompressedGraph(shards={len(self._shards)}, "
                f"nodes={self._total_nodes}, "
                f"boundary={self._boundary.edge_count}, index={built})")


# ----------------------------------------------------------------------
# RPQ product-closure trailer codec (the "GRPS" 'R' section)
# ----------------------------------------------------------------------
def _encode_rpq_closures(entries: Sequence[Tuple[PatternDFA,
                                                 ProductClosure]]
                         ) -> bytes:
    """``count`` + per entry the canonical DFA and its closure, each
    length-prefixed.  Entries arrive sorted by DFA bytes, so the
    section is deterministic for a given set of warmed patterns."""
    out = bytearray()
    write_uvarint(out, len(entries))
    for dfa, product in entries:
        dfa_bytes = dfa.to_bytes()
        write_uvarint(out, len(dfa_bytes))
        out.extend(dfa_bytes)
        closure_bytes = product.to_bytes()
        write_uvarint(out, len(closure_bytes))
        out.extend(closure_bytes)
    return bytes(out)


def _decode_rpq_closures(data: bytes
                         ) -> List[Tuple[PatternDFA, ProductClosure]]:
    try:
        count, pos = read_uvarint(data, 0)
        entries: List[Tuple[PatternDFA, ProductClosure]] = []
        for _ in range(count):
            dfa_len, pos = read_uvarint(data, pos)
            if pos + dfa_len > len(data):
                raise EncodingError("truncated rpq closure DFA")
            dfa = PatternDFA.from_bytes(data[pos:pos + dfa_len])
            pos += dfa_len
            closure_len, pos = read_uvarint(data, pos)
            if pos + closure_len > len(data):
                raise EncodingError("truncated rpq closure rows")
            product = ProductClosure.from_bytes(
                data[pos:pos + closure_len])
            pos += closure_len
            entries.append((dfa, product))
    except (IndexError, ValueError) as exc:
        raise EncodingError(
            f"corrupt rpq closure section: {exc}") from None
    if pos != len(data):
        raise EncodingError(
            f"{len(data) - pos} trailing bytes in rpq closure section")
    return entries


# ----------------------------------------------------------------------
# Meta section codec (the routing summary inside the "GRPS" container)
# ----------------------------------------------------------------------
def _encode_meta(shard_nodes: List[int],
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 simple: bool,
                 partitioner: str) -> bytes:
    out = bytearray()
    write_uvarint(out, _META_VERSION)
    name = partitioner.encode("utf-8")
    write_uvarint(out, len(name))
    out.extend(name)
    out.append(1 if simple else 0)
    write_uvarint(out, len(shard_nodes))
    for count in shard_nodes:
        write_uvarint(out, count)
    if extrema is not None:
        out.append(1)
        for field in ("max_out", "min_out", "max_in", "min_in",
                      "max", "min"):
            write_uvarint(out, extrema[field])
    else:
        out.append(0)
        message = (degree_error or "").encode("utf-8")
        write_uvarint(out, len(message))
        out.extend(message)
    write_uvarint(out, len(boundary_edges))
    for label, att in boundary_edges:
        write_uvarint(out, label)
        write_uvarint(out, len(att))
        for node in att:
            write_uvarint(out, node)
    write_uvarint(out, len(blocks))
    for shard_blocks in blocks:
        write_uvarint(out, len(shard_blocks))
        for block in shard_blocks:
            write_uvarint(out, len(block))
            for node in block:
                write_uvarint(out, node)
    return bytes(out)


def _decode_meta(data: bytes, num_shards: int):
    try:
        pos = 0
        version, pos = read_uvarint(data, pos)
        if version != _META_VERSION:
            raise EncodingError(
                f"unsupported sharded meta version {version}")
        name_len, pos = read_uvarint(data, pos)
        partitioner = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        simple = bool(data[pos])
        pos += 1
        count, pos = read_uvarint(data, pos)
        shard_nodes: List[int] = []
        for _ in range(count):
            nodes, pos = read_uvarint(data, pos)
            shard_nodes.append(nodes)
        extrema: Optional[Dict[str, int]] = None
        degree_error: Optional[str] = None
        flag = data[pos]
        pos += 1
        if flag:
            values = []
            for _ in range(6):
                value, pos = read_uvarint(data, pos)
                values.append(value)
            extrema = dict(zip(("max_out", "min_out", "max_in",
                                "min_in", "max", "min"), values))
        else:
            msg_len, pos = read_uvarint(data, pos)
            degree_error = (data[pos:pos + msg_len].decode("utf-8")
                            or None)
            pos += msg_len
        edge_count, pos = read_uvarint(data, pos)
        boundary_edges: List[Tuple[int, Tuple[int, ...]]] = []
        for _ in range(edge_count):
            label, pos = read_uvarint(data, pos)
            rank, pos = read_uvarint(data, pos)
            att = []
            for _ in range(rank):
                node, pos = read_uvarint(data, pos)
                att.append(node)
            boundary_edges.append((label, tuple(att)))
        block_shards, pos = read_uvarint(data, pos)
        if block_shards != num_shards:
            raise EncodingError(
                f"meta blocks cover {block_shards} shards, expected "
                f"{num_shards}"
            )
        blocks: List[List[Tuple[int, ...]]] = []
        for _ in range(block_shards):
            shard_count, pos = read_uvarint(data, pos)
            shard_blocks = []
            for _ in range(shard_count):
                size, pos = read_uvarint(data, pos)
                block = []
                for _ in range(size):
                    node, pos = read_uvarint(data, pos)
                    block.append(node)
                shard_blocks.append(tuple(block))
            blocks.append(shard_blocks)
        if pos != len(data):
            raise EncodingError(
                f"{len(data) - pos} trailing bytes in sharded meta")
    except (IndexError, ValueError) as exc:
        raise EncodingError(f"corrupt sharded meta: {exc}") from None
    return (shard_nodes, boundary_edges, blocks, extrema, degree_error,
            simple, partitioner)


# ----------------------------------------------------------------------
# Container dispatch
# ----------------------------------------------------------------------
def open_compressed(path: Union[str, Path],
                    cache_size: int = DEFAULT_CACHE_SIZE
                    ) -> Union[CompressedGraph, ShardedCompressedGraph]:
    """Open a container of either kind, dispatching on its magic.

    "GRPS" files yield a :class:`ShardedCompressedGraph`, "GRPR" files
    a :class:`CompressedGraph`; both expose the same query surface, so
    callers (the CLI among them) need not care which they got.  The
    file is memory-mapped, not read eagerly.
    """
    data = map_file(path)
    if is_sharded_container(data):
        return ShardedCompressedGraph.from_bytes(data,
                                                 cache_size=cache_size)
    return CompressedGraph.from_bytes(data, cache_size=cache_size)
