"""Partitioned serving: :class:`ShardedCompressedGraph`.

One grammar per graph stops scaling when the graph outgrows a single
compression run (or a single machine's build budget).  This module
keeps the :class:`repro.api.CompressedGraph` serving interface but
spreads the graph over ``k`` independent per-shard grammars:

* **partition** — a pluggable partitioner assigns every node to a
  shard (:func:`hash_partition` by default; ``"connectivity"`` keeps
  whole connected components together, which eliminates boundary
  edges whenever the graph has enough components).
* **pin the boundary** — edges whose attachment spans two shards
  cannot live inside any shard grammar; they are kept verbatim in a
  *boundary summary*.  Their endpoints are marked **external** in the
  shard subgraphs before compression: gRePair never folds an external
  node into a rule (see :func:`repro.core.digram.occurrence_key`), so
  every boundary node provably survives in its shard's start graph
  with its original ID.  That survival is what makes boundary
  structures translatable into the canonical per-shard query numbering
  — the one piece of node identity compression otherwise erases.
* **compress shards independently** — optionally fanned out over a
  thread pool (``parallel="thread"``) or forked worker processes
  (``parallel="process"``, one compression per core — gRePair is pure
  Python, so only processes sidestep the GIL); each shard becomes a
  full ``CompressedGraph`` handle.
* **serve** — the global ID space is shard-major: shard ``i`` owns the
  contiguous ID block ``base_i + 1 .. base_i + n_i`` where the local
  IDs are the shard's own canonical ``val`` numbering.  Per-node
  queries (``out`` / ``in_`` / ``neighborhood`` / ``degree``) route to
  the owning shard and merge that node's boundary edges; ``reach``
  chains per-shard reachability through boundary hops; ``components``
  combines per-shard counts with a union-find over the boundary
  summary built at partition time; ``path`` runs BFS over the merged
  neighborhoods.  A differential suite asserts every answer equals the
  unsharded handle's.
* **persist** — :meth:`save` / :meth:`open` use the multi-shard
  container framing of :mod:`repro.encoding.container` ("GRPS"): one
  routing-summary meta section plus one complete "GRPR" container per
  shard, with the existing per-section size accounting kept per shard.
* **cache + batch** — the same per-handle query-result LRU as the
  unsharded facade, and ``batch(..., parallel=True)`` plans a batch
  (via :func:`repro.serving.plan_batch`): deduplicates it,
  pre-filters the LRU, groups shard-local requests per shard (each
  group ships through the shard handle's own ``batch()`` — the wire
  format), and fans the groups out across threads.  The handle is a
  :class:`repro.serving.GraphService`, so the typed ``execute()``
  surface, every executor, and :func:`repro.serving.serve` (one
  socket-served process per shard behind a router, with
  :class:`repro.serving.router.RemoteShard` proxies standing in for
  the local shard handles) all apply unchanged.

:func:`open_compressed` dispatches on the container magic and returns
whichever handle type a file holds.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph
from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.pipeline import GRePairSettings
from repro.encoding.container import (
    ShardedFile,
    decode_sharded_container,
    encode_sharded_container,
    is_sharded_container,
    sharded_container_sections,
)
from repro.exceptions import EncodingError, GrammarError, QueryError
from repro.queries.cache import QueryCache
from repro.serving.executors import (
    Executor,
    InlineExecutor,
    ThreadExecutor,
    evaluate_request,
    fork_map,
)
from repro.serving.protocol import (
    GraphService,
    QueryKind,
    QueryRequest,
    QueryResult,
)
from repro.util.unionfind import UnionFind
from repro.util.varint import read_uvarint, write_uvarint

__all__ = [
    "PARTITIONERS",
    "ShardedCompressedGraph",
    "connectivity_partition",
    "hash_partition",
    "open_compressed",
]

_META_VERSION = 1
#: Knuth's multiplicative constant — a stable spread for consecutive
#: node IDs, independent of PYTHONHASHSEED.
_HASH_MIX = 2654435761


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
def hash_partition(graph: Hypergraph, shards: int) -> Dict[int, int]:
    """Assign each node by a stable multiplicative hash of its ID.

    The default partitioner: balanced, stateless and deterministic
    across processes (no reliance on ``hash()``), at the price of
    cutting edges indiscriminately.
    """
    return {node: ((node * _HASH_MIX) & 0xFFFFFFFF) % shards
            for node in graph.nodes()}


def connectivity_partition(graph: Hypergraph, shards: int
                           ) -> Dict[int, int]:
    """Keep connected components together; bin-pack them onto shards.

    Components (undirected, any edge rank) are sorted largest first
    and greedily placed on the currently lightest shard, so a graph
    with at least ``shards`` components yields **zero** boundary
    edges.  A component larger than the ideal shard is kept whole —
    splitting it would manufacture boundary edges, which is exactly
    what this partitioner exists to avoid.
    """
    components = UnionFind(graph.nodes())
    for _, edge in graph.edges():
        anchor = edge.att[0]
        for node in edge.att[1:]:
            components.union(anchor, node)
    members: Dict[int, List[int]] = {}
    for node in graph.nodes():
        members.setdefault(components.find(node), []).append(node)
    loads = [0] * shards
    assign: Dict[int, int] = {}
    ordered = sorted(members.values(),
                     key=lambda nodes: (-len(nodes), min(nodes)))
    for nodes in ordered:
        target = loads.index(min(loads))
        loads[target] += len(nodes)
        for node in nodes:
            assign[node] = target
    return assign


#: name -> partitioner; the CLI and :meth:`ShardedCompressedGraph.compress`
#: accept either a name from here or any callable with this signature.
PARTITIONERS: Dict[str, Callable[[Hypergraph, int], Dict[int, int]]] = {
    "hash": hash_partition,
    "connectivity": connectivity_partition,
}


# ----------------------------------------------------------------------
# Partition plan (original-ID space; consumed by the build)
# ----------------------------------------------------------------------
class _PartitionPlan:
    """Everything the build needs, still in input-graph node IDs."""

    __slots__ = ("shards", "assign", "subgraphs", "boundary_edges",
                 "boundary_nodes", "blocks", "extrema", "degree_error",
                 "simple")

    def __init__(self, shards: int, assign: Dict[int, int],
                 subgraphs: List[Hypergraph],
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 boundary_nodes: List[List[int]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 simple: bool) -> None:
        self.shards = shards
        self.assign = assign
        self.subgraphs = subgraphs
        self.boundary_edges = boundary_edges
        self.boundary_nodes = boundary_nodes
        self.blocks = blocks
        self.extrema = extrema
        self.degree_error = degree_error
        self.simple = simple


def _degree_extrema(graph: Hypergraph
                    ) -> Tuple[Optional[Dict[str, int]], Optional[str]]:
    """True degree extrema of the input, matching ``DegreeQueries``.

    Computed in one pass at partition time; the per-shard grammars
    cannot answer this alone because boundary edges contribute to
    boundary nodes' degrees.  Mirrors
    :class:`repro.queries.degrees.DegreeQueries` exactly: rank-2
    multiplicity counting, and the same errors for hyperedges and
    empty graphs (raised lazily from :meth:`ShardedCompressedGraph.degree`).
    """
    if graph.node_size == 0:
        return None, "degree extrema undefined: empty graph"
    out: Dict[int, int] = {node: 0 for node in graph.nodes()}
    into: Dict[int, int] = {node: 0 for node in graph.nodes()}
    for _, edge in graph.edges():
        if len(edge.att) != 2:
            return None, (
                "degree queries require a simple derived graph; found "
                f"a terminal edge of rank {len(edge.att)}"
            )
        out[edge.att[0]] += 1
        into[edge.att[1]] += 1
    totals = {node: out[node] + into[node] for node in out}
    return {
        "max_out": max(out.values()),
        "min_out": min(out.values()),
        "max_in": max(into.values()),
        "min_in": min(into.values()),
        "max": max(totals.values()),
        "min": min(totals.values()),
    }, None


def _partition(graph: Hypergraph, assign: Dict[int, int],
               shards: int) -> _PartitionPlan:
    """Split ``graph`` into shard subgraphs + the boundary summary."""
    subgraphs = [Hypergraph() for _ in range(shards)]
    for node in sorted(graph.nodes()):
        subgraphs[assign[node]].add_node(node)
    boundary_edges: List[Tuple[int, Tuple[int, ...]]] = []
    boundary_sets: List[Set[int]] = [set() for _ in range(shards)]
    intra_unions: List[UnionFind] = [UnionFind(g.nodes())
                                     for g in subgraphs]
    for _, edge in graph.edges():
        owners = {assign[node] for node in edge.att}
        if len(owners) == 1:
            owner = next(iter(owners))
            subgraphs[owner].add_edge(edge.label, edge.att)
            anchor = edge.att[0]
            for node in edge.att[1:]:
                intra_unions[owner].union(anchor, node)
        else:
            boundary_edges.append((edge.label, edge.att))
            for node in edge.att:
                boundary_sets[assign[node]].add(node)
    boundary_nodes = [sorted(nodes) for nodes in boundary_sets]
    # Pin the boundary: external nodes are never folded into rules, so
    # these nodes keep their IDs in the shard start graphs.
    for subgraph, pinned in zip(subgraphs, boundary_nodes):
        subgraph.set_external(pinned)
    # Within-shard connectivity classes of the boundary nodes — the
    # partition-time summary that lets components() merge shard counts
    # without ever decompressing.
    blocks: List[List[Tuple[int, ...]]] = []
    for shard, pinned in enumerate(boundary_nodes):
        by_root: Dict[int, List[int]] = {}
        for node in pinned:
            by_root.setdefault(intra_unions[shard].find(node),
                               []).append(node)
        blocks.append([tuple(group) for group in
                       sorted(by_root.values())])
    extrema, degree_error = _degree_extrema(graph)
    simple = all(len(edge.att) == 2 for _, edge in graph.edges())
    return _PartitionPlan(shards, assign, subgraphs, boundary_edges,
                          boundary_nodes, blocks, extrema, degree_error,
                          simple)


def _terminal_order(alphabet: Alphabet) -> Dict[int, int]:
    """Label -> 1-based terminal position (the compact container ID).

    ``encode_grammar`` compacts every shard alphabet the same way —
    terminals first, in iteration order — so this single mapping
    translates boundary-edge labels into the ID space every *loaded*
    shard grammar uses.
    """
    return {label: position for position, label in
            enumerate(alphabet.terminals(), start=1)}


def _compress_shard(subgraph: Hypergraph, alphabet: Alphabet,
                    settings: GRePairSettings, validate: bool,
                    cache_size: int) -> CompressedGraph:
    """Compress one pinned shard subgraph into its own handle.

    The pin (the subgraph's ``ext`` sequence) only exists to steer the
    compressor; it is stripped from the resulting start graph before
    the handle is created, restoring an ordinary rank-0 grammar.
    """
    if subgraph.num_edges == 0:
        # gRePair has nothing to do; wrap the trivial grammar directly
        # (also covers shards that received no nodes at all).  Original
        # node IDs are kept so the boundary locator works unchanged.
        start = Hypergraph()
        for node in sorted(subgraph.nodes()):
            start.add_node(node)
        return CompressedGraph.from_grammar(
            SLHRGrammar(alphabet.copy(), start), cache_size=cache_size)
    handle = CompressedGraph.compress(subgraph, alphabet, settings,
                                      validate=validate,
                                      cache_size=cache_size)
    handle.grammar.start.set_external(())
    return handle


# ----------------------------------------------------------------------
# The sharded serving handle
# ----------------------------------------------------------------------
class ShardedCompressedGraph(GraphService):
    """k per-shard grammars behind one ``CompressedGraph``-shaped API.

    Construct through :meth:`compress`, :meth:`open` or
    :meth:`from_bytes`.  Global node IDs are shard-major: shard ``i``
    owns ``bases[i] + 1 .. bases[i] + n_i``, local IDs being the
    shard's canonical ``val`` numbering (the same numbering an
    unsharded handle would use for that shard alone).  The handle is
    immutable after construction and safe to share between threads;
    every per-shard index builds lazily, at most once.
    """

    _BATCH_KINDS = CompressedGraph._BATCH_KINDS

    def __init__(self, shards: List[CompressedGraph],
                 alphabet: Alphabet,
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 shard_nodes: List[int],
                 simple: bool = True,
                 partitioner: str = "hash",
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 container: Optional[ShardedFile] = None,
                 container_key: Optional[Tuple[bool, int]] = None
                 ) -> None:
        """Internal: boundary structures must already be in global IDs.

        Use the classmethod constructors.
        """
        self._shards = shards
        self._alphabet = alphabet
        self._boundary_edges = boundary_edges
        self._blocks = blocks
        self._extrema = extrema
        self._degree_error = degree_error
        self._partitioner = partitioner
        self._cache = QueryCache(cache_size)
        self._lock = threading.RLock()
        self._container = container
        self._container_key = container_key
        self._bases: List[int] = []
        base = 0
        for count in shard_nodes:
            self._bases.append(base)
            base += count
        self._total_nodes = base
        self._shard_nodes = list(shard_nodes)
        self._component_count: Optional[int] = None
        #: True iff every edge of the full graph has rank 2; mirrors
        #: the unsharded handle, whose reach raises on any hyperedge.
        self._simple = simple
        # Merged-neighborhood summaries of the boundary, global IDs.
        b_out: Dict[int, Set[int]] = {}
        b_in: Dict[int, Set[int]] = {}
        b_any: Dict[int, Set[int]] = {}
        for label, att in boundary_edges:
            if len(att) == 2:
                source, target = att
                b_out.setdefault(source, set()).add(target)
                b_in.setdefault(target, set()).add(source)
            for node in att:
                others = b_any.setdefault(node, set())
                others.update(other for other in att if other != node)
        self._b_out = {node: sorted(v) for node, v in b_out.items()}
        self._b_in = {node: sorted(v) for node, v in b_in.items()}
        self._b_any = {node: sorted(v) for node, v in b_any.items()}
        #: Global IDs of every node incident with a boundary edge.
        self._boundary_incident: Set[int] = set(b_any)
        #: Shards at least one boundary edge touches; only these can be
        #: left or re-entered, so reach inside any other shard is local.
        self._boundary_shards: Set[int] = {
            self._owner(node) for node in self._boundary_incident}
        # Outgoing boundary "exits" per shard, for cross-shard reach.
        exits: List[List[int]] = [[] for _ in shards]
        for node in sorted(self._b_out):
            exits[self._owner(node)].append(node)
        self._exits = exits
        self._total_exits = sum(len(shard_exits)
                                for shard_exits in exits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def compress(cls, graph: Hypergraph, alphabet: Alphabet,
                 settings: Optional[GRePairSettings] = None,
                 shards: int = 4,
                 partitioner: Union[str, Callable[[Hypergraph, int],
                                                  Dict[int, int]]] = "hash",
                 parallel: Union[bool, str] = False,
                 max_workers: Optional[int] = None,
                 validate: bool = True,
                 cache_size: int = DEFAULT_CACHE_SIZE
                 ) -> "ShardedCompressedGraph":
        """Partition ``graph``, compress every shard, build the handle.

        ``partitioner`` is a name from :data:`PARTITIONERS` or any
        ``(graph, shards) -> {node: shard}`` callable covering every
        node with values in ``range(shards)``.  The per-shard
        compressions are independent by construction; ``parallel``
        picks where they run: ``False`` sequentially, ``True`` or
        ``"thread"`` on a thread pool, ``"process"`` on **forked
        worker processes** (one compression per core — the thread
        pool is GIL-bound, so CPU-heavy builds only scale this way;
        each worker ships its finished grammar back to the parent).
        """
        if shards < 1:
            raise GrammarError(f"shards must be >= 1, got {shards}")
        if settings is None:
            settings = GRePairSettings()
        if callable(partitioner):
            partition_fn = partitioner
            partitioner_name = getattr(partitioner, "__name__", "custom")
        else:
            partition_fn = PARTITIONERS.get(partitioner)
            if partition_fn is None:
                raise GrammarError(
                    f"unknown partitioner {partitioner!r}; expected one "
                    f"of {sorted(PARTITIONERS)} or a callable"
                )
            partitioner_name = partitioner
        assign = partition_fn(graph, shards)
        missing = [node for node in graph.nodes() if node not in assign]
        if missing:
            raise GrammarError(
                f"partitioner left {len(missing)} nodes unassigned "
                f"(first: {missing[:3]})"
            )
        bad = {shard for shard in assign.values()
               if not 0 <= shard < shards}
        if bad:
            raise GrammarError(
                f"partitioner produced out-of-range shards {sorted(bad)}")
        plan = _partition(graph, assign, shards)

        def build(index: int) -> CompressedGraph:
            return _compress_shard(plan.subgraphs[index], alphabet,
                                   settings, validate, cache_size)

        mode = {False: None, True: "thread"}.get(parallel, parallel)
        if mode not in (None, "thread", "process"):
            raise GrammarError(
                f"unknown parallel mode {parallel!r}; expected False, "
                "True, 'thread' or 'process'"
            )
        if mode == "process" and shards > 1:
            # Fork workers: each compresses its shards and ships the
            # finished grammar (+ result metadata) back over a pipe;
            # locks and handles never cross the process boundary.
            def build_payload(index: int):
                handle = build(index)
                return handle._grammar, handle.result

            payloads = fork_map(
                [lambda index=index: build_payload(index)
                 for index in range(shards)],
                max_workers=max_workers)
            handles = [CompressedGraph(grammar, result=result,
                                       cache_size=cache_size)
                       for grammar, result in payloads]
        elif mode == "thread" and shards > 1:
            from concurrent.futures import ThreadPoolExecutor
            workers = max_workers or min(8, shards)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                handles = list(pool.map(build, range(shards)))
        else:
            handles = [build(index) for index in range(shards)]

        # Translate the boundary summary into the shard-major global ID
        # space.  Boundary nodes survive in the shard start graphs (the
        # pin guarantees it), and canonicalization numbers start nodes
        # 1..m in ascending original-ID order — so a boundary node's
        # local ID is its rank among the surviving start nodes.
        locators: List[Dict[int, int]] = []
        shard_nodes: List[int] = []
        for index, handle in enumerate(handles):
            survivors = sorted(handle.grammar.start.nodes())
            locator = {original: position for position, original in
                       enumerate(survivors, start=1)}
            for pinned in plan.boundary_nodes[index]:
                if pinned not in locator:  # pragma: no cover - guarded
                    raise GrammarError(
                        f"boundary node {pinned} was folded into a rule "
                        f"of shard {index}; the external pin failed"
                    )
            locators.append(locator)
            count = handle.node_count()
            if count != plan.subgraphs[index].node_size:
                raise GrammarError(
                    f"shard {index} derives {count} nodes but was "
                    f"assigned {plan.subgraphs[index].node_size}"
                )
            shard_nodes.append(count)
        bases = [0] * shards
        for index in range(1, shards):
            bases[index] = bases[index - 1] + shard_nodes[index - 1]

        def to_global(node: int) -> int:
            shard = assign[node]
            return bases[shard] + locators[shard][node]

        boundary_edges = [
            (label, tuple(to_global(node) for node in att))
            for label, att in plan.boundary_edges
        ]
        blocks = [
            [tuple(sorted(to_global(node) for node in block))
             for block in shard_blocks]
            for shard_blocks in plan.blocks
        ]
        reference = alphabet.copy()
        return cls(handles, reference, boundary_edges, blocks,
                   plan.extrema, plan.degree_error, shard_nodes,
                   simple=plan.simple, partitioner=partitioner_name,
                   cache_size=cache_size)

    @classmethod
    def from_bytes(cls, buf: Union[bytes, bytearray, ShardedFile],
                   cache_size: int = DEFAULT_CACHE_SIZE
                   ) -> "ShardedCompressedGraph":
        """Load a handle from serialized "GRPS" container bytes."""
        data = buf.data if isinstance(buf, ShardedFile) else bytes(buf)
        meta, blobs = decode_sharded_container(data)
        shards = [CompressedGraph.from_bytes(blob, cache_size=cache_size)
                  for blob in blobs]
        (shard_nodes, boundary_edges, blocks, extrema, degree_error,
         simple, partitioner) = _decode_meta(meta, len(blobs))
        if len(shard_nodes) != len(shards):
            raise EncodingError(
                f"meta lists {len(shard_nodes)} shards, container "
                f"holds {len(shards)}"
            )
        # Every shard was compressed from a copy of one input alphabet,
        # so their terminal lists agree up to pass-minted extras (the
        # virtual-edge label) appended at the end.  Boundary labels
        # only reference the shared prefix; verify exactly that.
        def signature(handle: CompressedGraph
                      ) -> List[Tuple[int, Optional[str]]]:
            terminal_alphabet = handle.grammar.alphabet
            return [(terminal_alphabet.rank(label),
                     terminal_alphabet.name(label))
                    for label in terminal_alphabet.terminals()]

        reference_signature = signature(shards[0])
        for index, shard in enumerate(shards[1:], start=1):
            shard_signature = signature(shard)
            common = min(len(reference_signature), len(shard_signature))
            if shard_signature[:common] != reference_signature[:common]:
                raise EncodingError(
                    f"shard {index} terminal alphabet differs from "
                    "shard 0; the container was not produced by one "
                    "build"
                )
        reference = shards[0].grammar.alphabet
        container = ShardedFile(
            data=data, section_bytes=sharded_container_sections(data))
        # Like CompressedGraph.from_bytes: remember the k the file was
        # encoded with so save()/to_bytes() reuse the loaded bytes only
        # when the requested parameters match.
        k, _ = read_uvarint(blobs[0], 5)
        return cls(shards, reference, boundary_edges, blocks, extrema,
                   degree_error, shard_nodes, simple=simple,
                   partitioner=partitioner, cache_size=cache_size,
                   container=container, container_key=(True, k))

    @classmethod
    def open(cls, path: Union[str, Path],
             cache_size: int = DEFAULT_CACHE_SIZE
             ) -> "ShardedCompressedGraph":
        """Load a handle from a ``.grps`` container file."""
        return cls.from_bytes(Path(path).read_bytes(),
                              cache_size=cache_size)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_container(self, include_names: bool = True,
                     k: int = 2) -> ShardedFile:
        """Serialize to the multi-shard container format.

        Cached per parameter set: loaded handles keep reporting the
        file they came from, and repeated ``sizes``/``total_bytes``
        accesses do not re-encode every shard.
        """
        key = (include_names, k)
        with self._lock:
            if self._container is not None and self._container_key == key:
                return self._container
        order = _terminal_order(self._alphabet)
        boundary_edges = [
            (order[label], att) for label, att in self._boundary_edges
        ]
        meta = _encode_meta(self._shard_nodes, boundary_edges,
                            self._blocks, self._extrema,
                            self._degree_error, self._simple,
                            self._partitioner)
        blobs = [shard.to_bytes(include_names=include_names, k=k)
                 for shard in self._shards]
        container = encode_sharded_container(meta, blobs)
        with self._lock:
            self._container = container
            self._container_key = key
        return container

    def _current_container(self) -> ShardedFile:
        """The existing container if any, else a default encoding."""
        with self._lock:
            container = self._container
        if container is not None:
            return container
        return self.to_container()

    def to_bytes(self, include_names: bool = True, k: int = 2) -> bytes:
        """Serialize to "GRPS" container bytes."""
        return self.to_container(include_names, k).data

    def save(self, path: Union[str, Path], include_names: bool = True,
             k: int = 2) -> ShardedFile:
        """Write the container to ``path``; returns the container."""
        container = self.to_container(include_names, k)
        container.write(path)
        return container

    @property
    def sizes(self) -> Dict[str, int]:
        """Per-section bytes: ``meta`` plus ``shard<i>/<section>``.

        Loaded handles report the sections parsed from the loaded
        file, exactly like :attr:`CompressedGraph.sizes`.
        """
        return dict(self._current_container().section_bytes)

    @property
    def total_bytes(self) -> int:
        """Size of the serialized container in bytes."""
        return self._current_container().total_bytes

    def bits_per_edge(self, num_edges: Optional[int] = None) -> float:
        """bpe of the serialized container (the paper's size metric)."""
        if num_edges is None:
            num_edges = self.edge_count()
        return self._current_container().bits_per_edge(num_edges)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of per-shard grammars."""
        return len(self._shards)

    @property
    def shards(self) -> List[CompressedGraph]:
        """The per-shard handles (shared, not copies)."""
        return list(self._shards)

    @property
    def alphabet(self) -> Alphabet:
        """The terminal alphabet shared by every shard."""
        return self._alphabet

    @property
    def boundary_edge_count(self) -> int:
        """Edges of the input that cross shards (kept uncompressed)."""
        return len(self._boundary_edges)

    @property
    def canonicalizations(self) -> int:
        """Total canonicalization passes across all shard handles."""
        return sum(shard.canonicalizations for shard in self._shards)

    @property
    def index_built(self) -> bool:
        """Whether every shard's lazy query index exists."""
        return all(shard.index_built for shard in self._shards)

    @property
    def cache(self) -> QueryCache:
        """The handle's query-result LRU."""
        return self._cache

    @property
    def cache_info(self) -> Dict[str, Any]:
        """LRU counters: capacity, size, hits, misses, evictions."""
        return self._cache.info()

    @property
    def cache_hits(self) -> int:
        """Queries answered from the result LRU."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Queries that fell through to evaluation."""
        return self._cache.misses

    @property
    def stats(self) -> Dict[str, object]:
        """Aggregate build statistics over the shards."""
        per_shard = [shard.stats for shard in self._shards]
        return {
            "shards": len(self._shards),
            "partitioner": self._partitioner,
            "boundary_edges": len(self._boundary_edges),
            "shard_nodes": list(self._shard_nodes),
            "shard_grammar_sizes": [shard.grammar.size
                                    for shard in self._shards],
            "per_shard": per_shard,
        }

    def summary(self) -> str:
        """One-line description of the handle."""
        total_rules = sum(shard.grammar.num_rules
                          for shard in self._shards)
        total_size = sum(shard.grammar.size for shard in self._shards)
        return (f"{len(self._shards)} shards "
                f"({self._partitioner}), {total_rules} rules, "
                f"sum|G|={total_size}, "
                f"{len(self._boundary_edges)} boundary edges, "
                f"{self._total_nodes} nodes")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _owner(self, node_id: int) -> int:
        """Shard index owning a global node ID."""
        if not 1 <= node_id <= self._total_nodes:
            raise QueryError(
                f"node ID {node_id} out of range 1..{self._total_nodes}"
            )
        return bisect_right(self._bases, node_id - 1) - 1

    def _local(self, node_id: int, shard: int) -> int:
        return node_id - self._bases[shard]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def decompress(self, max_edges: Optional[int] = None) -> Hypergraph:
        """Expand the full graph with the global (shard-major) numbering.

        The union of the per-shard ``val`` graphs, offset by the shard
        bases, plus the boundary edges — exactly the ID space every
        query answers in.
        """
        merged = Hypergraph()
        for node in range(1, self._total_nodes + 1):
            merged.add_node(node)
        remaining = max_edges
        for shard_index, shard in enumerate(self._shards):
            base = self._bases[shard_index]
            val = shard.decompress(max_edges=remaining)
            for _, edge in val.edges():
                merged.add_edge(edge.label,
                                tuple(node + base for node in edge.att))
            if remaining is not None:
                remaining -= val.num_edges
                if remaining <= 0:
                    return merged
        for label, att in self._boundary_edges:
            merged.add_edge(label, att)
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
        return merged

    # ------------------------------------------------------------------
    # Neighborhood queries (route to the owner, merge the boundary)
    # ------------------------------------------------------------------
    def _merged_neighbors(self, node_id: int, direction: str
                          ) -> List[int]:
        shard = self._owner(node_id)
        local = self._local(node_id, shard)
        base = self._bases[shard]
        handle = self._shards[shard]
        if direction == "out":
            inner = handle.out_neighbors(local)
            extra = self._b_out.get(node_id)
        elif direction == "in":
            inner = handle.in_neighbors(local)
            extra = self._b_in.get(node_id)
        else:
            inner = handle.neighbors(local)
            extra = self._b_any.get(node_id)
        result = [node + base for node in inner]
        if extra:
            merged = set(result)
            merged.update(extra)
            return sorted(merged)
        return result

    def out_neighbors(self, node_id: int) -> List[int]:
        """Sorted out-neighbor IDs of ``node_id`` (paper's ``N+``)."""
        return self._cache.get_or_compute(
            ("out", node_id),
            lambda: self._merged_neighbors(node_id, "out"))

    def in_neighbors(self, node_id: int) -> List[int]:
        """Sorted in-neighbor IDs of ``node_id`` (paper's ``N-``)."""
        return self._cache.get_or_compute(
            ("in", node_id),
            lambda: self._merged_neighbors(node_id, "in"))

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted undirected neighborhood ``N(v)``."""
        return self._cache.get_or_compute(
            ("neighborhood", node_id),
            lambda: self._merged_neighbors(node_id, "any"))

    def out(self, node_id: int) -> List[int]:
        """Alias of :meth:`out_neighbors`."""
        return self.out_neighbors(node_id)

    def in_(self, node_id: int) -> List[int]:
        """Alias of :meth:`in_neighbors` (``in`` is a keyword)."""
        return self.in_neighbors(node_id)

    def neighborhood(self, node_id: int) -> List[int]:
        """Alias of :meth:`neighbors`."""
        return self.neighbors(node_id)

    # ------------------------------------------------------------------
    # Speed-up queries (merge per-shard summaries)
    # ------------------------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """(s,t)-reachability across shards.

        Three regimes, picked per query:

        * both endpoints in one shard that no boundary edge touches —
          the owning shard's Theorem-6 query verbatim (``O(|G_i|)``);
        * a *sparse* boundary (``exits^2 <= |val|``) — boundary
          chaining: alternate per-shard ``O(|G_i|)`` reachability with
          boundary hops, so the cost scales with the grammar and the
          boundary, never with ``val``;
        * a *dense* boundary — the boundary summary rivals the graph
          itself, so chaining would quadratically repeat per-shard
          queries; fall back to BFS over the merged (LRU-backed)
          neighborhoods, the paper's any-algorithm-on-Prop.-4 route.
        """
        return self._cache.get_or_compute(
            ("reach", source_id, target_id),
            lambda: self._reach_uncached(source_id, target_id))

    def _reach_uncached(self, source_id: int, target_id: int) -> bool:
        if not self._simple:
            raise QueryError(
                "reachability requires a simple derived graph; found "
                "a terminal hyperedge"
            )
        source_shard = self._owner(source_id)
        target_shard = self._owner(target_id)
        if (source_shard == target_shard
                and self._shards[source_shard].reachable(
                    self._local(source_id, source_shard),
                    self._local(target_id, source_shard))):
            return True
        if source_shard not in self._boundary_shards:
            return False  # the source's shard cannot be left
        if self._total_exits * self._total_exits <= self._total_nodes:
            # The same-shard target check above already ran for the
            # source itself; don't pay that O(|G_i|) query twice.
            checked = ({source_id} if source_shard == target_shard
                       else set())
            return self._reach_by_chaining(source_id, target_shard,
                                           self._local(target_id,
                                                       target_shard),
                                           checked)
        return self._reach_by_bfs(source_id, target_id)

    def _reach_by_chaining(self, source_id: int, target_shard: int,
                           target_local: int,
                           already_checked: Set[int]) -> bool:
        """Boundary chaining: per-shard reach + boundary hops."""
        seen: Set[int] = {source_id}
        frontier = [source_id]
        while frontier:
            node = frontier.pop()
            shard = self._owner(node)
            handle = self._shards[shard]
            local = self._local(node, shard)
            if (shard == target_shard
                    and node not in already_checked
                    and handle.reachable(local, target_local)):
                return True
            for exit_node in self._exits[shard]:
                exit_local = self._local(exit_node, shard)
                if not handle.reachable(local, exit_local):
                    continue
                for entered in self._b_out[exit_node]:
                    if entered not in seen:
                        seen.add(entered)
                        frontier.append(entered)
        return False

    def _reach_by_bfs(self, source_id: int, target_id: int) -> bool:
        """Plain BFS over the merged neighborhoods (dense boundary)."""
        seen: Set[int] = {source_id}
        frontier = deque([source_id])
        while frontier:
            node = frontier.popleft()
            if node == target_id:
                return True
            for succ in self.out_neighbors(node):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def reach(self, source_id: int, target_id: int) -> bool:
        """Alias of :meth:`reachable`."""
        return self.reachable(source_id, target_id)

    def connected_components(self) -> int:
        """Components of the full graph from per-shard counts.

        Per-shard grammar counts (the paper's one-pass CMSO function)
        are merged with the partition-time boundary summary: every
        within-shard connectivity class of boundary nodes is one
        component of the disjoint union, and a union-find over those
        classes under the boundary edges counts exactly how many
        merges the boundary performs.
        """
        with self._lock:
            if self._component_count is not None:
                return self._component_count
        shard_total = sum(shard.connected_components()
                          for shard in self._shards)
        roots: Dict[int, int] = {}
        for shard_blocks in self._blocks:
            for block in shard_blocks:
                anchor = block[0]
                for node in block:
                    roots[node] = anchor
        merge = UnionFind(set(roots.values()))
        before = merge.set_count
        for _, att in self._boundary_edges:
            anchor = roots[att[0]]
            for node in att[1:]:
                merge.union(anchor, roots[node])
        count = shard_total - (before - merge.set_count)
        with self._lock:
            self._component_count = count
        return count

    def components(self) -> int:
        """Alias of :meth:`connected_components`."""
        return self.connected_components()

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Union[int, Dict[str, int]]:
        """Degree information without decompressing.

        Same contract as :meth:`CompressedGraph.degree`: per-node
        counts are distinct neighbors (boundary edges merged in); the
        no-argument form returns the true multiplicity-counting
        extrema, precomputed over the whole input at partition time
        (boundary edges contribute to boundary nodes' degrees, so no
        single shard could answer this).
        """
        if node_id is None:
            if self._extrema is None:
                raise QueryError(self._degree_error
                                 or "degree extrema unavailable")
            return dict(self._extrema)
        if direction == "out":
            return len(self.out_neighbors(node_id))
        if direction == "in":
            return len(self.in_neighbors(node_id))
        if direction == "any":
            return len(self.neighbors(node_id))
        raise QueryError(f"unknown direction {direction!r}; "
                         "expected 'out', 'in' or 'any'")

    def degrees(self) -> Dict[str, int]:
        """The degree extrema dict (sharded form of the evaluator)."""
        result = self.degree()
        assert isinstance(result, dict)
        return result

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        """A shortest directed path as global node IDs, or ``None``."""
        from repro.queries.traversal import shortest_path
        return self._cache.get_or_compute(
            ("path", source_id, target_id),
            lambda: shortest_path(self, source_id, target_id))

    def node_count(self) -> int:
        """``|val|_V`` of the full graph (sum of shard counts)."""
        return self._total_nodes

    def edge_count(self) -> int:
        """Terminal edges of the full graph (shards + boundary)."""
        return (sum(shard.edge_count() for shard in self._shards)
                + len(self._boundary_edges))

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def batch(self, requests: Iterable[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None,
              executor: Optional[Executor] = None) -> List[Any]:
        """Evaluate many queries; results come back in request order.

        Same wire format as :meth:`CompressedGraph.batch`.  The
        sequential path routes request by request.  ``parallel=True``
        plans the batch: it deduplicates repeated requests,
        pre-filters the handle's result LRU (hot requests never reach
        a shard), groups every remaining shard-local request per
        owning shard — each group is shipped through that shard
        handle's own ``batch()`` and translated back in one pass —
        and fans the groups plus the remaining cross-shard requests
        out across a thread pool, bulk-inserting the answers back
        into the LRU.  ``executor`` overrides the strategy entirely;
        the typed :meth:`execute` surface is the one with per-request
        errors.
        """
        if executor is None:
            executor = (ThreadExecutor(max_workers) if parallel
                        else InlineExecutor())
        results = executor.run(self, list(requests), strict=True)
        return [result.unwrap() for result in results]

    def _uncached_query(self, kind: QueryKind,
                        args: Tuple[Any, ...]) -> Any:
        """One typed request, bypassing the result LRU (see
        :meth:`CompressedGraph._uncached_query`)."""
        if kind is QueryKind.OUT:
            if len(args) != 1:
                raise TypeError(f"out() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "out")
        if kind is QueryKind.IN:
            if len(args) != 1:
                raise TypeError(f"in() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "in")
        if kind is QueryKind.NEIGHBORHOOD:
            if len(args) != 1:
                raise TypeError(f"neighborhood() takes 1 argument "
                                f"({len(args)} given)")
            return self._merged_neighbors(args[0], "any")
        if kind is QueryKind.REACH:
            return self._reach_uncached(*args)
        if kind is QueryKind.PATH:
            from repro.queries.traversal import shortest_path
            return shortest_path(self, *args)
        from repro.serving.protocol import KIND_METHODS
        return getattr(self, KIND_METHODS[kind])(*args)

    def warm(self) -> "ShardedCompressedGraph":
        """Force every shard's lazy structures (see
        :meth:`CompressedGraph.warm`); degree extrema and the
        component merge are already partition-time artifacts."""
        for shard in self._shards:
            warm = getattr(shard, "warm", None)
            if warm is not None:
                warm()
        self.connected_components()
        self.edge_count()
        return self

    # Kinds a shard can answer alone for a non-boundary node, and the
    # local batch kind each translates to.
    _LOCAL_KINDS = {
        QueryKind.OUT: "out",
        QueryKind.IN: "in",
        QueryKind.NEIGHBORHOOD: "neighborhood",
        QueryKind.DEGREE: "degree",
    }
    #: Answers that are lists of local node IDs (need the +base shift).
    _OFFSET_RESULTS = {"out", "in", "neighborhood"}

    def _route_local(self, kind: QueryKind, args: Tuple[Any, ...]
                     ) -> Optional[Tuple[int, Tuple[Any, ...], str]]:
        """``(shard, local_request, local_kind)`` when one shard can
        answer exactly, else ``None``."""
        local_kind = self._LOCAL_KINDS.get(kind)
        if local_kind is not None:
            if not args or not isinstance(args[0], int):
                return None
            node = args[0]
            if not 1 <= node <= self._total_nodes:
                return None  # let the general path raise QueryError
            if node in self._boundary_incident:
                return None
            shard = self._owner(node)
            local = self._local(node, shard)
            return shard, (local_kind, local, *args[1:]), local_kind
        if kind is QueryKind.REACH and len(args) == 2 \
                and all(isinstance(arg, int) for arg in args):
            source, target = args
            if not (1 <= source <= self._total_nodes
                    and 1 <= target <= self._total_nodes):
                return None
            shard = self._owner(source)
            # A shard that no boundary edge touches can never be left
            # or re-entered, so its local answer is the global one.
            if (shard == self._owner(target)
                    and shard not in self._boundary_shards):
                return (shard,
                        ("reach", self._local(source, shard),
                         self._local(target, shard)),
                        "reach")
        return None

    def _fanout_jobs(self, jobs: List[QueryRequest],
                     emit: Callable[[int, QueryResult], None],
                     max_workers: Optional[int]) -> None:
        """The sharded planned path, executor-shaped.

        Called by :class:`repro.serving.ThreadExecutor` with the
        already deduplicated, cache-filtered jobs.  Classifies them —
        shard-routable (shipped through the owning shard's own
        ``batch()``, the wire format), batchable reach (answered from
        per-source BFS closures with batch-scoped memoization),
        everything else (chunked across threads) — and fans the
        groups out across a thread pool.
        """
        from concurrent.futures import ThreadPoolExecutor

        shard_groups: Dict[int, List[Tuple[QueryRequest,
                                           Tuple[Any, ...], str]]] = {}
        reach_pairs: List[Tuple[int, int, int]] = []
        general: List[QueryRequest] = []
        for request in jobs:
            routed = self._route_local(request.kind, request.args)
            if routed is not None:
                shard, local_request, local_kind = routed
                shard_groups.setdefault(shard, []).append(
                    (request, local_request, local_kind))
                continue
            args = request.args
            if (request.kind is QueryKind.REACH and self._simple
                    and len(args) == 2
                    and all(isinstance(arg, int)
                            and 1 <= arg <= self._total_nodes
                            for arg in args)):
                reach_pairs.append((request.id, args[0], args[1]))
                continue
            general.append(request)

        def run_group(shard: int,
                      items: List[Tuple[QueryRequest, Tuple[Any, ...],
                                        str]]) -> None:
            base = self._bases[shard]
            try:
                answers = self._shards[shard].batch(
                    [local for _, local, _ in items])
            except QueryError:
                # A malformed routed request (e.g. a bad degree
                # direction) poisons the grouped call; answer the
                # group request by request so the error stays
                # per-request.
                for request, _, _ in items:
                    emit(request.id, evaluate_request(self, request,
                                                      uncached=True))
                return
            for (request, _, local_kind), answer in zip(items, answers):
                if local_kind in self._OFFSET_RESULTS:
                    answer = [node + base for node in answer]
                emit(request.id, QueryResult(id=request.id,
                                             value=answer))

        def run_general(chunk: List[QueryRequest]) -> None:
            for request in chunk:
                emit(request.id, evaluate_request(self, request,
                                                  uncached=True))

        def run_reach(pairs: List[Tuple[int, int, int]]) -> None:
            """All reach answers from per-source BFS closures.

            One traversal per distinct source answers every target
            asked of that source, and the neighborhood expansions are
            memoized across the whole batch — the planned path's main
            advantage over request-at-a-time evaluation.
            """
            adjacency: Dict[int, List[int]] = {}

            def successors(node: int) -> List[int]:
                known = adjacency.get(node)
                if known is None:
                    known = adjacency[node] = self.out_neighbors(node)
                return known

            by_source: Dict[int, List[Tuple[int, int]]] = {}
            for position, source, target in pairs:
                by_source.setdefault(source, []).append(
                    (position, target))
            for source, wanted in by_source.items():
                targets = {target for _, target in wanted}
                seen = {source}
                missing = set(targets) - seen
                frontier = deque([source])
                while frontier and missing:
                    node = frontier.popleft()
                    for succ in successors(node):
                        if succ not in seen:
                            seen.add(succ)
                            missing.discard(succ)
                            frontier.append(succ)
                for position, target in wanted:
                    emit(position, QueryResult(id=position,
                                               value=target in seen))

        tasks: List[Callable[[], None]] = []
        for shard, items in sorted(shard_groups.items()):
            tasks.append(lambda shard=shard, items=items:
                         run_group(shard, items))
        if reach_pairs:
            tasks.append(lambda: run_reach(reach_pairs))
        if general:
            # Bundle the leftovers: one pool task per chunk, not per
            # request (thread dispatch would dwarf small queries).
            splits = min(len(general), max(1, (max_workers or 4)))
            for index in range(splits):
                chunk = general[index::splits]
                tasks.append(lambda chunk=chunk: run_general(chunk))

        workers = max_workers or min(8, max(len(tasks), 1))
        if workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                task()
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for _ in pool.map(lambda task: task(), tasks):
                    pass

    def __repr__(self) -> str:
        built = "built" if self.index_built else "lazy"
        return (f"ShardedCompressedGraph(shards={len(self._shards)}, "
                f"nodes={self._total_nodes}, "
                f"boundary={len(self._boundary_edges)}, index={built})")


# ----------------------------------------------------------------------
# Meta section codec (the routing summary inside the "GRPS" container)
# ----------------------------------------------------------------------
def _encode_meta(shard_nodes: List[int],
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 simple: bool,
                 partitioner: str) -> bytes:
    out = bytearray()
    write_uvarint(out, _META_VERSION)
    name = partitioner.encode("utf-8")
    write_uvarint(out, len(name))
    out.extend(name)
    out.append(1 if simple else 0)
    write_uvarint(out, len(shard_nodes))
    for count in shard_nodes:
        write_uvarint(out, count)
    if extrema is not None:
        out.append(1)
        for field in ("max_out", "min_out", "max_in", "min_in",
                      "max", "min"):
            write_uvarint(out, extrema[field])
    else:
        out.append(0)
        message = (degree_error or "").encode("utf-8")
        write_uvarint(out, len(message))
        out.extend(message)
    write_uvarint(out, len(boundary_edges))
    for label, att in boundary_edges:
        write_uvarint(out, label)
        write_uvarint(out, len(att))
        for node in att:
            write_uvarint(out, node)
    write_uvarint(out, len(blocks))
    for shard_blocks in blocks:
        write_uvarint(out, len(shard_blocks))
        for block in shard_blocks:
            write_uvarint(out, len(block))
            for node in block:
                write_uvarint(out, node)
    return bytes(out)


def _decode_meta(data: bytes, num_shards: int):
    try:
        pos = 0
        version, pos = read_uvarint(data, pos)
        if version != _META_VERSION:
            raise EncodingError(
                f"unsupported sharded meta version {version}")
        name_len, pos = read_uvarint(data, pos)
        partitioner = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        simple = bool(data[pos])
        pos += 1
        count, pos = read_uvarint(data, pos)
        shard_nodes: List[int] = []
        for _ in range(count):
            nodes, pos = read_uvarint(data, pos)
            shard_nodes.append(nodes)
        extrema: Optional[Dict[str, int]] = None
        degree_error: Optional[str] = None
        flag = data[pos]
        pos += 1
        if flag:
            values = []
            for _ in range(6):
                value, pos = read_uvarint(data, pos)
                values.append(value)
            extrema = dict(zip(("max_out", "min_out", "max_in",
                                "min_in", "max", "min"), values))
        else:
            msg_len, pos = read_uvarint(data, pos)
            degree_error = (data[pos:pos + msg_len].decode("utf-8")
                            or None)
            pos += msg_len
        edge_count, pos = read_uvarint(data, pos)
        boundary_edges: List[Tuple[int, Tuple[int, ...]]] = []
        for _ in range(edge_count):
            label, pos = read_uvarint(data, pos)
            rank, pos = read_uvarint(data, pos)
            att = []
            for _ in range(rank):
                node, pos = read_uvarint(data, pos)
                att.append(node)
            boundary_edges.append((label, tuple(att)))
        block_shards, pos = read_uvarint(data, pos)
        if block_shards != num_shards:
            raise EncodingError(
                f"meta blocks cover {block_shards} shards, expected "
                f"{num_shards}"
            )
        blocks: List[List[Tuple[int, ...]]] = []
        for _ in range(block_shards):
            shard_count, pos = read_uvarint(data, pos)
            shard_blocks = []
            for _ in range(shard_count):
                size, pos = read_uvarint(data, pos)
                block = []
                for _ in range(size):
                    node, pos = read_uvarint(data, pos)
                    block.append(node)
                shard_blocks.append(tuple(block))
            blocks.append(shard_blocks)
        if pos != len(data):
            raise EncodingError(
                f"{len(data) - pos} trailing bytes in sharded meta")
    except (IndexError, ValueError) as exc:
        raise EncodingError(f"corrupt sharded meta: {exc}") from None
    return (shard_nodes, boundary_edges, blocks, extrema, degree_error,
            simple, partitioner)


# ----------------------------------------------------------------------
# Container dispatch
# ----------------------------------------------------------------------
def open_compressed(path: Union[str, Path],
                    cache_size: int = DEFAULT_CACHE_SIZE
                    ) -> Union[CompressedGraph, ShardedCompressedGraph]:
    """Open a container of either kind, dispatching on its magic.

    "GRPS" files yield a :class:`ShardedCompressedGraph`, "GRPR" files
    a :class:`CompressedGraph`; both expose the same query surface, so
    callers (the CLI among them) need not care which they got.
    """
    data = Path(path).read_bytes()
    if is_sharded_container(data):
        return ShardedCompressedGraph.from_bytes(data,
                                                 cache_size=cache_size)
    return CompressedGraph.from_bytes(data, cache_size=cache_size)
