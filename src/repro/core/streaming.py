"""Streaming compression and decompression.

Decompression: ``derive`` builds the whole derived hypergraph in
memory, which defeats the purpose when the grammar is exponentially
smaller than the graph (Fig. 13).  :func:`iter_edges` walks the
derivation with an explicit stack and yields terminal edges one at a
time with their final node IDs — memory proportional to the grammar
height times the maximal rule size, not to |val(G)|.

The numbering is identical to :func:`repro.core.derivation.derive` on
a canonical grammar (tested), so streamed output can feed external
tools (edge-list writers, bulk loaders) directly.

Compression: :class:`StreamingCompressor` feeds edges to the
incremental gRePair engine in chunks.  The engine's occurrence table,
bucket queue and pairing index persist across chunks — each new edge
is counted purely locally (its endpoints become dirty and are settled
at the next drain), so compressing a stream never re-counts the edges
of earlier chunks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.repair import CompressionStats, GRePair
from repro.exceptions import GrammarError


def iter_edges(grammar: SLHRGrammar) -> Iterator[Tuple[int,
                                                       Tuple[int, ...]]]:
    """Yield ``(label, attachment)`` for every terminal edge of val(G).

    The grammar must be canonical (see
    :meth:`repro.core.SLHRGrammar.canonicalize`); node IDs in the
    yielded attachments follow the paper's deterministic numbering.
    Edges are emitted in derivation order: start-graph edges in edge
    order, with each nonterminal edge fully expanded in place.
    """
    start = grammar.start
    nodes = start.nodes()
    if nodes and (min(nodes) != 1 or max(nodes) != start.node_size):
        raise GrammarError(
            "streaming requires a canonical grammar; call "
            "grammar.canonicalize() first"
        )
    derived_nodes, _ = grammar.derived_counts()

    # Work items: (host graph, edge index list position, node mapping,
    # next fresh base).  We expand depth-first, mirroring derive().
    def expand(label: int, attachment: Tuple[int, ...],
               base: int) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        rhs = grammar.rhs(label)
        mapping: Dict[int, int] = dict(zip(rhs.ext, attachment))
        fresh = base
        for node in sorted(rhs.nodes()):
            if node not in mapping:
                mapping[node] = fresh
                fresh += 1
        child_base = fresh
        for _, edge in sorted(rhs.edges()):
            att = tuple(mapping[n] for n in edge.att)
            if grammar.has_rule(edge.label):
                yield from expand(edge.label, att, child_base)
                child_base += derived_nodes[edge.label]
            else:
                yield edge.label, att

    next_base = start.node_size + 1
    for _, edge in sorted(start.edges()):
        if grammar.has_rule(edge.label):
            yield from expand(edge.label, edge.att, next_base)
            next_base += derived_nodes[edge.label]
        else:
            yield edge.label, edge.att


def count_streamed_edges(grammar: SLHRGrammar) -> int:
    """Edge count via streaming (cross-check for tests)."""
    return sum(1 for _ in iter_edges(grammar))


class StreamingCompressor:
    """Chunked gRePair compression over an edge stream.

    Wraps the incremental engine's streaming API: edges arrive as
    ``(label, attachment)`` pairs (node IDs are created on demand), and
    between chunks the engine drains every digram that became active.
    The incremental state — occurrence table, bucket queue, pairing
    index — is reused across chunks, so each chunk costs work
    proportional to its own size and the digrams it activates
    (``stats.recount_passes == 0`` always).

    Mid-stream, only fully-external digrams are compressed: replacing
    an internal-node digram would delete the node, and a later chunk
    may still reference it — a node's degree is a lower bound until the
    stream closes.  :meth:`finish` therefore seeds one full-knowledge
    counting pass (plus the virtual-edge phase's seed) to pick up the
    deferred internal-node compression.

    Parameters mirror :class:`repro.core.repair.GRePair`; the alphabet
    is copied, so the caller's instance is left untouched.

    Example
    -------
    >>> compressor = StreamingCompressor(alphabet)
    >>> for chunk in chunks:
    ...     compressor.add_edges(chunk)
    >>> grammar = compressor.finish()
    """

    def __init__(
        self,
        alphabet: Alphabet,
        max_rank: int = 4,
        order: str = "fp",
        seed: int = 0,
        virtual_edges: bool = True,
        prune: bool = True,
    ) -> None:
        self._algorithm = GRePair(
            Hypergraph(),
            alphabet.copy(),
            max_rank=max_rank,
            order=order,
            seed=seed,
            virtual_edges=virtual_edges,
            prune=prune,
            engine="incremental",
        )
        self._algorithm.begin_streaming()
        self._grammar: Optional[SLHRGrammar] = None
        self.edges_ingested = 0

    @property
    def stats(self) -> CompressionStats:
        """Live instrumentation counters of the underlying engine."""
        return self._algorithm.stats

    def add_edge(self, label: int, att: Sequence[int]) -> int:
        """Ingest a single edge; returns its edge ID."""
        if self._grammar is not None:
            raise GrammarError("StreamingCompressor is already finished")
        edge_id = self._algorithm.ingest_edge(label, att)
        self.edges_ingested += 1
        return edge_id

    def add_edges(
        self, edges: Iterable[Tuple[int, Sequence[int]]]
    ) -> int:
        """Ingest one chunk of ``(label, att)`` pairs, then drain.

        Returns the number of edges ingested from this chunk.
        """
        count = 0
        for label, att in edges:
            self.add_edge(label, att)
            count += 1
        self._algorithm.drain()
        return count

    def finish(self) -> SLHRGrammar:
        """Drain, run the virtual-edge pass and pruning; return grammar.

        The compressor is single-use afterwards (like ``GRePair``).
        """
        if self._grammar is None:
            self._grammar = self._algorithm.finish_streaming()
        return self._grammar
