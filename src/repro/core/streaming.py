"""Streaming decompression: iterate val(G) without materializing it.

``derive`` builds the whole derived hypergraph in memory, which
defeats the purpose when the grammar is exponentially smaller than the
graph (Fig. 13).  :func:`iter_edges` walks the derivation with an
explicit stack and yields terminal edges one at a time with their
final node IDs — memory proportional to the grammar height times the
maximal rule size, not to |val(G)|.

The numbering is identical to :func:`repro.core.derivation.derive` on
a canonical grammar (tested), so streamed output can feed external
tools (edge-list writers, bulk loaders) directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.grammar import SLHRGrammar
from repro.exceptions import GrammarError


def iter_edges(grammar: SLHRGrammar) -> Iterator[Tuple[int,
                                                       Tuple[int, ...]]]:
    """Yield ``(label, attachment)`` for every terminal edge of val(G).

    The grammar must be canonical (see
    :meth:`repro.core.SLHRGrammar.canonicalize`); node IDs in the
    yielded attachments follow the paper's deterministic numbering.
    Edges are emitted in derivation order: start-graph edges in edge
    order, with each nonterminal edge fully expanded in place.
    """
    start = grammar.start
    nodes = start.nodes()
    if nodes and (min(nodes) != 1 or max(nodes) != start.node_size):
        raise GrammarError(
            "streaming requires a canonical grammar; call "
            "grammar.canonicalize() first"
        )
    derived_nodes, _ = grammar.derived_counts()

    # Work items: (host graph, edge index list position, node mapping,
    # next fresh base).  We expand depth-first, mirroring derive().
    def expand(label: int, attachment: Tuple[int, ...],
               base: int) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        rhs = grammar.rhs(label)
        mapping: Dict[int, int] = dict(zip(rhs.ext, attachment))
        fresh = base
        for node in sorted(rhs.nodes()):
            if node not in mapping:
                mapping[node] = fresh
                fresh += 1
        child_base = fresh
        for _, edge in sorted(rhs.edges()):
            att = tuple(mapping[n] for n in edge.att)
            if grammar.has_rule(edge.label):
                yield from expand(edge.label, att, child_base)
                child_base += derived_nodes[edge.label]
            else:
                yield edge.label, att

    next_base = start.node_size + 1
    for _, edge in sorted(start.edges()):
        if grammar.has_rule(edge.label):
            yield from expand(edge.label, edge.att, next_base)
            next_base += derived_nodes[edge.label]
        else:
            yield edge.label, edge.att


def count_streamed_edges(grammar: SLHRGrammar) -> int:
    """Edge count via streaming (cross-check for tests)."""
    return sum(1 for _ in iter_edges(grammar))
