"""Digrams over hypergraphs: canonical keys and occurrences.

Definition 2 of the paper: a digram is a hypergraph with exactly two
edges such that every node is attached to one of them and at least one
node is attached to both.  Definition 3 defines an *occurrence* of a
digram ``d`` in a graph ``g`` as a pair of edges inducing a subgraph
isomorphic to ``d`` where, additionally, a node is mapped to an
*external* node of ``d`` if and only if it is incident with an edge
outside the pair (condition (3)) — internal nodes are exactly the nodes
the replacement may delete.

Two occurrences must receive equal keys exactly when they are
occurrences of the same digram, and the key must fix the order of the
digram's external nodes so that every replacement attaches its fresh
nonterminal edge consistently.  We achieve this with a canonical local
numbering:

1. pick an orientation (which edge is "first");
2. number the occurrence's nodes 0,1,... in order of first appearance
   in ``att(first) . att(second)``;
3. the key is ``(lab_first, rank_first, lab_second,
   local-attachment-of-second, external-flags)``;
4. the digram key is the lexicographically smaller of the two
   orientations' keys.

External flags are part of the key because Definition 3 makes the
internal/external split part of digram identity (the two grammars of
the paper's Figure 4 differ exactly in that split).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import HypergraphError


class DigramKey(NamedTuple):
    """Canonical, hashable identity of a digram.

    Attributes
    ----------
    label_a, label_b:
        Edge labels in canonical orientation.
    rank_a:
        Rank of the first edge (``att_b`` is implied by ``pattern_b``).
    pattern_b:
        For each attachment position of the second edge, the local node
        index (indices < ``rank_a`` are shared with the first edge).
    ext_flags:
        Per local node index, True if the node is external.
    """

    label_a: int
    rank_a: int
    label_b: int
    pattern_b: Tuple[int, ...]
    ext_flags: Tuple[bool, ...]

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes in the digram."""
        return len(self.ext_flags)

    @property
    def rank(self) -> int:
        """Digram rank = number of external nodes."""
        return sum(1 for flag in self.ext_flags if flag)

    def external_locals(self) -> Tuple[int, ...]:
        """Local indices of external nodes, ascending.

        This order defines the attachment order of the replacing
        nonterminal edge and the ``ext`` sequence of the rule.
        """
        return tuple(i for i, flag in enumerate(self.ext_flags) if flag)


class Occurrence(NamedTuple):
    """A recorded occurrence: two edge IDs in canonical orientation."""

    edge_a: int
    edge_b: int

    def edges(self) -> Tuple[int, int]:
        """Both edge IDs."""
        return (self.edge_a, self.edge_b)


def _locals_for(att_a: Tuple[int, ...],
                att_b: Tuple[int, ...]) -> Dict[int, int]:
    """Assign local indices by first appearance in att_a then att_b."""
    local: Dict[int, int] = {}
    for node in att_a:
        if node not in local:
            local[node] = len(local)
    for node in att_b:
        if node not in local:
            local[node] = len(local)
    return local


def _oriented_key(
    graph: Hypergraph,
    first: int,
    second: int,
) -> Tuple[DigramKey, Dict[int, int]]:
    """Key and node->local mapping for one orientation of an edge pair."""
    edge_a = graph.edge(first)
    edge_b = graph.edge(second)
    local = _locals_for(edge_a.att, edge_b.att)
    pattern_b = tuple(local[n] for n in edge_b.att)
    flags: List[bool] = [False] * len(local)
    host_ext = graph.ext
    for node, idx in local.items():
        incident_in_pair = (node in edge_a.att) + (node in edge_b.att)
        external = (graph.degree(node) > incident_in_pair
                    or node in host_ext)
        flags[idx] = external
    key = DigramKey(edge_a.label, len(edge_a.att), edge_b.label,
                    pattern_b, tuple(flags))
    return key, local


def digram_key(
    graph: Hypergraph,
    edge_a: int,
    edge_b: int,
) -> Tuple[Optional[DigramKey], Optional[Occurrence], Dict[int, int]]:
    """Canonical digram key of the edge pair ``{edge_a, edge_b}``.

    Returns ``(key, occurrence, local_of_node)`` where ``occurrence``
    stores the pair in canonical orientation and ``local_of_node`` maps
    host nodes to local digram indices.  Returns ``(None, None, {})`` if
    the pair is not a digram (no shared node, or identical edges).
    """
    if edge_a == edge_b:
        return None, None, {}
    att_a = graph.edge(edge_a).att
    att_b = graph.edge(edge_b).att
    if not set(att_a) & set(att_b):
        return None, None, {}
    key_ab, local_ab = _oriented_key(graph, edge_a, edge_b)
    key_ba, local_ba = _oriented_key(graph, edge_b, edge_a)
    if key_ab <= key_ba:
        return key_ab, Occurrence(edge_a, edge_b), local_ab
    return key_ba, Occurrence(edge_b, edge_a), local_ba


def rule_graph(key: DigramKey) -> Hypergraph:
    """Materialize the digram of ``key`` as a rule right-hand side.

    Nodes are ``1..num_nodes`` (local index + 1); the external sequence
    lists external nodes in ascending local order, matching the
    attachment order produced by :func:`replacement_attachment`.
    """
    graph = Hypergraph()
    for _ in range(key.num_nodes):
        graph.add_node()
    graph.add_edge(key.label_a, tuple(range(1, key.rank_a + 1)))
    graph.add_edge(key.label_b, tuple(i + 1 for i in key.pattern_b))
    graph.set_external(tuple(i + 1 for i in key.external_locals()))
    return graph


def replacement_attachment(key: DigramKey,
                           local_of_node: Dict[int, int]) -> Tuple[int, ...]:
    """Host attachment sequence for the replacing nonterminal edge.

    ``local_of_node`` is the mapping returned by :func:`digram_key` for
    this occurrence; the attachment lists the host nodes of the
    digram's external locals in ascending local order, mirroring
    :func:`rule_graph`'s ``ext``.
    """
    node_of_local = {idx: node for node, idx in local_of_node.items()}
    try:
        return tuple(node_of_local[i] for i in key.external_locals())
    except KeyError as exc:  # pragma: no cover - defensive
        raise HypergraphError(
            f"occurrence mapping is missing local node {exc}"
        ) from None


def removal_nodes(key: DigramKey,
                  local_of_node: Dict[int, int]) -> Tuple[int, ...]:
    """Host nodes deleted by replacing this occurrence (internal ones)."""
    return tuple(node for node, idx in local_of_node.items()
                 if not key.ext_flags[idx])


#: Degree bound below which externality flags can still flip.
#:
#: Inside any occurrence a node ``v`` is external iff ``deg(v) > c`` (or
#: ``v`` is host-external), where ``c`` is the number of the pair's two
#: edges incident with ``v`` — so ``c`` is 1 or 2.  A node of degree
#: >= 4 therefore satisfies ``deg(v) > c`` in *every* occurrence, before
#: and after any single-replacement degree change that keeps it >= 4:
#: its flags are pinned True, and only degree transitions touching the
#: range <= 3 can change a recorded occurrence's digram key.  This is
#: why the incremental engine's dirty regions stay local: key drift is
#: confined to low-degree neighborhoods of a replacement, and the
#: settle cascade reaches all of them (verified by brute force in
#: ``tests/test_digram.py``).
EXT_STABLE_DEGREE = 3


def occurrence_nodes(graph: Hypergraph, occ: Occurrence) -> Tuple[int,
                                                                  ...]:
    """Distinct host nodes of an occurrence, in local-index order."""
    return tuple(_locals_for(graph.edge(occ.edge_a).att,
                             graph.edge(occ.edge_b).att))


def occurrence_is_current(graph: Hypergraph, key: DigramKey,
                          occ: Occurrence) -> bool:
    """True if ``occ`` still is an occurrence of exactly ``key``.

    A recorded occurrence is *stale* once one of its edges was consumed
    by a replacement or the externality of one of its nodes changed
    (its true digram key drifted).  Both engines use this identity
    check; the incremental engine additionally repairs drifted entries
    eagerly instead of waiting for a counting pass to rediscover them.
    """
    if not (graph.has_edge(occ.edge_a) and graph.has_edge(occ.edge_b)):
        return False
    current, canonical, _ = digram_key(graph, occ.edge_a, occ.edge_b)
    return current == key and canonical == occ
