"""Occurrence bookkeeping for gRePair.

This module provides the data structures of section III-C1 of the paper:

* per-digram occurrence lists (insertion-ordered; the paper uses doubly
  linked lists, a Python dict gives the same O(1) insert/delete and
  deterministic iteration),
* a per-edge registry implementing the paper's counting discipline: for
  labels σ1, σ2, ``E_{σ1,σ2}(v)`` holds edges labeled σ1 *not yet
  counted in an occurrence with an edge labeled σ2* — i.e. an edge may
  belong to occurrences of several digrams, but at most one occurrence
  per partner label.  Occurrences of one digram are therefore pairwise
  edge-disjoint (both labels equal), while occurrences of different
  digrams may share an edge and are invalidated lazily when it is
  consumed,
* a bucket priority queue of length ``ceil(sqrt(n))`` following Larsson
  and Moffat [15]: bucket ``i`` holds digrams with ``i`` occurrences,
  the last bucket holds everything with at least ``sqrt(n)``,
* a :class:`PairingIndex` — the per-node pairing state of the paper's
  ``E_{σ1,σ2}(v)`` lists, kept as incident edges grouped by ``(label,
  position of v)``.  The incremental engine maintains it under deltas
  (edge insertions/removals) so that re-pairing a freed or fresh edge is
  a local group scan instead of a global counting pass.

Deletions are lazy: a recorded occurrence may become stale when a
replacement deletes one of its edges or changes the externality of its
nodes (its true digram key changed).  The gRePair loop revalidates every
occurrence immediately before using it, so stale entries never cause an
incorrect replacement.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.digram import DigramKey, Occurrence
from repro.core.hypergraph import Edge, Hypergraph


class OccurrenceList:
    """Insertion-ordered set of occurrences for one digram."""

    __slots__ = ("key", "_occurrences", "bucket")

    def __init__(self, key: DigramKey) -> None:
        self.key = key
        self._occurrences: Dict[Occurrence, None] = {}
        #: Current bucket index in the priority queue, or None.
        self.bucket: Optional[int] = None

    def __len__(self) -> int:
        return len(self._occurrences)

    def __iter__(self) -> Iterator[Occurrence]:
        return iter(self._occurrences)

    def add(self, occ: Occurrence) -> None:
        """Record an occurrence (idempotent)."""
        self._occurrences[occ] = None

    def discard(self, occ: Occurrence) -> None:
        """Remove an occurrence if present."""
        self._occurrences.pop(occ, None)


class OccurrenceTable:
    """All active digrams and the per-edge counting discipline."""

    def __init__(self) -> None:
        self._lists: Dict[DigramKey, OccurrenceList] = {}
        # edge ID -> occurrences containing it (across digrams)
        self._edge_occs: Dict[int, Dict[Tuple[DigramKey, Occurrence],
                                        None]] = {}
        # edge ID -> partner labels it is already counted with
        self._partners: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, key: DigramKey) -> bool:
        return key in self._lists

    def get(self, key: DigramKey) -> Optional[OccurrenceList]:
        """The occurrence list of ``key`` or None."""
        return self._lists.get(key)

    def list_for(self, key: DigramKey) -> OccurrenceList:
        """The occurrence list of ``key``, created on demand."""
        existing = self._lists.get(key)
        if existing is None:
            existing = OccurrenceList(key)
            self._lists[key] = existing
        return existing

    def keys(self) -> List[DigramKey]:
        """All digram keys currently tracked."""
        return list(self._lists)

    def can_pair(self, edge_id: int, partner_label: int) -> bool:
        """True if ``edge_id`` may join an occurrence with that label."""
        partners = self._partners.get(edge_id)
        return partners is None or partner_label not in partners

    def occurrences_of_edge(
        self, edge_id: int
    ) -> List[Tuple[DigramKey, Occurrence]]:
        """Snapshot of the occurrences containing ``edge_id``."""
        entry = self._edge_occs.get(edge_id)
        return list(entry) if entry else []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record(self, key: DigramKey, occ: Occurrence) -> OccurrenceList:
        """Record ``occ`` under ``key`` and register partner labels.

        The caller must have checked :meth:`can_pair` in both
        directions; this method enforces it with assertions (cheap and
        catches discipline violations during development).
        """
        assert self.can_pair(occ.edge_a, key.label_b), (key, occ)
        assert self.can_pair(occ.edge_b, key.label_a), (key, occ)
        olist = self.list_for(key)
        olist.add(occ)
        handle = (key, occ)
        self._edge_occs.setdefault(occ.edge_a, {})[handle] = None
        self._edge_occs.setdefault(occ.edge_b, {})[handle] = None
        self._partners.setdefault(occ.edge_a, set()).add(key.label_b)
        self._partners.setdefault(occ.edge_b, set()).add(key.label_a)
        return olist

    def release(self, key: DigramKey, occ: Occurrence) -> None:
        """Drop one occurrence, freeing both edges' partner slots."""
        olist = self._lists.get(key)
        if olist is not None:
            olist.discard(occ)
        handle = (key, occ)
        for edge_id, partner in ((occ.edge_a, key.label_b),
                                 (occ.edge_b, key.label_a)):
            entry = self._edge_occs.get(edge_id)
            if entry is not None:
                entry.pop(handle, None)
                if not entry:
                    del self._edge_occs[edge_id]
            partners = self._partners.get(edge_id)
            if partners is not None:
                partners.discard(partner)
                if not partners:
                    del self._partners[edge_id]

    def release_edge(self, edge_id: int) -> List[DigramKey]:
        """Release every occurrence containing ``edge_id``.

        Returns the affected digram keys (for queue re-filing).  Called
        when an edge is consumed by a replacement: all other recorded
        occurrences using it become invalid (paper section III-A2,
        "reduce the count of every digram for which {e_i, e} appears in
        an existing occurrence list").
        """
        affected = []
        for key, occ in self.occurrences_of_edge(edge_id):
            self.release(key, occ)
            affected.append(key)
        return affected

    def drop_list(self, key: DigramKey) -> None:
        """Remove a digram entirely, releasing all its occurrences."""
        olist = self._lists.get(key)
        if olist is None:
            return
        for occ in list(olist):
            self.release(key, occ)
        del self._lists[key]


class PairingIndex:
    """Per-node incident edges grouped by ``(label, position)``.

    This is the delta-maintainable form of the paper's per-node edge
    lists: ``group(v, σ, p)`` holds (in insertion order) the edges
    labeled ``σ`` whose attachment has ``v`` at position ``p``.  The
    incremental engine consults it to offer a fresh or freed edge new
    partners without re-scanning the whole graph; the engine owns every
    graph mutation and mirrors it here via :meth:`add` / :meth:`remove`.
    """

    __slots__ = ("_groups",)

    def __init__(self) -> None:
        # node -> (label, position) -> insertion-ordered edge-ID set
        self._groups: Dict[int, Dict[Tuple[int, int],
                                     Dict[int, None]]] = {}

    @classmethod
    def from_graph(cls, graph: Hypergraph) -> "PairingIndex":
        """Index every edge of ``graph`` (one-time O(|E|) build)."""
        index = cls()
        for eid, edge in graph.edges():
            index.add(eid, edge)
        return index

    def add(self, edge_id: int, edge: Edge) -> None:
        """Register a newly inserted edge."""
        for pos, node in enumerate(edge.att):
            self._groups.setdefault(node, {}).setdefault(
                (edge.label, pos), {})[edge_id] = None

    def remove(self, edge_id: int, edge: Edge) -> None:
        """Unregister a deleted edge (pass the edge as it was)."""
        for pos, node in enumerate(edge.att):
            node_groups = self._groups.get(node)
            if node_groups is None:
                continue
            group = node_groups.get((edge.label, pos))
            if group is not None:
                group.pop(edge_id, None)
                if not group:
                    del node_groups[(edge.label, pos)]
            if not node_groups:
                del self._groups[node]

    def groups_at(
        self, node: int
    ) -> List[Tuple[Tuple[int, int], List[int]]]:
        """Snapshot of the groups at ``node``, sorted by (label, pos).

        The sort makes pairing deterministic and mirrors the sorted
        group traversal of the full counting pass.
        """
        node_groups = self._groups.get(node)
        if not node_groups:
            return []
        return [(key, list(group))
                for key, group in sorted(node_groups.items())]

    def group_size(self, node: int, label: int, pos: int) -> int:
        """Number of indexed edges in one group (0 if absent)."""
        node_groups = self._groups.get(node)
        if not node_groups:
            return 0
        return len(node_groups.get((label, pos), ()))


class BucketQueue:
    """Larsson–Moffat frequency buckets over digram lists.

    Buckets ``2 .. top`` hold digrams by occurrence count; the last
    bucket holds every digram with at least ``top`` occurrences, where
    ``top = max(2, floor(sqrt(num_edges)))`` as in RePair [15].
    Digrams with fewer than two occurrences are not queued (a digram is
    *active* only with two or more non-overlapping occurrences).
    """

    def __init__(self, num_edges: int) -> None:
        self._top = max(2, math.isqrt(max(1, num_edges)))
        self._buckets: List[Dict[DigramKey, None]] = [
            {} for _ in range(self._top + 1)
        ]
        # Per-bucket min-heaps over the keys, with lazy deletion: every
        # membership insert pushes an entry, so a key present in the
        # bucket dict always has at least one heap entry, and entries
        # whose key left the bucket are skipped at pop time.  This
        # keeps the canonical smallest-key pop order at O(log n) per
        # operation instead of scanning the bucket.
        self._heaps: List[List[DigramKey]] = [
            [] for _ in range(self._top + 1)
        ]
        self._highest = 0
        #: Instrumentation: queue repositions (insert/move/evict) and
        #: successful pops, read by :class:`repro.core.repair.GRePair`.
        self.push_count = 0
        self.pop_count = 0

    def file(self, olist: OccurrenceList) -> None:
        """Insert or reposition ``olist`` according to its length."""
        desired: Optional[int]
        if len(olist) >= 2:
            desired = min(len(olist), self._top)
        else:
            desired = None
        if olist.bucket == desired:
            return
        self.push_count += 1
        if olist.bucket is not None:
            self._buckets[olist.bucket].pop(olist.key, None)
        olist.bucket = desired
        if desired is not None:
            self._buckets[desired][olist.key] = None
            heapq.heappush(self._heaps[desired], olist.key)
            if desired > self._highest:
                self._highest = desired

    def remove(self, olist: OccurrenceList) -> None:
        """Drop ``olist`` from the queue if present."""
        if olist.bucket is not None:
            self._buckets[olist.bucket].pop(olist.key, None)
            olist.bucket = None
            self.push_count += 1

    def resize(self, num_edges: int,
               table: Optional["OccurrenceTable"] = None) -> None:
        """Grow the bucket range to match a larger edge count.

        Streaming compression ingests edges after the queue exists; a
        larger graph warrants a finer frequency resolution (top bucket
        ``sqrt(n)``).  Queued digrams are re-filed into the new buckets
        — by their true list length when ``table`` is supplied (lists
        clamped into the old top bucket spread out again), else at their
        previous level.  Shrinking is never needed (a coarse top bucket
        stays correct).
        """
        top = max(2, math.isqrt(max(1, num_edges)))
        if top <= self._top:
            return
        old_buckets = self._buckets
        self._top = top
        self._buckets = [{} for _ in range(top + 1)]
        self._heaps = [[] for _ in range(top + 1)]
        self._highest = 0
        for level, bucket in enumerate(old_buckets):
            for key in bucket:
                dest = level
                olist = table.get(key) if table is not None else None
                if olist is not None:
                    dest = min(max(len(olist), 2), top)
                    olist.bucket = dest
                self._buckets[dest][key] = None
                heapq.heappush(self._heaps[dest], key)
                if dest > self._highest:
                    self._highest = dest

    def pop_most_frequent(self) -> Optional[DigramKey]:
        """Remove and return a digram from the highest non-empty bucket.

        Count ties are broken by the canonical (lexicographically
        smallest) digram key — a content-based order, so engines with
        different maintenance histories pop identically and stay
        differentially comparable.  The caller owns the popped list and
        must clear its ``bucket`` field (or re-``file`` it) before
        touching the queue again.
        """
        level = min(self._highest, self._top)
        while level >= 2:
            bucket = self._buckets[level]
            if bucket:
                heap = self._heaps[level]
                while True:
                    key = heapq.heappop(heap)
                    if key in bucket:
                        break
                del bucket[key]
                self._highest = level
                self.pop_count += 1
                return key
            level -= 1
        self._highest = 0
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)
