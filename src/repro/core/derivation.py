"""Deterministic derivation ``val(G)`` of an SL-HR grammar.

An SL-HR grammar derives exactly one graph up to isomorphism.  The
paper (end of section II) removes the remaining freedom by fixing node
IDs: start-graph nodes keep IDs ``1..m``; nonterminal edges are ordered,
and expanding them in that order assigns the next available IDs to the
nodes each rule application creates, in right-hand-side order.  Section
V relies on the resulting contiguity: the nodes of ``val(e_i)`` (the
subgraph derived from the i-th top-level nonterminal edge) occupy a
contiguous ID range.

We realize this with a depth-first expansion: a nonterminal edge is
fully expanded (including the nonterminal edges its rule introduces, in
right-hand-side edge order) before the next nonterminal edge at the same
level.  The same traversal order is used by the query index in
:mod:`repro.queries.index`, so query answers refer to exactly these IDs.

The start graph is normalized to node IDs ``1..m`` first; the returned
``mapping`` relates original start-graph IDs to derived IDs so callers
holding external data values (the paper's map ``phi: V -> D``) can
re-attach them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.exceptions import GrammarError


def derive(grammar: SLHRGrammar,
           max_edges: int | None = None) -> Hypergraph:
    """Expand ``grammar`` into the hypergraph ``val(G)``.

    Parameters
    ----------
    grammar:
        The grammar to expand.  Must be straight-line.
    max_edges:
        Optional safety limit; expansion raises :class:`GrammarError`
        when the number of materialized edges would exceed it (grammars
        can derive graphs exponentially larger than themselves).

    Returns
    -------
    Hypergraph
        ``val(G)`` with the paper's deterministic node numbering.
    """
    graph, _ = derive_with_mapping(grammar, max_edges=max_edges)
    return graph


def derive_with_mapping(
    grammar: SLHRGrammar,
    max_edges: int | None = None,
) -> Tuple[Hypergraph, Dict[int, int]]:
    """Like :func:`derive` but also return the start-node ID mapping.

    The mapping sends each *original* start-graph node ID to its ID in
    ``val(G)`` (i.e. its position ``1..m`` in ascending original order).
    """
    start = grammar.start
    mapping = {old: new for new, old in
               enumerate(sorted(start.nodes()), start=1)}
    result = Hypergraph()
    for _ in range(start.node_size):
        result.add_node()
    result.set_external(tuple(mapping[n] for n in start.ext))

    pending: List[int] = []  # stack of nonterminal edge IDs in `result`
    for _, edge in sorted(start.edges()):
        att = tuple(mapping[n] for n in edge.att)
        eid = result.add_edge(edge.label, att)
        if grammar.has_rule(edge.label):
            pending.append(eid)
    # Depth-first: expand the first pending edge completely before the
    # next, so reverse the stack once (later pops come first).
    pending.reverse()

    next_node = start.node_size + 1
    while pending:
        eid = pending.pop()
        label = result.edge(eid).label
        if not grammar.has_rule(label):  # pragma: no cover - guarded above
            raise GrammarError(f"nonterminal {label} has no rule")
        new_edges = grammar.inline_edge(result, eid, fresh_base=next_node)
        rhs = grammar.rhs(label)
        next_node += rhs.node_size - rhs.rank
        if max_edges is not None and result.num_edges > max_edges:
            raise GrammarError(
                f"derivation exceeded max_edges={max_edges}"
            )
        # Push this rule's nonterminal edges so that the first one (in
        # rhs edge order) is expanded next.
        introduced = [e for e in new_edges
                      if grammar.has_rule(result.edge(e).label)]
        pending.extend(reversed(introduced))
    return result, mapping
