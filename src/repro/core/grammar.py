"""Straight-line hyperedge replacement (SL-HR) grammars.

Definition 1 of the paper: a grammar ``G = (N, P, S)`` with a ranked
nonterminal alphabet ``N``, rules ``P ⊂ N × HGR(Σ ∪ N)`` such that
``rank(A) = rank(rhs(A))``, and a start graph ``S``.  Straight-line
means the nonterminal reference relation ``≤NT`` is acyclic and each
nonterminal has exactly one rule, so the grammar derives exactly one
graph (up to isomorphism; :func:`repro.core.derivation.derive` fixes the
node numbering deterministically).

Size accounting follows section II, with the start graph included (the
paper's Figure 6/7 example — "the sizes of this grammar and the graph
differ by exactly three" — only balances when ``|S|`` is counted):

* ``|G| = |S| + Σ_A |rhs(A)|``
* ``handle(A)`` is a minimal graph holding one A-edge; its size is the
  size a nonterminal edge adds to a graph.  With the paper's size
  measure that is ``rank(A) + 1`` for rank <= 2 and ``2·rank(A)``
  otherwise (rank nodes plus the edge's size); the worked example
  ``con(A) = 4·(5−3)−5`` for a rank-2 nonterminal fixes
  ``|handle| = 3 = 2 + 1``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import GrammarError


class Rule(NamedTuple):
    """A grammar rule ``lhs -> rhs``."""

    lhs: int
    rhs: Hypergraph


def handle_size(rank: int) -> int:
    """Size of ``handle(A)`` for a nonterminal of the given rank.

    The handle is a graph with ``rank`` nodes and one edge of that rank;
    its total size is ``rank + 1`` for rank <= 2 and ``rank + rank``
    otherwise (paper size measure: small edges cost 1, hyperedges their
    rank).
    """
    return rank + (1 if rank <= 2 else rank)


class SLHRGrammar:
    """An SL-HR grammar: start graph plus one rule per nonterminal.

    The rule dictionary preserves insertion order, which by construction
    of gRePair is a *top-down* creation order; :meth:`bottom_up_order`
    computes the ``≤NT`` topological order explicitly and does not rely
    on insertion order.
    """

    def __init__(self, alphabet: Alphabet, start: Hypergraph) -> None:
        self.alphabet = alphabet
        self.start = start
        self._rules: Dict[int, Hypergraph] = {}

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(self, lhs: int, rhs: Hypergraph) -> None:
        """Register the (unique) rule for nonterminal ``lhs``."""
        if self.alphabet.is_terminal(lhs):
            raise GrammarError(
                f"label {lhs} is a terminal and cannot head a rule"
            )
        if lhs in self._rules:
            raise GrammarError(f"nonterminal {lhs} already has a rule")
        if self.alphabet.rank(lhs) != rhs.rank:
            raise GrammarError(
                f"rank mismatch for nonterminal {lhs}: label rank "
                f"{self.alphabet.rank(lhs)}, rhs rank {rhs.rank}"
            )
        self._rules[lhs] = rhs

    def remove_rule(self, lhs: int) -> Hypergraph:
        """Drop the rule for ``lhs`` and return its right-hand side."""
        try:
            return self._rules.pop(lhs)
        except KeyError:
            raise GrammarError(f"no rule for nonterminal {lhs}") from None

    def rhs(self, lhs: int) -> Hypergraph:
        """Right-hand side of the unique rule for ``lhs``."""
        try:
            return self._rules[lhs]
        except KeyError:
            raise GrammarError(f"no rule for nonterminal {lhs}") from None

    def has_rule(self, lhs: int) -> bool:
        """True if ``lhs`` has a rule."""
        return lhs in self._rules

    def nonterminals(self) -> List[int]:
        """Nonterminals with rules, in insertion order."""
        return list(self._rules)

    def rules(self) -> Iterator[Rule]:
        """Iterate the rules in insertion order."""
        for lhs, rhs in self._rules.items():
            yield Rule(lhs, rhs)

    @property
    def num_rules(self) -> int:
        """Number of rules (excluding the start graph)."""
        return len(self._rules)

    # ------------------------------------------------------------------
    # Size metrics
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|G|``: total size of start graph plus all right-hand sides."""
        return self.start.total_size + sum(
            rhs.total_size for rhs in self._rules.values()
        )

    @property
    def edge_size(self) -> int:
        """``|G|_E`` over start graph and rules."""
        return self.start.edge_size + sum(
            rhs.edge_size for rhs in self._rules.values()
        )

    @property
    def node_size(self) -> int:
        """``|G|_V`` over start graph and rules."""
        return self.start.node_size + sum(
            rhs.node_size for rhs in self._rules.values()
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def references(self) -> Dict[int, int]:
        """``ref(A)`` for every nonterminal with a rule.

        Counts A-labeled edges in the start graph and in every
        right-hand side (paper section III-A3).  Nonterminals that are
        never referenced map to 0.
        """
        refs = {lhs: 0 for lhs in self._rules}
        for graph in self._all_graphs():
            for _, edge in graph.edges():
                if edge.label in refs:
                    refs[edge.label] += 1
        return refs

    def _all_graphs(self) -> Iterator[Hypergraph]:
        yield self.start
        yield from self._rules.values()

    def nonterminal_edges(self, graph: Hypergraph) -> List[int]:
        """IDs of edges of ``graph`` labeled by a ruled nonterminal."""
        return [eid for eid, edge in graph.edges()
                if edge.label in self._rules]

    def successors(self, lhs: int) -> List[int]:
        """Nonterminals referenced by the rhs of ``lhs`` (with dups)."""
        return [edge.label for _, edge in self.rhs(lhs).edges()
                if edge.label in self._rules]

    def bottom_up_order(self) -> List[int]:
        """Nonterminals ordered so referenced ones come first.

        This is a topological order of ``≤NT`` reversed: if ``rhs(A)``
        references ``B`` then ``B`` appears before ``A``.  Raises
        :class:`GrammarError` if ``≤NT`` is cyclic (grammar not
        straight-line).
        """
        order: List[int] = []
        state: Dict[int, int] = {}  # 0 = visiting, 1 = done
        for root in self._rules:
            if root in state:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            while stack:
                node, idx = stack[-1]
                if idx == 0:
                    if state.get(node) == 1:
                        stack.pop()
                        continue
                    state[node] = 0
                succ = self.successors(node)
                advanced = False
                while idx < len(succ):
                    child = succ[idx]
                    idx += 1
                    child_state = state.get(child)
                    if child_state == 0:
                        raise GrammarError(
                            "grammar is not straight-line: cyclic "
                            f"nonterminal references around {child}"
                        )
                    if child_state is None:
                        stack[-1] = (node, idx)
                        stack.append((child, 0))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                if state[node] != 1:
                    state[node] = 1
                    order.append(node)
        return order

    def height(self) -> int:
        """Height of ``≤NT``: longest chain of nonterminal references.

        A grammar whose rules contain no nonterminal edges has height 1;
        an empty rule set has height 0.
        """
        depth: Dict[int, int] = {}
        for lhs in self.bottom_up_order():
            children = self.successors(lhs)
            depth[lhs] = 1 + max((depth[c] for c in children), default=0)
        return max(depth.values(), default=0)

    def contribution(self, lhs: int,
                     refs: Optional[Dict[int, int]] = None) -> int:
        """``con(A) = ref(A)·(|rhs(A)| − |handle(A)|) − |rhs(A)|``."""
        if refs is None:
            refs = self.references()
        rhs = self.rhs(lhs)
        return (refs[lhs] * (rhs.total_size - handle_size(rhs.rank))
                - rhs.total_size)

    # ------------------------------------------------------------------
    # Derivation step (shared by pruning, virtual-edge removal, derive)
    # ------------------------------------------------------------------
    def inline_edge(self, host: Hypergraph, edge_id: int,
                    fresh_base: Optional[int] = None) -> List[int]:
        """Apply the rule of ``host``'s edge ``edge_id`` in place.

        Removes the nonterminal edge, copies the right-hand side into
        ``host`` merging external nodes with the edge's attachment, and
        returns the IDs of the newly created edges (in rhs insertion
        order).  ``fresh_base`` optionally forces new node IDs to start
        at a given value (used by the deterministic derivation).
        """
        edge = host.edge(edge_id)
        rhs = self.rhs(edge.label)
        if len(edge.att) != rhs.rank:
            raise GrammarError(
                f"edge rank {len(edge.att)} does not match rule rank "
                f"{rhs.rank} for nonterminal {edge.label}"
            )
        host.remove_edge(edge_id)
        mapping: Dict[int, int] = dict(zip(rhs.ext, edge.att))
        next_id = fresh_base
        for node in sorted(rhs.nodes()):
            if node in mapping:
                continue
            if next_id is None:
                mapping[node] = host.add_node()
            else:
                mapping[node] = host.add_node(next_id)
                next_id += 1
        new_edges = []
        for _, rhs_edge in rhs.edges():
            att = tuple(mapping[n] for n in rhs_edge.att)
            new_edges.append(host.add_edge(rhs_edge.label, att))
        return new_edges

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all SL-HR invariants; raises :class:`GrammarError`.

        Checks: every nonterminal edge in any graph has a rule; edge
        ranks match label ranks; ``≤NT`` is acyclic; rule ranks match
        label ranks.
        """
        for lhs, rhs in self._rules.items():
            if self.alphabet.rank(lhs) != rhs.rank:
                raise GrammarError(
                    f"rule for {lhs}: rank mismatch "
                    f"({self.alphabet.rank(lhs)} vs {rhs.rank})"
                )
        for graph in self._all_graphs():
            for eid, edge in graph.edges():
                if edge.label not in self.alphabet:
                    raise GrammarError(f"edge {eid}: unknown label "
                                       f"{edge.label}")
                if self.alphabet.rank(edge.label) != len(edge.att):
                    raise GrammarError(
                        f"edge {eid}: label {edge.label} has rank "
                        f"{self.alphabet.rank(edge.label)} but "
                        f"{len(edge.att)} attachments"
                    )
                if (self.alphabet.is_nonterminal(edge.label)
                        and edge.label not in self._rules):
                    raise GrammarError(
                        f"edge {eid}: nonterminal {edge.label} has no rule"
                    )
        self.bottom_up_order()  # raises on cycles

    # ------------------------------------------------------------------
    # Derived-graph statistics (no materialization)
    # ------------------------------------------------------------------
    def derived_counts(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Per nonterminal: derived internal-node and terminal-edge counts.

        Returns ``(nodes, edges)`` where ``nodes[A]`` is the number of
        *new* nodes deriving one A-edge creates in total (all levels) and
        ``edges[A]`` the number of terminal edges it derives.  Both are
        computed bottom-up without expanding the grammar — this is what
        makes speed-up queries sublinear in ``val(G)``.
        """
        nodes: Dict[int, int] = {}
        edges: Dict[int, int] = {}
        for lhs in self.bottom_up_order():
            rhs = self._rules[lhs]
            n = rhs.node_size - rhs.rank
            e = 0
            for _, edge in rhs.edges():
                if edge.label in self._rules:
                    n += nodes[edge.label]
                    e += edges[edge.label]
                else:
                    e += 1
            nodes[lhs] = n
            edges[lhs] = e
        return nodes, edges

    def derived_node_size(self) -> int:
        """``|val(G)|_V`` without deriving the graph."""
        nodes, _ = self.derived_counts()
        total = self.start.node_size
        for _, edge in self.start.edges():
            if edge.label in self._rules:
                total += nodes[edge.label]
        return total

    def derived_edge_count(self) -> int:
        """Number of terminal edges of ``val(G)`` without deriving."""
        _, edges = self.derived_counts()
        total = 0
        for _, edge in self.start.edges():
            if edge.label in self._rules:
                total += edges[edge.label]
            else:
                total += 1
        return total

    # ------------------------------------------------------------------
    # Canonical form (used by the binary encoder and the query index)
    # ------------------------------------------------------------------
    def canonicalize(self) -> "SLHRGrammar":
        """Return an equivalent grammar in canonical numbering.

        * start-graph nodes renumbered ``1..m`` in ascending old-ID
          order; edges renumbered ``1..|E|`` sorted by (label,
          attachment) — the order the binary decoder reproduces;
        * every right-hand side renumbered *external-first*: external
          nodes get ``1..rank`` in ``ext`` order (so the order induced
          by the IDs equals the external order, as the paper's rule
          format requires), internal nodes follow in ascending old-ID
          order; edges sorted by (label, attachment) as well.

        ``val`` of the canonical grammar equals ``val`` of the decoded
        binary form node for node, which is what the query modules rely
        on.
        """

        def rebuild(graph: Hypergraph, mapping: Dict[int, int],
                    ext: Tuple[int, ...]) -> Hypergraph:
            result = Hypergraph()
            for _ in range(graph.node_size):
                result.add_node()
            relabeled = sorted(
                (edge.label, tuple(mapping[n] for n in edge.att))
                for _, edge in graph.edges()
            )
            for label, att in relabeled:
                result.add_edge(label, att)
            result.set_external(ext)
            return result

        start_map = {old: new for new, old in
                     enumerate(sorted(self.start.nodes()), start=1)}
        start = rebuild(self.start, start_map,
                        tuple(start_map[n] for n in self.start.ext))
        canonical = SLHRGrammar(self.alphabet, start)
        for lhs, rhs in self._rules.items():
            mapping: Dict[int, int] = {}
            for node in rhs.ext:
                mapping[node] = len(mapping) + 1
            for node in sorted(rhs.nodes()):
                if node not in mapping:
                    mapping[node] = len(mapping) + 1
            canonical.add_rule(
                lhs,
                rebuild(rhs, mapping, tuple(range(1, rhs.rank + 1))),
            )
        return canonical

    def __repr__(self) -> str:
        return (
            f"SLHRGrammar(rules={self.num_rules}, |G|={self.size}, "
            f"start={self.start!r})"
        )
