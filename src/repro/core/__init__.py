"""Core data model and the gRePair algorithm.

Layering within this subpackage (lower layers never import higher ones):

1. :mod:`repro.core.alphabet`, :mod:`repro.core.hypergraph` — the data
   model of section II (ranked alphabets and directed edge-labeled
   hypergraphs with external nodes).
2. :mod:`repro.core.grammar`, :mod:`repro.core.derivation` — SL-HR
   grammars and their (deterministically numbered) derived graph
   ``val(G)``.
3. :mod:`repro.core.digram`, :mod:`repro.core.orders`,
   :mod:`repro.core.occurrences` — digram keys, node orders, and the
   occurrence bookkeeping (bucket priority queue).
4. :mod:`repro.core.repair`, :mod:`repro.core.pruning`,
   :mod:`repro.core.pipeline` — the compression loop, the pruning phase
   and the user-facing ``compress`` entry point.
"""

from repro.core.alphabet import Alphabet, VIRTUAL_LABEL_NAME
from repro.core.derivation import derive
from repro.core.digram import DigramKey, Occurrence
from repro.core.grammar import Rule, SLHRGrammar
from repro.core.hypergraph import Edge, Hypergraph
from repro.core.orders import (
    NODE_ORDERS,
    bfs_order,
    dfs_order,
    fixpoint_order,
    fp_equivalence_classes,
    natural_order,
    node_order,
    random_order,
)
from repro.core.pipeline import CompressionResult, GRePairSettings, compress
from repro.core.repair import ENGINES, CompressionStats, GRePair
from repro.core.streaming import StreamingCompressor

__all__ = [
    "Alphabet",
    "CompressionResult",
    "CompressionStats",
    "DigramKey",
    "ENGINES",
    "Edge",
    "GRePair",
    "GRePairSettings",
    "Hypergraph",
    "NODE_ORDERS",
    "Occurrence",
    "Rule",
    "SLHRGrammar",
    "StreamingCompressor",
    "VIRTUAL_LABEL_NAME",
    "bfs_order",
    "compress",
    "derive",
    "dfs_order",
    "fixpoint_order",
    "fp_equivalence_classes",
    "natural_order",
    "node_order",
    "random_order",
]
