"""Directed edge-labeled hypergraphs with external nodes.

This is the data model of section II of the paper: a hypergraph is a
tuple ``g = (V, E, att, lab, ext)`` where ``att`` maps each edge to a
repetition-free sequence of nodes, ``lab`` assigns each edge a label of
matching rank, and ``ext`` is a repetition-free sequence of *external*
nodes (the interface merged with an edge's attachment when a grammar
rule is applied).

The paper's size measures are implemented exactly:

* node size ``|g|_V = |V|``,
* edge size ``|g|_E`` counts edges of rank <= 2 as 1 and an edge of
  rank r > 2 as r,
* total size ``|g| = |g|_V + |g|_E``.

Nodes and edges are identified by positive integers.  Node IDs can be
arbitrary (the gRePair loop deletes nodes, leaving gaps); the
:meth:`Hypergraph.normalized` helper renumbers to ``1..m`` for the
paper's canonical form, and :func:`repro.core.derivation.derive`
produces the deterministic ``val(G)`` numbering.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import HypergraphError


class Edge(NamedTuple):
    """An immutable hyperedge: a label plus its attachment sequence.

    For a simple directed edge, ``att = (source, target)``.
    """

    label: int
    att: Tuple[int, ...]

    @property
    def rank(self) -> int:
        """Number of attached nodes."""
        return len(self.att)

    @property
    def size(self) -> int:
        """Paper's size contribution: 1 if rank <= 2, else the rank."""
        return 1 if len(self.att) <= 2 else len(self.att)


class Hypergraph:
    """A mutable directed edge-labeled hypergraph.

    Invariants enforced on mutation:

    * every attachment sequence references existing nodes and contains
      no node twice (paper restriction (1)),
    * the external sequence contains no node twice (restriction (2)).

    Restriction (3) — node IDs forming ``{1..m}`` — is *not* enforced on
    every mutation because the compression loop removes nodes; use
    :meth:`normalized` to re-establish it.
    """

    __slots__ = ("_nodes", "_edges", "_incidence", "_ext", "_next_node",
                 "_next_edge")

    def __init__(self) -> None:
        self._nodes: Dict[int, None] = {}
        self._edges: Dict[int, Edge] = {}
        # node -> insertion-ordered set of incident edge IDs
        self._incidence: Dict[int, Dict[int, None]] = {}
        self._ext: Tuple[int, ...] = ()
        self._next_node = 1
        self._next_edge = 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, Sequence[int]]],
        num_nodes: Optional[int] = None,
        ext: Sequence[int] = (),
    ) -> "Hypergraph":
        """Build a graph from ``(label, att)`` pairs.

        Node IDs are taken from the attachments (and ``1..num_nodes`` if
        given), so isolated nodes can be included explicitly.
        """
        graph = cls()
        if num_nodes is not None:
            for node in range(1, num_nodes + 1):
                graph.add_node(node)
        for label, att in edges:
            for node in att:
                if node not in graph._nodes:
                    graph.add_node(node)
            graph.add_edge(label, att)
        graph.set_external(ext)
        return graph

    def add_node(self, node: Optional[int] = None) -> int:
        """Add a node; auto-assigns the next free ID when none given."""
        if node is None:
            node = self._next_node
        if node < 1:
            raise HypergraphError(f"node IDs must be >= 1, got {node}")
        if node in self._nodes:
            raise HypergraphError(f"node {node} already exists")
        self._nodes[node] = None
        self._incidence[node] = {}
        if node >= self._next_node:
            self._next_node = node + 1
        return node

    def add_edge(self, label: int, att: Sequence[int],
                 edge_id: Optional[int] = None) -> int:
        """Add an edge labeled ``label`` attached to ``att``.

        Returns the new edge's ID.  Attachment nodes must exist and be
        pairwise distinct.
        """
        att_tuple = tuple(att)
        if not att_tuple:
            raise HypergraphError("edges must attach to at least one node")
        if len(set(att_tuple)) != len(att_tuple):
            raise HypergraphError(
                f"attachment {att_tuple} contains a node twice"
            )
        for node in att_tuple:
            if node not in self._nodes:
                raise HypergraphError(f"attachment node {node} not in graph")
        if edge_id is None:
            edge_id = self._next_edge
        elif edge_id in self._edges:
            raise HypergraphError(f"edge {edge_id} already exists")
        self._edges[edge_id] = Edge(label, att_tuple)
        for node in att_tuple:
            self._incidence[node][edge_id] = None
        if edge_id >= self._next_edge:
            self._next_edge = edge_id + 1
        return edge_id

    def remove_edge(self, edge_id: int) -> Edge:
        """Remove and return an edge."""
        try:
            edge = self._edges.pop(edge_id)
        except KeyError:
            raise HypergraphError(f"no edge {edge_id}") from None
        for node in edge.att:
            self._incidence[node].pop(edge_id, None)
        return edge

    def remove_node(self, node: int) -> None:
        """Remove an isolated, non-external node."""
        if node not in self._nodes:
            raise HypergraphError(f"no node {node}")
        if self._incidence[node]:
            raise HypergraphError(
                f"node {node} still has {len(self._incidence[node])} "
                "incident edges"
            )
        if node in self._ext:
            raise HypergraphError(f"node {node} is external")
        del self._nodes[node]
        del self._incidence[node]

    def set_external(self, ext: Sequence[int]) -> None:
        """Declare the external-node sequence (paper's ``ext``)."""
        ext_tuple = tuple(ext)
        if len(set(ext_tuple)) != len(ext_tuple):
            raise HypergraphError(f"ext {ext_tuple} contains a node twice")
        for node in ext_tuple:
            if node not in self._nodes:
                raise HypergraphError(f"external node {node} not in graph")
        self._ext = ext_tuple

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def ext(self) -> Tuple[int, ...]:
        """The external-node sequence."""
        return self._ext

    @property
    def rank(self) -> int:
        """Rank of the hypergraph = number of external nodes."""
        return len(self._ext)

    def nodes(self) -> List[int]:
        """All node IDs in insertion order."""
        return list(self._nodes)

    def has_node(self, node: int) -> bool:
        """True if ``node`` exists."""
        return node in self._nodes

    def has_edge(self, edge_id: int) -> bool:
        """True if the edge ID exists."""
        return edge_id in self._edges

    def edge(self, edge_id: int) -> Edge:
        """The :class:`Edge` stored under ``edge_id``."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise HypergraphError(f"no edge {edge_id}") from None

    def edges(self) -> Iterator[Tuple[int, Edge]]:
        """Iterate ``(edge_id, Edge)`` pairs in insertion order."""
        return iter(self._edges.items())

    def edge_ids(self) -> List[int]:
        """All edge IDs in insertion order."""
        return list(self._edges)

    def incident(self, node: int) -> List[int]:
        """IDs of edges incident with ``node`` (insertion order)."""
        try:
            return list(self._incidence[node])
        except KeyError:
            raise HypergraphError(f"no node {node}") from None

    def degree(self, node: int) -> int:
        """Number of incident edges of ``node``."""
        try:
            return len(self._incidence[node])
        except KeyError:
            raise HypergraphError(f"no node {node}") from None

    def is_internal(self, node: int) -> bool:
        """True if ``node`` is not external."""
        return node not in self._ext

    def neighbors(self, node: int) -> List[int]:
        """Distinct nodes sharing an edge with ``node`` (paper's N(v))."""
        seen: Dict[int, None] = {}
        for edge_id in self._incidence[node]:
            for other in self._edges[edge_id].att:
                if other != node:
                    seen[other] = None
        return list(seen)

    def out_neighbors(self, node: int) -> List[int]:
        """Targets of rank-2 edges whose source is ``node``."""
        result = []
        for edge_id in self._incidence[node]:
            edge = self._edges[edge_id]
            if len(edge.att) == 2 and edge.att[0] == node:
                result.append(edge.att[1])
        return result

    def in_neighbors(self, node: int) -> List[int]:
        """Sources of rank-2 edges whose target is ``node``."""
        result = []
        for edge_id in self._incidence[node]:
            edge = self._edges[edge_id]
            if len(edge.att) == 2 and edge.att[1] == node:
                result.append(edge.att[0])
        return result

    # ------------------------------------------------------------------
    # Size metrics (paper section II)
    # ------------------------------------------------------------------
    @property
    def node_size(self) -> int:
        """``|g|_V``: the number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Plain edge count (not the paper's weighted edge size)."""
        return len(self._edges)

    @property
    def edge_size(self) -> int:
        """``|g|_E``: rank-<=2 edges count 1, larger edges their rank."""
        return sum(edge.size for edge in self._edges.values())

    @property
    def total_size(self) -> int:
        """``|g| = |g|_V + |g|_E``."""
        return self.node_size + self.edge_size

    def is_simple(self) -> bool:
        """Paper's simpleness: all edges rank 2, no parallel duplicates."""
        seen = set()
        for edge in self._edges.values():
            if len(edge.att) != 2:
                return False
            key = (edge.label, edge.att)
            if key in seen:
                return False
            seen.add(key)
        return True

    def labels(self) -> List[int]:
        """Distinct edge labels present, in first-seen order."""
        seen: Dict[int, None] = {}
        for edge in self._edges.values():
            seen[edge.label] = None
        return list(seen)

    def edges_with_label(self, label: int) -> List[int]:
        """Edge IDs carrying ``label`` (insertion order)."""
        return [eid for eid, edge in self._edges.items()
                if edge.label == label]

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Hypergraph":
        """Deep copy preserving node/edge IDs and counters."""
        clone = Hypergraph()
        clone._nodes = dict(self._nodes)
        clone._edges = dict(self._edges)
        clone._incidence = {n: dict(inc) for n, inc in
                            self._incidence.items()}
        clone._ext = self._ext
        clone._next_node = self._next_node
        clone._next_edge = self._next_edge
        return clone

    def normalized(self) -> Tuple["Hypergraph", Dict[int, int]]:
        """Renumber nodes to ``1..m`` (paper restriction (3)).

        Nodes are numbered in ascending order of their current IDs.
        Returns the new graph and the old-ID -> new-ID mapping.  Edge IDs
        are renumbered to ``1..|E|`` in insertion order.
        """
        mapping = {old: new for new, old in
                   enumerate(sorted(self._nodes), start=1)}
        clone = Hypergraph()
        for _ in range(len(mapping)):
            clone.add_node()
        for edge in self._edges.values():
            clone.add_edge(edge.label, tuple(mapping[n] for n in edge.att))
        clone.set_external(tuple(mapping[n] for n in self._ext))
        return clone, mapping

    def edge_multiset(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Sorted ``(label, att)`` list — equality modulo edge IDs."""
        return sorted((edge.label, edge.att) for edge in
                      self._edges.values())

    def structurally_equal(self, other: "Hypergraph") -> bool:
        """True if node sets, edge multisets and ext coincide.

        This is equality of the abstract hypergraph, ignoring edge IDs
        and insertion order (but *not* an isomorphism test: node IDs
        must match).
        """
        return (
            set(self._nodes) == set(other._nodes)
            and self._ext == other._ext
            and self.edge_multiset() == other.edge_multiset()
        )

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self.node_size}, edges={self.num_edges}, "
            f"|g|_E={self.edge_size}, rank={self.rank})"
        )
