"""The gRePair compression algorithm (paper section III).

Given a start graph the algorithm repeatedly

1. counts, per digram, a set of non-overlapping occurrences by
   traversing the nodes in a fixed order ``ω`` and greedily pairing the
   incident edges per label combination (the paper's ``Occ(E1, E2)``
   scheme — only O(deg) pairs per node are considered),
2. picks a most frequent digram from the bucket priority queue,
3. replaces every (still valid) occurrence by a fresh nonterminal edge
   and adds the rule ``A -> digram``,
4. updates occurrence lists around the replacement sites.

Two engines implement step 4:

``engine="incremental"`` (default)
    One counting pass seeds the occurrence table; afterwards **no full
    re-count pass is ever performed** (``stats.recount_passes == 0``).
    While the queue drains, occurrence lists only shrink: replacing an
    occurrence surgically releases every overlapping occurrence and
    re-files the affected digram lists in place, and each fresh
    nonterminal edge receives one bounded pairing per attachment node.
    Every node whose pairing state changed — attachment nodes of
    replaced occurrences, nodes of released or newly recorded partner
    edges — is marked *dirty*.  When the queue runs dry the engine
    *settles*: starting from the dirty set it releases every recorded
    occurrence in the affected region (following the cascade of freed
    pairing slots) and re-runs the canonical counting construction on
    exactly those nodes, in ω order, against the per-node
    :class:`~repro.core.occurrences.PairingIndex`.  Outside the
    affected region the greedy counting construction is deterministic
    and its inputs are unchanged, so the kept state coincides with what
    a full pass would rebuild — the settle step realigns exactly like a
    re-count pass while touching only the changed neighborhood.  Drain
    and settle alternate until no active digram remains.

    Externality drift is covered by the same mechanism: a recorded
    occurrence's key can only change when a node's degree crosses the
    :data:`~repro.core.digram.EXT_STABLE_DEGREE` range, degrees only
    change at dirty nodes, and dirty regions are re-keyed from scratch
    when settled.  Stale keys that a drain meets before the next settle
    are caught by revalidation immediately before a replacement, so
    replacements are always sound.

``engine="recount"`` (legacy oracle)
    The seed implementation: the same drain, but the realignment
    between drains is a full counting pass over the whole graph,
    repeated until no active digram remains.  Quadratic-ish on large
    inputs, but an oracle for the incremental engine: the differential
    suite (``tests/test_engine_differential.py``) checks that both
    engines' grammars decompress identically and have near-identical
    sizes.

Every replaced digram strictly decreases the number of edges of the
start graph, and a settle that surfaces no active digram ends the run,
so both engines terminate.

After the main loop, disconnected components are linked with *virtual
edges* and the algorithm restarts on the augmented graph (the paper's
construction) — this is the step that gives version graphs their
near-exponential compression (paper Fig. 13): chains of isomorphic
components become digrams of nonterminal and virtual edges, which then
pair hierarchically.  The added edges shift externality across the
graph, so both engines seed this second phase with one counting pass of
its own; within the phase the incremental engine again maintains the
state purely by deltas (``recount_passes`` counts only *re*-counts
within a phase and stays 0).  The virtual edges are deleted from the
grammar afterwards.  Finally the grammar is pruned
(:mod:`repro.core.pruning`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.alphabet import Alphabet, VIRTUAL_LABEL_NAME
from repro.core.digram import (
    DigramKey,
    Occurrence,
    digram_key,
    occurrence_nodes,
    removal_nodes,
    replacement_attachment,
    rule_graph,
)
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.occurrences import (
    BucketQueue,
    OccurrenceTable,
    PairingIndex,
)
from repro.core.orders import node_order
from repro.core.pruning import prune_grammar
from repro.exceptions import GrammarError
from repro.util.unionfind import UnionFind

#: The available maintenance engines (see module docstring).
ENGINES = ("incremental", "recount")

#: Nodes with more incident edges than this are skipped by the bounded
#: per-replacement update (settle/re-count passes cover them instead).
_UPDATE_DEGREE_CAP = 256


class CompressionStats:
    """Counters filled during a compression run (for reports/tests).

    Attributes
    ----------
    engine:
        Which maintenance engine produced these numbers.
    passes:
        Full counting passes over the whole node order.  The
        incremental engine performs exactly one per phase — the seed of
        the main loop, plus (following the paper, which restarts the
        algorithm on the virtual-edge-augmented graph) one seed for the
        virtual-edge phase; pure streaming ingestion needs none for the
        main loop.
    recount_passes:
        Full counting passes re-run *within* a phase to repair
        occurrence state after replacements — the quadratic-ish
        component the incremental engine eliminates (always 0 there;
        the recount engine re-counts after every drain).
    settle_rounds:
        Incremental settle boundaries (dirty-region realignments).
    nodes_recounted:
        Nodes whose pairing was re-derived during settles — the
        incremental engine's substitute for whole-graph re-counts.
    digrams_replaced / occurrences_replaced:
        Rules introduced and occurrence replacements performed.
    queue_pushes / queue_pops:
        Bucket-queue repositions and successful pops.
    virtual_edges_added / rules_pruned:
        Virtual-edge pass and pruning phase counters.
    """

    def __init__(self, engine: str = "incremental") -> None:
        self.engine = engine
        self.passes = 0
        self.recount_passes = 0
        self.settle_rounds = 0
        self.nodes_recounted = 0
        self.digrams_replaced = 0
        self.occurrences_replaced = 0
        self.queue_pushes = 0
        self.queue_pops = 0
        self.virtual_edges_added = 0
        self.rules_pruned = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the benchmark harness."""
        return dict(self.__dict__)


#: Backwards-compatible alias (pre-incremental name).
GRePairStats = CompressionStats


class GRePair:
    """One compression run over a start graph.

    Parameters
    ----------
    graph:
        The input hypergraph.  It is mutated in place and becomes the
        grammar's start graph; pass a copy to keep the original.
    alphabet:
        Label alphabet of ``graph``; fresh nonterminals are minted here.
    max_rank:
        Maximal digram (hence nonterminal) rank considered; the paper's
        ``maxRank`` parameter (default 4, the paper's recommendation).
    order:
        Node-order name (see :data:`repro.core.orders.NODE_ORDERS`).
    seed:
        Seed for the ``random`` order.
    virtual_edges:
        Enable the disconnected-components pass.
    prune:
        Enable the pruning phase.
    engine:
        Occurrence-maintenance engine: ``"incremental"`` (default; no
        re-count passes) or ``"recount"`` (legacy full-recount oracle).
    """

    def __init__(
        self,
        graph: Hypergraph,
        alphabet: Alphabet,
        max_rank: int = 4,
        order: str = "fp",
        seed: int = 0,
        virtual_edges: bool = True,
        prune: bool = True,
        engine: str = "incremental",
    ) -> None:
        if max_rank < 2:
            raise GrammarError(f"max_rank must be >= 2, got {max_rank}")
        if engine not in ENGINES:
            raise GrammarError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.graph = graph
        self.alphabet = alphabet
        self.max_rank = max_rank
        self.order_name = order
        self.seed = seed
        self.use_virtual_edges = virtual_edges
        self.use_pruning = prune
        self.engine = engine
        self.stats = CompressionStats(engine)
        self._order: List[int] = []
        self._position: Dict[int, int] = {}
        self._grammar: Optional[SLHRGrammar] = None
        # Persistent incremental state (None under engine="recount").
        self._table: Optional[OccurrenceTable] = None
        self._queue: Optional[BucketQueue] = None
        self._index: Optional[PairingIndex] = None
        self._dirty: Dict[int, None] = {}
        self._phase_counted = False
        self._streaming = False

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(self) -> SLHRGrammar:
        """Execute gRePair and return the resulting SL-HR grammar."""
        if self._grammar is not None:
            raise GrammarError("GRePair instances are single-use")
        self._begin()
        self._set_order(node_order(self.graph, self.order_name,
                                   self.seed))
        if self.engine == "recount":
            self._compress_to_fixpoint()
        else:
            self._count_all(self._table, self._queue)
            self._drain_and_settle(self._table, self._queue)
        return self._finish()

    # ------------------------------------------------------------------
    # Streaming entry points (incremental engine only)
    # ------------------------------------------------------------------
    def begin_streaming(self) -> None:
        """Initialize for chunked ingestion instead of :meth:`run`.

        Any edges already present in the graph are seeded with a single
        counting pass; edges ingested later are counted purely locally,
        reusing the same table, queue and pairing index across chunks.
        """
        if self.engine == "recount":
            raise GrammarError(
                "streaming ingestion requires engine='incremental'"
            )
        if self._grammar is not None:
            raise GrammarError("GRePair instances are single-use")
        self._streaming = True
        self._begin()
        if self.graph.num_edges:
            self._set_order(node_order(self.graph, self.order_name,
                                       self.seed))
            self._count_all(self._table, self._queue)

    def ingest_edge(self, label: int, att: Sequence[int]) -> int:
        """Add one edge (creating missing nodes) and count it locally.

        Returns the new edge's ID.  The edge enters the pairing index,
        its endpoints become dirty, and the next :meth:`drain` settles
        the neighborhood — no counting pass over the graph.
        """
        if not self._streaming:
            raise GrammarError("call begin_streaming() before ingesting")
        graph = self.graph
        for node in att:
            if not graph.has_node(node):
                graph.add_node(node)
        edge_id = graph.add_edge(label, att)
        self._index.add(edge_id, graph.edge(edge_id))
        self._queue.resize(graph.num_edges, self._table)
        for node in att:
            self._dirty[node] = None
        return edge_id

    def drain(self) -> bool:
        """Replace every currently active digram (between chunks)."""
        if not self._streaming:
            raise GrammarError("drain() is part of the streaming API")
        return self._drain_and_settle(self._table, self._queue)

    def finish_streaming(self) -> SLHRGrammar:
        """Finalize the stream; returns the grammar.

        The stream is closed, so node degrees are final and
        internal-node digrams (deferred during ingestion) become safe:
        the occurrence state is reseeded with one full-knowledge
        counting pass — a new phase, not a re-count — and drained,
        followed by the usual virtual-edge pass and pruning.
        """
        if not self._streaming:
            raise GrammarError("begin_streaming() was never called")
        self._drain_and_settle(self._table, self._queue)
        self._streaming = False
        for key in self._table.keys():
            self._table.drop_list(key)
        self._dirty = {}
        self._phase_counted = False
        self._set_order(node_order(self.graph, self.order_name,
                                   self.seed))
        self._count_all(self._table, self._queue)
        self._drain_and_settle(self._table, self._queue)
        return self._finish()

    # ------------------------------------------------------------------
    # Run scaffolding
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        self._grammar = SLHRGrammar(self.alphabet, self.graph)
        if self.engine == "incremental":
            self._index = PairingIndex.from_graph(self.graph)
            self._table = OccurrenceTable()
            self._queue = BucketQueue(self.graph.num_edges)

    def _set_order(self, order: List[int]) -> None:
        self._order = order
        self._position = {node: idx for idx, node in enumerate(order)}

    def _finish(self) -> SLHRGrammar:
        if self.use_virtual_edges:
            self._virtual_edge_pass()
        if self.use_pruning:
            self.stats.rules_pruned = prune_grammar(self._grammar)
        if self._queue is not None:
            self._retire_queue(self._queue)
        return self._grammar

    def _retire_queue(self, queue: BucketQueue) -> None:
        """Fold a queue's instrumentation into the run statistics."""
        self.stats.queue_pushes += queue.push_count
        self.stats.queue_pops += queue.pop_count
        queue.push_count = 0
        queue.pop_count = 0

    # ------------------------------------------------------------------
    # Counting (paper step 2)
    # ------------------------------------------------------------------
    def _count_all(self, table: OccurrenceTable,
                   queue: BucketQueue) -> None:
        """One full counting pass over all nodes in ω order.

        The first pass of a phase seeds the occurrence state; any
        further pass within the same phase is a *re-count* — the
        incremental engine never performs one.
        """
        self.stats.passes += 1
        if self._phase_counted:
            self.stats.recount_passes += 1
        self._phase_counted = True
        graph = self.graph
        for node in self._order:
            if graph.has_node(node):
                self._count_around(node, table, queue)

    def _count_around(self, node: int, table: OccurrenceTable,
                      queue: BucketQueue) -> None:
        """Pair the incident edges of ``node`` per label combination.

        Edges are grouped by (label, position of ``node`` in the
        attachment) — the paper treats directions as labels.  Groups are
        paired with each other (zip) and within themselves (split in
        halves, the paper's ``Occ`` construction), skipping edges whose
        partner-label slot is already taken and pairs whose digram rank
        exceeds ``max_rank``.  The incremental engine reads the groups
        from its pairing index; the recount engine derives them from
        the incidence lists (same grouping, same order).
        """
        graph = self.graph
        if self._index is not None:
            types = self._index.groups_at(node)
        else:
            groups: Dict[Tuple[int, int], List[int]] = {}
            for eid in graph.incident(node):
                edge = graph.edge(eid)
                groups.setdefault((edge.label, edge.att.index(node)),
                                  []).append(eid)
            types = sorted(groups.items())
        for i, (type_a, members_a) in enumerate(types):
            label_a = type_a[0]
            for type_b, members_b in types[i:]:
                label_b = type_b[0]
                if type_a == type_b:
                    members = [eid for eid in members_a
                               if table.can_pair(eid, label_a)]
                    half = len(members) // 2
                    pairs = list(zip(members[:half], members[half:]))
                else:
                    first = [eid for eid in members_a
                             if table.can_pair(eid, label_b)]
                    second = [eid for eid in members_b
                              if table.can_pair(eid, label_a)]
                    pairs = list(zip(first, second))
                for eid_a, eid_b in pairs:
                    self._try_record(eid_a, eid_b, table, queue)

    def _try_record(self, eid_a: int, eid_b: int, table: OccurrenceTable,
                    queue: BucketQueue) -> bool:
        """Record the pair as an occurrence if it forms a legal digram.

        While a stream is still open, only fully-external digrams are
        admissible: a replacement of an internal-node digram would
        delete the node, but a later chunk may still reference its ID —
        mid-stream, a node's degree is only a lower bound, so
        internality cannot be decided yet (see :meth:`ingest_edge`).
        """
        graph = self.graph
        if eid_a == eid_b:
            return False
        label_a = graph.edge(eid_a).label
        label_b = graph.edge(eid_b).label
        if not (table.can_pair(eid_a, label_b)
                and table.can_pair(eid_b, label_a)):
            return False
        key, occ, _ = digram_key(graph, eid_a, eid_b)
        if key is None or not 1 <= key.rank <= self.max_rank:
            return False
        if self._streaming and not all(key.ext_flags):
            return False
        olist = table.record(key, occ)
        queue.file(olist)
        return True

    # ------------------------------------------------------------------
    # Replacement (paper steps 3-6), shared by both engines
    # ------------------------------------------------------------------
    def _compress_to_fixpoint(self) -> None:
        """Recount engine: alternate counting passes and replacements."""
        while True:
            table = OccurrenceTable()
            queue = BucketQueue(self.graph.num_edges)
            self._count_all(table, queue)
            progressed = self._drain_queue(table, queue)
            self._retire_queue(queue)
            if not progressed:
                return

    def _drain_and_settle(self, table: OccurrenceTable,
                          queue: BucketQueue) -> bool:
        """Incremental engine: alternate drains and dirty-set settles."""
        progressed = False
        while True:
            progressed |= self._drain_queue(table, queue)
            if not self._settle_dirty(table, queue):
                return progressed

    def _drain_queue(self, table: OccurrenceTable,
                     queue: BucketQueue) -> bool:
        """Replace digrams until the queue empties.

        Returns True if at least one replacement happened (the caller
        then realigns — a full re-count for the recount engine, a
        dirty-region settle for the incremental one — and tries again).
        """
        replaced_any = False
        while True:
            key = queue.pop_most_frequent()
            if key is None:
                return replaced_any
            olist = table.get(key)
            if olist is None:
                continue
            olist.bucket = None
            valid = self._revalidate(key, table, queue)
            if len(valid) < 2:
                # Not active: free its edges so the next realignment
                # can re-pair them differently.
                self._drop_list(key, table)
                continue
            nonterminal = self.alphabet.fresh_nonterminal(key.rank)
            self._grammar.add_rule(nonterminal, rule_graph(key))
            self.stats.digrams_replaced += 1
            for occ in valid:
                if self._replace_occurrence(key, occ, nonterminal,
                                            table, queue):
                    self.stats.occurrences_replaced += 1
                    replaced_any = True
            self._drop_list(key, table)

    def _revalidate(self, key: DigramKey, table: OccurrenceTable,
                    queue: BucketQueue) -> List[Occurrence]:
        """Filter the occurrence list of ``key`` against the live graph.

        Occurrences whose edges vanished are released; occurrences whose
        digram key drifted (externality changed nearby) are re-filed
        under their current key.
        """
        graph = self.graph
        olist = table.get(key)
        if olist is None:
            return []
        valid: List[Occurrence] = []
        for occ in list(olist):
            if not (graph.has_edge(occ.edge_a)
                    and graph.has_edge(occ.edge_b)):
                table.release(key, occ)
                continue
            current, canonical, _ = digram_key(graph, occ.edge_a,
                                               occ.edge_b)
            if current == key:
                valid.append(occ)
                continue
            table.release(key, occ)
            self._mark_occurrence_dirty(occ)
            if (current is not None
                    and 1 <= current.rank <= self.max_rank
                    and (not self._streaming or all(current.ext_flags))
                    and table.can_pair(canonical.edge_a, current.label_b)
                    and table.can_pair(canonical.edge_b, current.label_a)):
                refiled = table.record(current, canonical)
                queue.file(refiled)
        return valid

    def _replace_occurrence(self, key: DigramKey, occ: Occurrence,
                            nonterminal: int, table: OccurrenceTable,
                            queue: BucketQueue) -> bool:
        """Replace one occurrence by a ``nonterminal`` edge.

        Validity is re-checked first: replacing an earlier occurrence of
        the same digram may have changed this one's externality (they
        can share attachment nodes).  Returns True if replaced.
        """
        graph = self.graph
        if not (graph.has_edge(occ.edge_a) and graph.has_edge(occ.edge_b)):
            table.release(key, occ)
            return False
        current, canonical, local = digram_key(graph, occ.edge_a,
                                               occ.edge_b)
        if current != key or canonical != occ:
            table.release(key, occ)
            self._mark_occurrence_dirty(occ)
            if (current is not None
                    and 1 <= current.rank <= self.max_rank
                    and (not self._streaming or all(current.ext_flags))
                    and table.can_pair(canonical.edge_a, current.label_b)
                    and table.can_pair(canonical.edge_b, current.label_a)):
                queue.file(table.record(current, canonical))
            return False
        attachment = replacement_attachment(key, local)
        doomed_nodes = removal_nodes(key, local)
        # Invalidate every other occurrence using these edges (their
        # digram counts drop — paper's update step).
        for eid in occ.edges():
            for affected_key, affected in table.occurrences_of_edge(eid):
                table.release(affected_key, affected)
                self._mark_occurrence_dirty(affected)
                if affected_key != key:
                    stale = table.get(affected_key)
                    if stale is not None:
                        queue.file(stale)
        incremental = self._index is not None
        if incremental:
            for node in attachment:
                self._dirty[node] = None
        removed_a = graph.remove_edge(occ.edge_a)
        removed_b = graph.remove_edge(occ.edge_b)
        for node in doomed_nodes:
            graph.remove_node(node)
            if incremental:
                self._dirty.pop(node, None)
        new_edge = graph.add_edge(nonterminal, attachment)
        if incremental:
            self._index.remove(occ.edge_a, removed_a)
            self._index.remove(occ.edge_b, removed_b)
            self._index.add(new_edge, graph.edge(new_edge))
        self._pair_new_edge(new_edge, table, queue)
        return True

    def _pair_new_edge(self, new_edge: int, table: OccurrenceTable,
                       queue: BucketQueue) -> None:
        """Bounded incremental update around a fresh nonterminal edge.

        For each attachment node (of moderate degree) the new edge is
        offered one pairing with the first compatible incident edge —
        the paper's "first edge in the respective list" selection.
        Anything missed here is recovered by the next realignment.
        """
        graph = self.graph
        incremental = self._index is not None
        for node in graph.edge(new_edge).att:
            if graph.degree(node) > _UPDATE_DEGREE_CAP:
                continue
            for other in graph.incident(node):
                if other == new_edge:
                    continue
                if self._try_record(new_edge, other, table, queue):
                    if incremental:
                        # The partner's slots changed: its other nodes
                        # must realign at the next settle.
                        for touched in graph.edge(other).att:
                            self._dirty[touched] = None
                    break

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def _mark_occurrence_dirty(self, occ: Occurrence) -> None:
        """Dirty the (surviving) nodes of a released occurrence."""
        if self._index is None:
            return
        graph = self.graph
        for eid in occ.edges():
            if graph.has_edge(eid):
                for node in graph.edge(eid).att:
                    self._dirty[node] = None

    def _drop_list(self, key: DigramKey, table: OccurrenceTable) -> None:
        """Drop a digram list, dirtying the nodes of freed edges."""
        olist = table.get(key)
        if olist is None:
            return
        if self._index is not None:
            for occ in list(olist):
                self._mark_occurrence_dirty(occ)
        table.drop_list(key)

    def _settle_dirty(self, table: OccurrenceTable,
                      queue: BucketQueue) -> bool:
        """Realign the dirty region; True if new active digrams emerged.

        Starting from the dirty nodes, every recorded occurrence in the
        affected region is released — freeing a slot changes the free
        edge sets at the partner edge's other nodes, so the region
        closes under that cascade — and the canonical counting
        construction then re-runs on exactly the affected nodes in ω
        order.  Outside the region the deterministic construction would
        reproduce the kept state verbatim, which makes this boundary
        behave like a full re-count pass at a fraction of the cost.
        """
        graph = self.graph
        pending = [node for node in self._dirty if graph.has_node(node)]
        self._dirty = {}
        if not pending:
            return False
        self.stats.settle_rounds += 1
        affected: Dict[int, None] = {}
        emptied: Dict[DigramKey, None] = {}
        while pending:
            node = pending.pop()
            if node in affected or not graph.has_node(node):
                continue
            affected[node] = None
            for eid in graph.incident(node):
                for key, occ in table.occurrences_of_edge(eid):
                    table.release(key, occ)
                    stale = table.get(key)
                    if stale is not None:
                        queue.file(stale)
                        if not len(stale):
                            emptied[key] = None
                    for freed in occurrence_nodes(graph, occ):
                        if freed not in affected:
                            pending.append(freed)
        for key in emptied:
            olist = table.get(key)
            if olist is not None and not len(olist):
                table.drop_list(key)
        for node in self._omega_sorted(affected):
            if graph.has_node(node):
                self.stats.nodes_recounted += 1
                self._count_around(node, table, queue)
        return bool(len(queue))

    def _omega_sorted(self, nodes: Dict[int, None]) -> List[int]:
        """Sort a node set by ω position (pass-consistent alignment).

        Settles visit nodes in the same order a counting pass would, so
        the greedy pairing construction stays aligned with the global
        one.
        """
        position = self._position
        fallback = len(position)
        return sorted(nodes, key=lambda v: position.get(v, fallback))

    # ------------------------------------------------------------------
    # Virtual edges (paper's extra step after the main loop)
    # ------------------------------------------------------------------
    def _virtual_edge_pass(self) -> None:
        """Link components with virtual edges, re-compress, unlink."""
        graph = self.graph
        components = UnionFind(graph.nodes())
        for _, edge in graph.edges():
            first = edge.att[0]
            for other in edge.att[1:]:
                components.union(first, other)
        if components.set_count <= 1:
            return
        virtual = self.alphabet.ensure_terminal(VIRTUAL_LABEL_NAME, rank=2)
        # Chain component representatives in ω order so that isomorphic
        # components (adjacent under the FP order) become neighbors.
        position = self._position
        representatives: Dict[object, int] = {}
        for node in sorted(graph.nodes(), key=lambda v: position[v]):
            root = components.find(node)
            if root not in representatives:
                representatives[root] = node
        chain = list(representatives.values())
        # The virtual edges change externality across the graph, so the
        # paper restarts the algorithm on the augmented graph: this is a
        # fresh phase with its own seed pass (not a re-count).
        self._phase_counted = False
        if self.engine == "incremental":
            for left, right in zip(chain, chain[1:]):
                eid = graph.add_edge(virtual, (left, right))
                self._index.add(eid, graph.edge(eid))
                self.stats.virtual_edges_added += 1
            # Reseed the occurrence state for the new phase; afterwards
            # the drain/settle loop maintains it incrementally again.
            for key in self._table.keys():
                self._table.drop_list(key)
            self._dirty = {}
            self._count_all(self._table, self._queue)
            self._drain_and_settle(self._table, self._queue)
        else:
            for left, right in zip(chain, chain[1:]):
                graph.add_edge(virtual, (left, right))
                self.stats.virtual_edges_added += 1
            self._compress_to_fixpoint()
        self._remove_virtual_edges(virtual)

    def _remove_virtual_edges(self, virtual: int) -> None:
        """Delete virtual edges from the start graph and every rule.

        Deleting a terminal edge from a right-hand side commutes with
        derivation, so ``val(G)`` afterwards is exactly the original
        graph (each derived virtual edge stems from exactly one virtual
        edge in some rule instance or in the start graph).
        """
        grammar = self._grammar
        graphs = [grammar.start] + [rule.rhs for rule in grammar.rules()]
        for host in graphs:
            for eid in host.edges_with_label(virtual):
                host.remove_edge(eid)
