"""The gRePair compression algorithm (paper section III).

Given a start graph the algorithm repeatedly

1. counts, per digram, a set of non-overlapping occurrences by
   traversing the nodes in a fixed order ``ω`` and greedily pairing the
   incident edges per label combination (the paper's ``Occ(E1, E2)``
   scheme — only O(deg) pairs per node are considered),
2. picks a most frequent digram from the bucket priority queue,
3. replaces every (still valid) occurrence by a fresh nonterminal edge
   and adds the rule ``A -> digram``,
4. updates occurrence lists around the replacement sites.

Counting passes are re-run until no active digram remains: the paper's
incremental updates are approximated by (a) pairing each new
nonterminal edge with available neighbor edges immediately (bounded
work per replacement) and (b) full re-counts, which restore any pairing
the bounded updates missed.  Every replaced digram strictly decreases
the number of edges of the start graph, so the loop terminates.

After the main loop, disconnected components are linked with *virtual
edges* and the loop runs again — this is the step that gives version
graphs their near-exponential compression (paper Fig. 13): chains of
isomorphic components become digrams of nonterminal and virtual edges,
which then pair hierarchically.  The virtual edges are deleted from the
grammar afterwards.  Finally the grammar is pruned
(:mod:`repro.core.pruning`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.alphabet import Alphabet, VIRTUAL_LABEL_NAME
from repro.core.digram import (
    DigramKey,
    Occurrence,
    digram_key,
    removal_nodes,
    replacement_attachment,
    rule_graph,
)
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.occurrences import BucketQueue, OccurrenceTable
from repro.core.orders import node_order
from repro.core.pruning import prune_grammar
from repro.exceptions import GrammarError
from repro.util.unionfind import UnionFind

#: Nodes with more incident edges than this are skipped by the bounded
#: per-replacement update (full re-count passes cover them instead).
_UPDATE_DEGREE_CAP = 256


class GRePairStats:
    """Counters filled during a compression run (for reports/tests)."""

    def __init__(self) -> None:
        self.passes = 0
        self.digrams_replaced = 0
        self.occurrences_replaced = 0
        self.virtual_edges_added = 0
        self.rules_pruned = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the benchmark harness."""
        return dict(self.__dict__)


class GRePair:
    """One compression run over a start graph.

    Parameters
    ----------
    graph:
        The input hypergraph.  It is mutated in place and becomes the
        grammar's start graph; pass a copy to keep the original.
    alphabet:
        Label alphabet of ``graph``; fresh nonterminals are minted here.
    max_rank:
        Maximal digram (hence nonterminal) rank considered; the paper's
        ``maxRank`` parameter (default 4, the paper's recommendation).
    order:
        Node-order name (see :data:`repro.core.orders.NODE_ORDERS`).
    seed:
        Seed for the ``random`` order.
    virtual_edges:
        Enable the disconnected-components pass.
    prune:
        Enable the pruning phase.
    """

    def __init__(
        self,
        graph: Hypergraph,
        alphabet: Alphabet,
        max_rank: int = 4,
        order: str = "fp",
        seed: int = 0,
        virtual_edges: bool = True,
        prune: bool = True,
    ) -> None:
        if max_rank < 2:
            raise GrammarError(f"max_rank must be >= 2, got {max_rank}")
        self.graph = graph
        self.alphabet = alphabet
        self.max_rank = max_rank
        self.order_name = order
        self.seed = seed
        self.use_virtual_edges = virtual_edges
        self.use_pruning = prune
        self.stats = GRePairStats()
        self._order: List[int] = []
        self._grammar: Optional[SLHRGrammar] = None

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> SLHRGrammar:
        """Execute gRePair and return the resulting SL-HR grammar."""
        if self._grammar is not None:
            raise GrammarError("GRePair instances are single-use")
        self._grammar = SLHRGrammar(self.alphabet, self.graph)
        self._order = node_order(self.graph, self.order_name, self.seed)
        self._compress_to_fixpoint()
        if self.use_virtual_edges:
            self._virtual_edge_pass()
        if self.use_pruning:
            self.stats.rules_pruned = prune_grammar(self._grammar)
        return self._grammar

    # ------------------------------------------------------------------
    # Counting (paper step 2)
    # ------------------------------------------------------------------
    def _count_all(self, table: OccurrenceTable,
                   queue: BucketQueue) -> None:
        """One full counting pass over all nodes in ω order."""
        graph = self.graph
        for node in self._order:
            if graph.has_node(node):
                self._count_around(node, table, queue)

    def _count_around(self, node: int, table: OccurrenceTable,
                      queue: BucketQueue) -> None:
        """Pair the incident edges of ``node`` per label combination.

        Edges are grouped by (label, position of ``node`` in the
        attachment) — the paper treats directions as labels.  Groups are
        paired with each other (zip) and within themselves (split in
        halves, the paper's ``Occ`` construction), skipping edges whose
        partner-label slot is already taken and pairs whose digram rank
        exceeds ``max_rank``.
        """
        graph = self.graph
        groups: Dict[Tuple[int, int], List[int]] = {}
        for eid in graph.incident(node):
            edge = graph.edge(eid)
            groups.setdefault((edge.label, edge.att.index(node)),
                              []).append(eid)
        types = sorted(groups)
        for i, type_a in enumerate(types):
            label_a = type_a[0]
            for type_b in types[i:]:
                label_b = type_b[0]
                if type_a == type_b:
                    members = [eid for eid in groups[type_a]
                               if table.can_pair(eid, label_a)]
                    half = len(members) // 2
                    pairs = list(zip(members[:half], members[half:]))
                else:
                    first = [eid for eid in groups[type_a]
                             if table.can_pair(eid, label_b)]
                    second = [eid for eid in groups[type_b]
                              if table.can_pair(eid, label_a)]
                    pairs = list(zip(first, second))
                for eid_a, eid_b in pairs:
                    self._try_record(eid_a, eid_b, table, queue)

    def _try_record(self, eid_a: int, eid_b: int, table: OccurrenceTable,
                    queue: BucketQueue) -> bool:
        """Record the pair as an occurrence if it forms a legal digram."""
        graph = self.graph
        if eid_a == eid_b:
            return False
        label_a = graph.edge(eid_a).label
        label_b = graph.edge(eid_b).label
        if not (table.can_pair(eid_a, label_b)
                and table.can_pair(eid_b, label_a)):
            return False
        key, occ, _ = digram_key(graph, eid_a, eid_b)
        if key is None or not 1 <= key.rank <= self.max_rank:
            return False
        olist = table.record(key, occ)
        queue.file(olist)
        return True

    # ------------------------------------------------------------------
    # Replacement (paper steps 3-6)
    # ------------------------------------------------------------------
    def _compress_to_fixpoint(self) -> None:
        """Alternate counting passes and replacements until quiescent."""
        while True:
            self.stats.passes += 1
            table = OccurrenceTable()
            queue = BucketQueue(self.graph.num_edges)
            self._count_all(table, queue)
            if not self._drain_queue(table, queue):
                return

    def _drain_queue(self, table: OccurrenceTable,
                     queue: BucketQueue) -> bool:
        """Replace digrams until the queue empties.

        Returns True if at least one replacement happened (the caller
        then re-counts and tries again).
        """
        replaced_any = False
        while True:
            key = queue.pop_most_frequent()
            if key is None:
                return replaced_any
            olist = table.get(key)
            if olist is None:
                continue
            olist.bucket = None
            valid = self._revalidate(key, table, queue)
            if len(valid) < 2:
                # Not active: free its edges so future passes can
                # re-pair them differently.
                table.drop_list(key)
                continue
            nonterminal = self.alphabet.fresh_nonterminal(key.rank)
            self._grammar.add_rule(nonterminal, rule_graph(key))
            self.stats.digrams_replaced += 1
            for occ in valid:
                if self._replace_occurrence(key, occ, nonterminal,
                                            table, queue):
                    self.stats.occurrences_replaced += 1
                    replaced_any = True
            table.drop_list(key)

    def _revalidate(self, key: DigramKey, table: OccurrenceTable,
                    queue: BucketQueue) -> List[Occurrence]:
        """Filter the occurrence list of ``key`` against the live graph.

        Occurrences whose edges vanished are released; occurrences whose
        digram key drifted (externality changed nearby) are re-filed
        under their current key.
        """
        graph = self.graph
        olist = table.get(key)
        if olist is None:
            return []
        valid: List[Occurrence] = []
        for occ in list(olist):
            if not (graph.has_edge(occ.edge_a)
                    and graph.has_edge(occ.edge_b)):
                table.release(key, occ)
                continue
            current, canonical, _ = digram_key(graph, occ.edge_a,
                                               occ.edge_b)
            if current == key:
                valid.append(occ)
                continue
            table.release(key, occ)
            if (current is not None
                    and 1 <= current.rank <= self.max_rank
                    and table.can_pair(canonical.edge_a, current.label_b)
                    and table.can_pair(canonical.edge_b, current.label_a)):
                refiled = table.record(current, canonical)
                queue.file(refiled)
        return valid

    def _replace_occurrence(self, key: DigramKey, occ: Occurrence,
                            nonterminal: int, table: OccurrenceTable,
                            queue: BucketQueue) -> bool:
        """Replace one occurrence by a ``nonterminal`` edge.

        Validity is re-checked first: replacing an earlier occurrence of
        the same digram may have changed this one's externality (they
        can share attachment nodes).  Returns True if replaced.
        """
        graph = self.graph
        if not (graph.has_edge(occ.edge_a) and graph.has_edge(occ.edge_b)):
            table.release(key, occ)
            return False
        current, canonical, local = digram_key(graph, occ.edge_a,
                                               occ.edge_b)
        if current != key or canonical != occ:
            table.release(key, occ)
            if (current is not None
                    and 1 <= current.rank <= self.max_rank
                    and table.can_pair(canonical.edge_a, current.label_b)
                    and table.can_pair(canonical.edge_b, current.label_a)):
                queue.file(table.record(current, canonical))
            return False
        attachment = replacement_attachment(key, local)
        doomed_nodes = removal_nodes(key, local)
        # Invalidate every other occurrence using these edges (their
        # digram counts drop — paper's update step).
        for eid in occ.edges():
            for affected in table.release_edge(eid):
                if affected != key:
                    stale = table.get(affected)
                    if stale is not None:
                        queue.file(stale)
        graph.remove_edge(occ.edge_a)
        graph.remove_edge(occ.edge_b)
        for node in doomed_nodes:
            graph.remove_node(node)
        new_edge = graph.add_edge(nonterminal, attachment)
        self._pair_new_edge(new_edge, table, queue)
        return True

    def _pair_new_edge(self, new_edge: int, table: OccurrenceTable,
                       queue: BucketQueue) -> None:
        """Bounded incremental update around a fresh nonterminal edge.

        For each attachment node (of moderate degree) the new edge is
        offered one pairing with the first compatible incident edge —
        the paper's "first edge in the respective list" selection.
        Anything missed here is recovered by the next full counting
        pass.
        """
        graph = self.graph
        for node in graph.edge(new_edge).att:
            if graph.degree(node) > _UPDATE_DEGREE_CAP:
                continue
            for other in graph.incident(node):
                if other == new_edge:
                    continue
                if self._try_record(new_edge, other, table, queue):
                    break

    # ------------------------------------------------------------------
    # Virtual edges (paper's extra step after the main loop)
    # ------------------------------------------------------------------
    def _virtual_edge_pass(self) -> None:
        """Link components with virtual edges, re-compress, unlink."""
        graph = self.graph
        components = UnionFind(graph.nodes())
        for _, edge in graph.edges():
            first = edge.att[0]
            for other in edge.att[1:]:
                components.union(first, other)
        if components.set_count <= 1:
            return
        virtual = self.alphabet.ensure_terminal(VIRTUAL_LABEL_NAME, rank=2)
        # Chain component representatives in ω order so that isomorphic
        # components (adjacent under the FP order) become neighbors.
        position = {node: idx for idx, node in enumerate(self._order)}
        representatives: Dict[object, int] = {}
        for node in sorted(graph.nodes(), key=lambda v: position[v]):
            root = components.find(node)
            if root not in representatives:
                representatives[root] = node
        chain = list(representatives.values())
        for left, right in zip(chain, chain[1:]):
            graph.add_edge(virtual, (left, right))
            self.stats.virtual_edges_added += 1
        self._compress_to_fixpoint()
        self._remove_virtual_edges(virtual)

    def _remove_virtual_edges(self, virtual: int) -> None:
        """Delete virtual edges from the start graph and every rule.

        Deleting a terminal edge from a right-hand side commutes with
        derivation, so ``val(G)`` afterwards is exactly the original
        graph (each derived virtual edge stems from exactly one virtual
        edge in some rule instance or in the start graph).
        """
        grammar = self._grammar
        graphs = [grammar.start] + [rule.rhs for rule in grammar.rules()]
        for host in graphs:
            for eid in host.edges_with_label(virtual):
                host.remove_edge(eid)
