"""Grammar pruning (paper section III-A3).

Pruning removes rules that do not pay for themselves.  The measure is

    con(A) = ref(A) * (|rhs(A)| - |handle(A)|) - |rhs(A)|

the change of total grammar size if every A-edge were derived (rule
deleted, each reference replaced by a copy of the right-hand side).
``con(A) > 0`` means deriving would *grow* the grammar, so the rule
contributes to compression and is kept.

Procedure, following the paper (and TreeRePair's bottom-up heuristic):

1. every nonterminal with ``ref(A) <= 1`` is inlined and removed —
   by definition it cannot contribute (a single reference saves
   nothing, an unreferenced rule is dead weight);
2. the remaining nonterminals are visited in bottom-up ``<=NT`` order;
   each with ``con(A) <= 0`` is inlined at all its reference sites and
   removed.  Contributions are recomputed at visit time because earlier
   removals change both ``ref`` and right-hand-side sizes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.core.grammar import SLHRGrammar, handle_size
from repro.core.hypergraph import Hypergraph


def _label_counts(graph: Hypergraph) -> Counter:
    """Multiset of edge labels in ``graph``."""
    counts: Counter = Counter()
    for _, edge in graph.edges():
        counts[edge.label] += 1
    return counts


def _inline_everywhere(grammar: SLHRGrammar, lhs: int,
                       refs: Dict[int, int]) -> None:
    """Inline ``lhs`` at all reference sites, drop its rule, fix refs.

    Inlining at ``r`` sites turns the one stored copy of ``rhs(lhs)``
    into ``r`` copies, so every label ``B`` it contains gains
    ``(r - 1) * count_B`` references; an unreferenced rule (``r = 0``)
    loses them instead.
    """
    rhs = grammar.rhs(lhs)
    counts = _label_counts(rhs)
    r = refs[lhs]
    hosts = [grammar.start] + [rule.rhs for rule in grammar.rules()
                               if rule.lhs != lhs]
    for host in hosts:
        for eid in host.edges_with_label(lhs):
            grammar.inline_edge(host, eid)
    grammar.remove_rule(lhs)
    for label, count in counts.items():
        if label in refs:
            refs[label] += (r - 1) * count
    del refs[lhs]


def prune_grammar(grammar: SLHRGrammar) -> int:
    """Prune ``grammar`` in place; returns the number of rules removed."""
    removed = 0
    refs = grammar.references()

    # Phase 1: drop unreferenced and singly-referenced rules.  Removing
    # a ref-0 rule decreases other refs, which can create new ref<=1
    # rules, so iterate to a fixpoint.
    changed = True
    while changed:
        changed = False
        for lhs in list(grammar.nonterminals()):
            if refs.get(lhs, 0) <= 1:
                _inline_everywhere(grammar, lhs, refs)
                removed += 1
                changed = True

    # Phase 2: bottom-up contribution check.
    for lhs in grammar.bottom_up_order():
        if not grammar.has_rule(lhs):  # removed as part of a cascade
            continue
        rhs = grammar.rhs(lhs)
        contribution = (refs[lhs]
                        * (rhs.total_size - handle_size(rhs.rank))
                        - rhs.total_size)
        if contribution <= 0:
            _inline_everywhere(grammar, lhs, refs)
            removed += 1
    return removed
