"""Ranked alphabets of terminal and nonterminal labels.

Section II of the paper fixes a ranked alphabet ``Sigma = {1, ..., n}``
with a rank for every symbol, and grammars add a disjoint ranked
alphabet ``N`` of nonterminals.  We keep both in one :class:`Alphabet`
object: labels are small integers (compact to encode), each label knows
its rank, whether it is a terminal, and an optional human-readable name
(e.g. an RDF predicate).

Terminals are created up front from the input graph; nonterminals are
minted by gRePair via :meth:`Alphabet.fresh_nonterminal`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.exceptions import GrammarError

#: Reserved name for the virtual edges used to connect disconnected
#: components during the second gRePair pass (paper section III-A).
VIRTUAL_LABEL_NAME = "__virtual__"


class Alphabet:
    """A ranked alphabet holding terminal and nonterminal labels.

    Labels are consecutive integers starting at 1, matching the paper's
    convention ``Sigma = {1, ..., n}``.  Ranks are at least 1; simple
    directed edges have rank 2.
    """

    def __init__(self) -> None:
        self._rank: List[int] = [0]  # index 0 unused; labels start at 1
        self._terminal: List[bool] = [False]
        self._name: List[Optional[str]] = [None]
        self._by_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def add_terminal(self, rank: int = 2, name: Optional[str] = None) -> int:
        """Register a terminal label of the given rank; returns its ID."""
        return self._add(rank, terminal=True, name=name)

    def fresh_nonterminal(self, rank: int) -> int:
        """Mint a new nonterminal label of the given rank."""
        return self._add(rank, terminal=False, name=None)

    def _add(self, rank: int, terminal: bool, name: Optional[str]) -> int:
        if rank < 1:
            raise GrammarError(f"label rank must be >= 1, got {rank}")
        if name is not None and name in self._by_name:
            raise GrammarError(f"duplicate label name {name!r}")
        label = len(self._rank)
        self._rank.append(rank)
        self._terminal.append(terminal)
        self._name.append(name)
        if name is not None:
            self._by_name[name] = label
        return label

    def ensure_terminal(self, name: str, rank: int = 2) -> int:
        """Return the terminal named ``name``, creating it if missing."""
        existing = self._by_name.get(name)
        if existing is not None:
            if self._rank[existing] != rank:
                raise GrammarError(
                    f"label {name!r} already registered with rank "
                    f"{self._rank[existing]}, requested {rank}"
                )
            return existing
        return self.add_terminal(rank, name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of labels (terminals + nonterminals)."""
        return len(self._rank) - 1

    def __iter__(self) -> Iterator[int]:
        return iter(range(1, len(self._rank)))

    def __contains__(self, label: int) -> bool:
        return 1 <= label < len(self._rank)

    def rank(self, label: int) -> int:
        """Rank of ``label``."""
        self._check(label)
        return self._rank[label]

    def is_terminal(self, label: int) -> bool:
        """True if ``label`` is a terminal symbol."""
        self._check(label)
        return self._terminal[label]

    def is_nonterminal(self, label: int) -> bool:
        """True if ``label`` is a nonterminal symbol."""
        return not self.is_terminal(label)

    def name(self, label: int) -> Optional[str]:
        """Human-readable name of ``label`` if one was registered."""
        self._check(label)
        return self._name[label]

    def by_name(self, name: str) -> int:
        """Label ID registered under ``name``; raises if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GrammarError(f"unknown label name {name!r}") from None

    def terminals(self) -> List[int]:
        """All terminal label IDs, ascending."""
        return [label for label in self if self._terminal[label]]

    def nonterminals(self) -> List[int]:
        """All nonterminal label IDs, ascending."""
        return [label for label in self if not self._terminal[label]]

    def max_rank(self) -> int:
        """Largest rank over all labels (0 for an empty alphabet)."""
        return max(self._rank[1:], default=0)

    def _check(self, label: int) -> None:
        if not 1 <= label < len(self._rank):
            raise GrammarError(f"unknown label {label}")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def describe(self, label: int) -> str:
        """A short string for diagnostics, e.g. ``a/2`` or ``N7/3``."""
        name = self.name(label)
        kind = name if name is not None else (
            f"t{label}" if self.is_terminal(label) else f"N{label}"
        )
        return f"{kind}/{self.rank(label)}"

    def copy(self) -> "Alphabet":
        """An independent copy (used by decoders and tests)."""
        clone = Alphabet()
        clone._rank = list(self._rank)
        clone._terminal = list(self._terminal)
        clone._name = list(self._name)
        clone._by_name = dict(self._by_name)
        return clone
