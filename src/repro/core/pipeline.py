"""High-level compression entry point.

:func:`compress` bundles the full gRePair pipeline used by examples,
tests and benchmarks: run the algorithm with a settings object, verify
the grammar, and collect summary statistics (sizes, compression ratio
``|G| / |g|`` as reported in the paper's section IV-C, pass counts).

The binary serialization lives in :mod:`repro.encoding`; this module is
purely about producing the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.repair import CompressionStats, GRePair


@dataclass
class GRePairSettings:
    """Tunable parameters of a gRePair run.

    Defaults follow the paper's recommended configuration
    (``maxRank = 4`` and the FP order, section IV-C) on the incremental
    maintenance engine; ``engine="recount"`` selects the legacy
    full-recount oracle (see :mod:`repro.core.repair`).
    """

    max_rank: int = 4
    order: str = "fp"
    seed: int = 0
    virtual_edges: bool = True
    prune: bool = True
    engine: str = "incremental"

    def describe(self) -> str:
        """Short human-readable parameter summary."""
        return (f"maxRank={self.max_rank}, order={self.order}, "
                f"virtual={self.virtual_edges}, prune={self.prune}, "
                f"engine={self.engine}")


@dataclass
class CompressionResult:
    """Outcome of one :func:`compress` call."""

    grammar: SLHRGrammar
    original_size: int
    original_edges: int
    settings: GRePairSettings
    stats: Dict[str, object] = field(default_factory=dict)
    stats_obj: Optional[CompressionStats] = None

    @property
    def grammar_size(self) -> int:
        """``|G|`` of the produced grammar."""
        return self.grammar.size

    @property
    def size_ratio(self) -> float:
        """``|G| / |g|`` — the paper's grammar-size compression ratio."""
        if self.original_size == 0:
            return 1.0
        return self.grammar.size / self.original_size

    def summary(self) -> str:
        """One-line report used by the examples."""
        return (
            f"|g|={self.original_size} -> |G|={self.grammar_size} "
            f"(ratio {self.size_ratio:.2%}), "
            f"{self.grammar.num_rules} rules, "
            f"{self.stats.get('passes', 0)} passes"
        )


def compress(
    graph: Hypergraph,
    alphabet: Alphabet,
    settings: Optional[GRePairSettings] = None,
    validate: bool = True,
) -> CompressionResult:
    """Compress ``graph`` with gRePair.

    The input graph and alphabet are left untouched: compression works
    on copies (the grammar's start graph is derived from the copy).

    Parameters
    ----------
    graph:
        Input hypergraph (typically simple: rank-2 labeled edges).
    alphabet:
        Its label alphabet.
    settings:
        Algorithm parameters; defaults to the paper's recommendation.
    validate:
        Run the grammar validity check afterwards (cheap; disable only
        in tight benchmark loops).
    """
    if settings is None:
        settings = GRePairSettings()
    original_size = graph.total_size
    original_edges = graph.num_edges
    working = graph.copy()
    working_alphabet = alphabet.copy()
    algorithm = GRePair(
        working,
        working_alphabet,
        max_rank=settings.max_rank,
        order=settings.order,
        seed=settings.seed,
        virtual_edges=settings.virtual_edges,
        prune=settings.prune,
        engine=settings.engine,
    )
    grammar = algorithm.run()
    if validate:
        grammar.validate()
    return CompressionResult(
        grammar=grammar,
        original_size=original_size,
        original_edges=original_edges,
        settings=settings,
        stats=algorithm.stats.as_dict(),
        stats_obj=algorithm.stats,
    )
