"""High-level compression entry point (compatibility shim).

The canonical front door is :class:`repro.api.CompressedGraph` — one
long-lived handle unifying compress, persist, derive and query::

    from repro import CompressedGraph
    handle = CompressedGraph.compress(graph, alphabet)
    handle.save("graph.grpr")
    handle.reach(1, 9)

:func:`compress` predates the facade and is kept for compatibility: it
delegates to :meth:`CompressedGraph.compress` and returns the
:class:`CompressionResult` (sizes, compression ratio ``|G| / |g|`` as
reported in the paper's section IV-C, pass counts) without the handle.
New code should call the facade directly and keep the handle — it owns
the lazily built query index and the serialized container.

:class:`GRePairSettings` lives here and validates eagerly: a typo'd
order or engine fails at construction, not deep inside a compression
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.orders import NODE_ORDERS
from repro.core.repair import ENGINES, CompressionStats
from repro.exceptions import GrammarError, HypergraphError


@dataclass
class GRePairSettings:
    """Tunable parameters of a gRePair run.

    Defaults follow the paper's recommended configuration
    (``maxRank = 4`` and the FP order, section IV-C) on the incremental
    maintenance engine; ``engine="recount"`` selects the legacy
    full-recount oracle (see :mod:`repro.core.repair`).

    Misconfiguration fails eagerly at construction: unknown ``order``
    or ``engine`` names and ``max_rank < 2`` raise immediately instead
    of surfacing from deep inside :class:`repro.core.repair.GRePair`.
    """

    max_rank: int = 4
    order: str = "fp"
    seed: int = 0
    virtual_edges: bool = True
    prune: bool = True
    engine: str = "incremental"

    def __post_init__(self) -> None:
        if self.max_rank < 2:
            raise GrammarError(
                f"max_rank must be >= 2, got {self.max_rank}")
        if self.order not in NODE_ORDERS:
            raise HypergraphError(
                f"unknown node order {self.order!r}; choose from "
                f"{sorted(NODE_ORDERS)}")
        if self.engine not in ENGINES:
            raise GrammarError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINES}")

    def describe(self) -> str:
        """Short human-readable parameter summary."""
        return (f"maxRank={self.max_rank}, order={self.order}, "
                f"virtual={self.virtual_edges}, prune={self.prune}, "
                f"engine={self.engine}")


@dataclass
class CompressionResult:
    """Outcome of one compression run (see also ``CompressedGraph``)."""

    grammar: SLHRGrammar
    original_size: int
    original_edges: int
    settings: GRePairSettings
    stats: Dict[str, object] = field(default_factory=dict)
    stats_obj: Optional[CompressionStats] = None

    @property
    def grammar_size(self) -> int:
        """``|G|`` of the produced grammar."""
        return self.grammar.size

    @property
    def size_ratio(self) -> float:
        """``|G| / |g|`` — the paper's grammar-size compression ratio."""
        if self.original_size == 0:
            return 1.0
        return self.grammar.size / self.original_size

    def summary(self) -> str:
        """One-line report used by the examples."""
        return (
            f"|g|={self.original_size} -> |G|={self.grammar_size} "
            f"(ratio {self.size_ratio:.2%}), "
            f"{self.grammar.num_rules} rules, "
            f"{self.stats.get('passes', 0)} passes"
        )


def compress(
    graph: Hypergraph,
    alphabet: Alphabet,
    settings: Optional[GRePairSettings] = None,
    validate: bool = True,
) -> CompressionResult:
    """Compress ``graph`` with gRePair (compatibility shim).

    Delegates to :meth:`repro.api.CompressedGraph.compress` and returns
    only the :class:`CompressionResult`.  Prefer the facade: it keeps
    the handle that owns persistence and the cached query index.

    The input graph and alphabet are left untouched: compression works
    on copies (the grammar's start graph is derived from the copy).

    Parameters
    ----------
    graph:
        Input hypergraph (typically simple: rank-2 labeled edges).
    alphabet:
        Its label alphabet.
    settings:
        Algorithm parameters; defaults to the paper's recommendation.
    validate:
        Run the grammar validity check afterwards (cheap; disable only
        in tight benchmark loops).
    """
    from repro.api import CompressedGraph
    return CompressedGraph.compress(
        graph, alphabet, settings, validate=validate).result
