"""Node orders for the gRePair occurrence-counting traversal.

Section III-B1 of the paper: the traversal order ``ω`` strongly
influences which non-overlapping occurrence sets the greedy counting
finds.  The paper evaluates

* **natural** — node IDs as given,
* **BFS** — breadth-first traversal order,
* **random** — a random permutation (used in Fig. 14),
* **FP0** — nodes ordered by degree (the 0-th step of FP),
* **FP** — a fixpoint of iterated neighborhood refinement starting from
  the degrees (a 1-dimensional Weisfeiler–Leman color refinement,
  extended to directed labeled hypergraphs as the paper suggests).

We add **DFS** for completeness.  All orders are deterministic: ties
break on node ID, and the random order takes an explicit seed.

The FP refinement also yields the equivalence relation ``≅FP`` whose
class count the paper correlates with compression quality (Fig. 11):
:func:`fp_equivalence_classes`.
"""

from __future__ import annotations

import random as _random
from typing import Callable, Dict, List, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import HypergraphError

#: Safety cap on refinement rounds; 1-WL stabilizes in < |V| rounds.
_MAX_FP_ROUNDS = 100


def natural_order(graph: Hypergraph) -> List[int]:
    """Nodes in ascending ID order (the paper's *natural* order)."""
    return sorted(graph.nodes())


def _traversal_order(graph: Hypergraph, depth_first: bool) -> List[int]:
    order: List[int] = []
    visited = set()
    for root in sorted(graph.nodes()):
        if root in visited:
            continue
        frontier: List[int] = [root]
        visited.add(root)
        head = 0
        while head < len(frontier):
            if depth_first:
                node = frontier.pop()
            else:
                node = frontier[head]
                head += 1
            order.append(node)
            for neighbor in sorted(graph.neighbors(node),
                                   reverse=depth_first):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        if depth_first:
            # frontier was consumed by pops; reset scan position
            head = len(frontier)
    return order


def bfs_order(graph: Hypergraph) -> List[int]:
    """Breadth-first order, restarting at the smallest unvisited node."""
    return _traversal_order(graph, depth_first=False)


def dfs_order(graph: Hypergraph) -> List[int]:
    """Depth-first order, restarting at the smallest unvisited node."""
    return _traversal_order(graph, depth_first=True)


def random_order(graph: Hypergraph, seed: int = 0) -> List[int]:
    """A seeded random permutation of the nodes."""
    nodes = sorted(graph.nodes())
    rng = _random.Random(seed)
    rng.shuffle(nodes)
    return nodes


# ----------------------------------------------------------------------
# FP: fixpoint neighborhood refinement
# ----------------------------------------------------------------------
def _initial_colors(graph: Hypergraph) -> Dict[int, int]:
    """c0(v) = degree of v (paper's starting coloring)."""
    return {node: graph.degree(node) for node in graph.nodes()}


def _refine_once(graph: Hypergraph,
                 colors: Dict[int, int]) -> Tuple[Dict[int, int], int]:
    """One refinement round; returns new colors and class count.

    The paper defines ``f0(v) = (c(v), c(v1), ..., c(vn))`` with
    neighbors sorted by color, then ranks the tuples lexicographically.
    For directed labeled hypergraphs we refine with the sorted multiset
    of *incidence signatures*: per incident edge, its label, the
    position of ``v`` in the attachment, and the colors of the other
    attached nodes in attachment order.  On undirected unlabeled simple
    graphs this degenerates to the paper's definition.
    """
    signatures: Dict[int, Tuple] = {}
    for node in graph.nodes():
        incidences = []
        for eid in graph.incident(node):
            edge = graph.edge(eid)
            position = edge.att.index(node)
            others = tuple(colors[u] for u in edge.att if u != node)
            incidences.append((edge.label, position, others))
        incidences.sort()
        signatures[node] = (colors[node], tuple(incidences))
    ranked = {sig: rank for rank, sig in
              enumerate(sorted(set(signatures.values())), start=1)}
    new_colors = {node: ranked[signatures[node]] for node in signatures}
    return new_colors, len(ranked)


def fixpoint_colors(graph: Hypergraph,
                    iterations: int | None = None) -> Dict[int, int]:
    """FP colors after refinement to a fixpoint (or ``iterations``).

    ``iterations=0`` returns the initial degree coloring (FP0).
    """
    colors = _initial_colors(graph)
    if iterations == 0:
        return colors
    limit = _MAX_FP_ROUNDS if iterations is None else iterations
    previous_classes = len(set(colors.values()))
    for _ in range(limit):
        colors, classes = _refine_once(graph, colors)
        if classes == previous_classes:
            break
        previous_classes = classes
    return colors


def fp_equivalence_classes(graph: Hypergraph) -> int:
    """Number of classes of ``≅FP`` (the paper's ``|[≅FP]|``)."""
    if graph.node_size == 0:
        return 0
    return len(set(fixpoint_colors(graph).values()))


def fixpoint_order(graph: Hypergraph,
                   iterations: int | None = None) -> List[int]:
    """Nodes sorted by FP color (ties by node ID).

    ``iterations=0`` gives the paper's FP0 (degree) order.
    """
    colors = fixpoint_colors(graph, iterations)
    return sorted(graph.nodes(), key=lambda v: (colors[v], v))


def fp0_order(graph: Hypergraph) -> List[int]:
    """Degree order (the paper's FP0)."""
    return fixpoint_order(graph, iterations=0)


#: Registry of named node orders used by the pipeline and benchmarks.
NODE_ORDERS: Dict[str, Callable[..., List[int]]] = {
    "natural": natural_order,
    "bfs": bfs_order,
    "dfs": dfs_order,
    "random": random_order,
    "fp0": fp0_order,
    "fp": fixpoint_order,
}


def node_order(graph: Hypergraph, name: str, seed: int = 0) -> List[int]:
    """Compute the named node order of ``graph``.

    ``seed`` only affects the ``random`` order.
    """
    try:
        factory = NODE_ORDERS[name]
    except KeyError:
        raise HypergraphError(
            f"unknown node order {name!r}; choose from "
            f"{sorted(NODE_ORDERS)}"
        ) from None
    if name == "random":
        return factory(graph, seed=seed)
    return factory(graph)
