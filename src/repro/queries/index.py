"""G-representations: mapping node IDs into the grammar and back.

Section V of the paper: the deterministic numbering of ``val(G)``
(section II) lets a node ID ``x`` be translated into a
*G-representation* — a path ``e0 e1 ... en v`` through the derivation,
where ``e0`` is a nonterminal edge of the start graph, each ``e_{i+1}``
is a nonterminal edge in the right-hand side of ``e_i``'s label, and
``v`` is an internal node of the last right-hand side (or, for
``x <= m``, simply a start-graph node).

Because the nodes of ``val(e_i)`` occupy contiguous ID ranges, the
translation is a binary search over the top-level nonterminal edges
followed by a walk down the rules — ``O(log l + h)`` as in the paper
(``l`` top-level nonterminal edges, ``h`` grammar height).  ``getID``
inverts the mapping in ``O(h)``.

The index requires a *canonical* grammar (see
:meth:`repro.core.SLHRGrammar.canonicalize`): start-graph nodes are
``1..m`` and every right-hand side numbers its external nodes
``1..rank`` first, internal nodes after.  Then the j-th internal node
of an instance with ID base ``b`` is simply ``b + j``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.exceptions import QueryError


class GRepresentation(NamedTuple):
    """A derivation path identifying one node of ``val(G)``.

    ``edges`` is the chain of nonterminal edge IDs (first in the start
    graph, then in successive right-hand sides); ``node`` is a node of
    the last host (internal there unless the path is empty, in which
    case it is a start-graph node).
    """

    edges: Tuple[int, ...]
    node: int


class _RuleInfo(NamedTuple):
    """Precomputed layout of one rule's derived ID block."""

    rank: int
    internal_count: int  # internal nodes of the rhs itself
    derived_count: int   # total new nodes val of one edge creates
    # nonterminal edges of the rhs in edge order:
    # (edge id, label, offset of the child block inside this block)
    children: Tuple[Tuple[int, int, int], ...]


class GrammarIndex:
    """Node-ID index over a canonical SL-HR grammar."""

    def __init__(self, grammar: SLHRGrammar) -> None:
        self.grammar = grammar
        start = grammar.start
        self.m = start.node_size
        derived_nodes, _ = grammar.derived_counts()
        self._derived_nodes = derived_nodes
        self._rule_info: Dict[int, _RuleInfo] = {}
        for lhs in grammar.nonterminals():
            rhs = grammar.rhs(lhs)
            internal = rhs.node_size - rhs.rank
            children: List[Tuple[int, int, int]] = []
            offset = internal
            for eid, edge in sorted(rhs.edges()):
                if grammar.has_rule(edge.label):
                    children.append((eid, edge.label, offset))
                    offset += derived_nodes[edge.label]
            self._rule_info[lhs] = _RuleInfo(
                rank=rhs.rank,
                internal_count=internal,
                derived_count=derived_nodes[lhs],
                children=tuple(children),
            )
        # Top-level nonterminal edges with their block starts.
        self._top_edges: List[Tuple[int, int, int]] = []  # (eid, label, base)
        base = self.m + 1
        for eid, edge in sorted(start.edges()):
            if grammar.has_rule(edge.label):
                self._top_edges.append((eid, edge.label, base))
                base += derived_nodes[edge.label]
        self.total_nodes = base - 1
        self._top_bases = [entry[2] for entry in self._top_edges]

    # ------------------------------------------------------------------
    # ID -> G-representation
    # ------------------------------------------------------------------
    def locate(self, node_id: int) -> GRepresentation:
        """G-representation of ``node_id`` (``O(log l + h)``)."""
        if not 1 <= node_id <= self.total_nodes:
            raise QueryError(
                f"node ID {node_id} out of range 1..{self.total_nodes}"
            )
        if node_id <= self.m:
            return GRepresentation((), node_id)
        position = bisect_right(self._top_bases, node_id) - 1
        eid, label, base = self._top_edges[position]
        path = [eid]
        while True:
            info = self._rule_info[label]
            offset = node_id - base
            if offset < info.internal_count:
                return GRepresentation(tuple(path),
                                       info.rank + 1 + offset)
            for child_eid, child_label, child_offset in info.children:
                child_info = self._rule_info[child_label]
                if (child_offset <= offset
                        < child_offset + child_info.derived_count):
                    path.append(child_eid)
                    base += child_offset
                    label = child_label
                    break
            else:  # pragma: no cover - layout is exhaustive
                raise QueryError(f"node ID {node_id}: inconsistent index")

    # ------------------------------------------------------------------
    # G-representation -> ID
    # ------------------------------------------------------------------
    def get_id(self, edges: Sequence[int], node: int) -> int:
        """ID of the node reached by ``edges`` ending at ``node``.

        ``node`` may be *external* in the last right-hand side: it is
        then resolved through the parent edges (the paper's ``getID``),
        so callers can pass any node of the last host graph.  With an
        empty path, ``node`` is a start-graph node and returned as-is.
        """
        edges = list(edges)
        # Resolve external nodes upward: an external node of the last
        # rhs is the attachment node of the parent edge.
        while edges:
            host = self._host_for(edges[:-1])
            last_edge = host.edge(edges[-1])
            rhs_rank = self._rule_info[last_edge.label].rank
            if node > rhs_rank:
                break  # internal in the last rhs
            node = last_edge.att[node - 1]
            edges.pop()
        if not edges:
            if not 1 <= node <= self.m:
                raise QueryError(f"start-graph node {node} out of range")
            return node
        base = self._block_base(edges)
        last_label = self.label_of_path(edges)
        rank = self._rule_info[last_label].rank
        return base + (node - rank - 1)

    def _host_for(self, edges: Sequence[int]) -> Hypergraph:
        """Host graph addressed by a (possibly empty) edge path."""
        if not edges:
            return self.grammar.start
        return self.grammar.rhs(self.label_of_path(edges))

    def label_of_path(self, edges: Sequence[int]) -> int:
        """Label of the last edge on a nonterminal edge path."""
        host = self.grammar.start
        label: Optional[int] = None
        for eid in edges:
            label = host.edge(eid).label
            host = self.grammar.rhs(label)
        if label is None:
            raise QueryError("empty path has no label")
        return label

    def _block_base(self, edges: Sequence[int]) -> int:
        """First derived ID of the instance addressed by ``edges``."""
        top_eid = edges[0]
        base = None
        label = None
        for eid, lab, start_base in self._top_edges:
            if eid == top_eid:
                base, label = start_base, lab
                break
        if base is None:
            raise QueryError(f"edge {top_eid} is not a top-level "
                             "nonterminal edge")
        for child_eid in edges[1:]:
            info = self._rule_info[label]
            for eid, lab, offset in info.children:
                if eid == child_eid:
                    base += offset
                    label = lab
                    break
            else:
                raise QueryError(
                    f"edge {child_eid} is not a nonterminal edge of "
                    f"rule {label}"
                )
        return base

    # ------------------------------------------------------------------
    # Helpers for the query modules
    # ------------------------------------------------------------------
    def host_of(self, rep: GRepresentation) -> Hypergraph:
        """The host graph containing ``rep.node``."""
        return self._host_for(rep.edges)

    def height(self) -> int:
        """Grammar height (bounds per-step query cost)."""
        return self.grammar.height()
