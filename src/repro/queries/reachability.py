"""Linear-time (s,t)-reachability over SL-HR grammars (Theorem 6).

The paper's algorithm in two parts:

**Skeleton graphs.**  For every nonterminal ``A`` (bottom-up in the
``<=NT`` order) summarize its right-hand side as a relation over its
external nodes: position ``i`` can reach position ``j`` inside
``val(A)``.  The right-hand side is turned into a small digraph —
terminal rank-2 edges directly, nonterminal edges by their (already
computed) skeleton relations — and searched from each external node.
The paper realizes the same information with SCC condensation plus
cycles over external nodes; storing the transitively closed relation
is an equivalent presentation for rank <= maxRank (a small constant)
and keeps the overall precomputation ``O(maxRank * |G|)``.

**Query.**  Locate the G-representations of ``s`` and ``t``.  Walking
the derivation path of ``s`` upward, compute at each level the set of
external positions its exits can reach (the paper's ``E_i``); dually
for ``t`` with reverse search (``F_i``).  The two paths share a common
instance prefix; at *every* shared host — from the divergence point up
to the start graph — test whether the lifted source set reaches the
lifted target set inside that host's skeleton-expanded digraph.  (The
check must run at each shared level, not only in the start graph: a
witness path may live entirely inside a shared instance and never
surface at the top.  Paths that leave a host and re-enter through
context are caught one level up, because the skeleton relations are
transitively closed.)

Every level's search is linear in the host's size and each host is
visited a constant number of times, so a query costs ``O(|G|)`` —
a speed-up proportional to the compression ratio, since BFS on the
decompressed graph costs ``O(|val(G)|)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex


def _expanded_adjacency(
    host: Hypergraph,
    grammar,
    skeletons: Dict[int, FrozenSet[Tuple[int, int]]],
    reverse: bool = False,
) -> Dict[int, List[int]]:
    """Digraph over ``host``'s nodes with nonterminals expanded.

    Terminal rank-2 edges contribute their direction; nonterminal
    edges contribute one arc per pair of their skeleton relation.
    Terminal edges of other ranks are rejected: reachability is defined
    on simple graphs (paper section V).
    """
    adjacency: Dict[int, List[int]] = {node: [] for node in host.nodes()}
    for _, edge in host.edges():
        if grammar.has_rule(edge.label):
            for i, j in skeletons[edge.label]:
                src, dst = edge.att[i], edge.att[j]
                if reverse:
                    src, dst = dst, src
                adjacency[src].append(dst)
            continue
        if len(edge.att) != 2:
            raise QueryError(
                "reachability requires a simple derived graph; found a "
                f"terminal edge of rank {len(edge.att)}"
            )
        src, dst = edge.att
        if reverse:
            src, dst = dst, src
        adjacency[src].append(dst)
    return adjacency


def _search(adjacency: Dict[int, List[int]],
            sources: Iterable[int]) -> Set[int]:
    """Nodes reachable from ``sources`` (inclusive) via BFS."""
    seen: Set[int] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


class ReachabilityQueries:
    """(s,t)-reachability on a :class:`GrammarIndex`."""

    def __init__(self, index: GrammarIndex) -> None:
        self.index = index
        self.grammar = index.grammar
        self._skeletons = self._compute_skeletons()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _compute_skeletons(self) -> Dict[int, FrozenSet[Tuple[int, int]]]:
        skeletons: Dict[int, FrozenSet[Tuple[int, int]]] = {}
        for lhs in self.grammar.bottom_up_order():
            rhs = self.grammar.rhs(lhs)
            adjacency = _expanded_adjacency(rhs, self.grammar, skeletons)
            pairs: Set[Tuple[int, int]] = set()
            for i, ext_node in enumerate(rhs.ext):
                reached = _search(adjacency, [ext_node])
                for j, other in enumerate(rhs.ext):
                    if i != j and other in reached:
                        pairs.add((i, j))
            skeletons[lhs] = frozenset(pairs)
        return skeletons

    def skeleton(self, lhs: int) -> FrozenSet[Tuple[int, int]]:
        """The skeleton relation of nonterminal ``lhs`` (positions)."""
        try:
            return self._skeletons[lhs]
        except KeyError:
            raise QueryError(f"no skeleton for label {lhs}") from None

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """True if ``target_id`` is reachable from ``source_id``."""
        if source_id == target_id:
            return True
        source_rep = self.index.locate(source_id)
        target_rep = self.index.locate(target_id)

        # Longest common instance prefix of the two derivation paths.
        common = 0
        for eu, ev in zip(source_rep.edges, target_rep.edges):
            if eu != ev:
                break
            common += 1

        source_sets = self._lift(source_rep, reverse=False)
        target_sets = self._lift(target_rep, reverse=True)

        # Check every shared host from the divergence point up to S.
        for level in range(common, -1, -1):
            host = self._host_at(source_rep.edges, level)
            adjacency = _expanded_adjacency(host, self.grammar,
                                            self._skeletons)
            reached = _search(adjacency, source_sets[level])
            if reached & set(target_sets[level]):
                return True
        return False

    def _host_at(self, edges: Sequence[int], level: int) -> Hypergraph:
        """Host graph at depth ``level`` along an edge path."""
        return self.index._host_for(edges[:level])

    def _lift(self, rep, reverse: bool) -> List[Set[int]]:
        """Per-level node sets of exits (or entries, reversed).

        ``result[level]`` holds nodes of the host at depth ``level``
        from which the represented node is reachable (``reverse=True``)
        or which are reachable from it (``reverse=False``) through the
        subtree below; one entry per host on the path (depth 0 = S).
        """
        edges = rep.edges
        depth = len(edges)
        sets: List[Set[int]] = [set() for _ in range(depth + 1)]
        sets[depth] = {rep.node}
        for level in range(depth, 0, -1):
            host = self._host_at(edges, level)
            adjacency = _expanded_adjacency(host, self.grammar,
                                            self._skeletons,
                                            reverse=reverse)
            reached = _search(adjacency, sets[level])
            parent_edge_id = edges[level - 1]
            parent_host = self._host_at(edges, level - 1)
            attachment = parent_host.edge(parent_edge_id).att
            sets[level - 1] = {
                attachment[position]
                for position, ext_node in enumerate(host.ext)
                if ext_node in reached
            }
        return sets
