"""Linear-time (s,t)-reachability over SL-HR grammars (Theorem 6).

The paper's algorithm in two parts:

**Skeleton graphs.**  For every nonterminal ``A`` (bottom-up in the
``<=NT`` order) summarize its right-hand side as a relation over its
external nodes: position ``i`` can reach position ``j`` inside
``val(A)``.  The right-hand side is turned into a small digraph —
terminal rank-2 edges directly, nonterminal edges by their (already
computed) skeleton relations — and searched from each external node.
The paper realizes the same information with SCC condensation plus
cycles over external nodes; storing the transitively closed relation
is an equivalent presentation for rank <= maxRank (a small constant)
and keeps the overall precomputation ``O(maxRank * |G|)``.

**Query.**  Locate the G-representations of ``s`` and ``t``.  Walking
the derivation path of ``s`` upward, compute at each level the set of
external positions its exits can reach (the paper's ``E_i``); dually
for ``t`` with reverse search (``F_i``).  The two paths share a common
instance prefix; at *every* shared host — from the divergence point up
to the start graph — test whether the lifted source set reaches the
lifted target set inside that host's skeleton-expanded digraph.  (The
check must run at each shared level, not only in the start graph: a
witness path may live entirely inside a shared instance and never
surface at the top.  Paths that leave a host and re-enter through
context are caught one level up, because the skeleton relations are
transitively closed.)

Every level's search is linear in the host's size and each host is
visited a constant number of times, so a query costs ``O(|G|)`` —
a speed-up proportional to the compression ratio, since BFS on the
decompressed graph costs ``O(|val(G)|)``.

Two kernels implement the searches (see :mod:`repro.queries.kernels`):

* ``"bitmask"`` (default) — every distinct host graph (the start graph
  plus one right-hand side per rule) gets its skeleton-expanded
  adjacency precomputed **once per handle** as integer bit-rows; the
  ``E_i``/``F_i`` level sets and every BFS wave are then AND/OR word
  operations.  A query touches no dict-of-lists construction at all.
* ``"legacy"`` — the original per-query adjacency-dict build and
  set-based BFS, kept as the differential oracle and the baseline the
  bench-regression kernel gate measures against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Set, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex
from repro.queries.kernels import default_kernel, validate_kernel


def _expanded_adjacency(
    host: Hypergraph,
    grammar,
    skeletons: Dict[int, FrozenSet[Tuple[int, int]]],
    reverse: bool = False,
) -> Dict[int, List[int]]:
    """Digraph over ``host``'s nodes with nonterminals expanded.

    Terminal rank-2 edges contribute their direction; nonterminal
    edges contribute one arc per pair of their skeleton relation.
    Terminal edges of other ranks are rejected: reachability is defined
    on simple graphs (paper section V).
    """
    adjacency: Dict[int, List[int]] = {node: [] for node in host.nodes()}
    for _, edge in host.edges():
        if grammar.has_rule(edge.label):
            for i, j in skeletons[edge.label]:
                src, dst = edge.att[i], edge.att[j]
                if reverse:
                    src, dst = dst, src
                adjacency[src].append(dst)
            continue
        if len(edge.att) != 2:
            raise QueryError(
                "reachability requires a simple derived graph; found a "
                f"terminal edge of rank {len(edge.att)}"
            )
        src, dst = edge.att
        if reverse:
            src, dst = dst, src
        adjacency[src].append(dst)
    return adjacency


def _search(adjacency: Dict[int, List[int]],
            sources: Iterable[int]) -> Set[int]:
    """Nodes reachable from ``sources`` (inclusive) via BFS."""
    seen: Set[int] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


class _HostMasks:
    """One host graph's skeleton-expanded adjacency as bit-rows.

    ``fwd[i]`` / ``rev[i]`` are integer bitmasks over the host's local
    bit numbering (``bit_of``); ``ext_bits`` are the bits of the
    external nodes in attachment order.  Built once per host per
    handle; every query after that is pure word arithmetic.
    """

    __slots__ = ("host", "bit_of", "fwd", "rev", "ext_bits",
                 "closure_fwd", "closure_rev")

    def __init__(self, host: Hypergraph, grammar,
                 skeletons: Dict[int, FrozenSet[Tuple[int, int]]]
                 ) -> None:
        self.host = host
        #: Lazily filled per-source-bit transitive-closure rows
        #: (``bit -> reached mask``): a search from a frontier is the
        #: OR of its bits' closures, so repeated searches over one
        #: host — the shape of every batch — pay each BFS once.
        self.closure_fwd: Dict[int, int] = {}
        self.closure_rev: Dict[int, int] = {}
        nodes = sorted(host.nodes())
        bit_of = {node: bit for bit, node in enumerate(nodes)}
        self.bit_of = bit_of
        fwd = [0] * len(nodes)
        rev = [0] * len(nodes)
        for _, edge in host.edges():
            if grammar.has_rule(edge.label):
                att = edge.att
                for i, j in skeletons[edge.label]:
                    src, dst = bit_of[att[i]], bit_of[att[j]]
                    fwd[src] |= 1 << dst
                    rev[dst] |= 1 << src
                continue
            if len(edge.att) != 2:
                raise QueryError(
                    "reachability requires a simple derived graph; "
                    f"found a terminal edge of rank {len(edge.att)}"
                )
            src, dst = bit_of[edge.att[0]], bit_of[edge.att[1]]
            fwd[src] |= 1 << dst
            rev[dst] |= 1 << src
        self.fwd = fwd
        self.rev = rev
        self.ext_bits = tuple(bit_of[node] for node in host.ext)


def _search_bits(rows: List[int], frontier: int) -> int:
    """Bits reachable from ``frontier`` (inclusive) via wave BFS.

    Each wave ORs the rows of the frontier's set bits — one word
    operation per machine word instead of one set insertion per node.
    """
    seen = frontier
    while frontier:
        union = 0
        while frontier:
            low = frontier & -frontier
            union |= rows[low.bit_length() - 1]
            frontier &= frontier - 1
        frontier = union & ~seen
        seen |= frontier
    return seen


class ReachabilityQueries:
    """(s,t)-reachability on a :class:`GrammarIndex`.

    ``kernel`` selects the traversal implementation (``"bitmask"`` /
    ``"legacy"``); ``None`` takes the process default from
    :mod:`repro.queries.kernels`.  Answers are identical either way —
    the differential suite holds that line.
    """

    def __init__(self, index: GrammarIndex,
                 kernel: Optional[str] = None) -> None:
        self.index = index
        self.grammar = index.grammar
        self.kernel = (default_kernel() if kernel is None
                       else validate_kernel(kernel))
        #: Per-host bit-row cache: ``None`` keys the start graph, a
        #: nonterminal label keys its right-hand side.  Rule hosts are
        #: populated eagerly by the skeleton pass (they are needed
        #: bottom-up anyway); the start graph joins on first query.
        self._masks: Dict[Optional[int], _HostMasks] = {}
        self._skeletons: Dict[int, FrozenSet[Tuple[int, int]]] = {}
        self._compute_skeletons()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _masks_for(self, label: Optional[int]) -> _HostMasks:
        """The (cached) bit-rows of one host graph."""
        masks = self._masks.get(label)
        if masks is None:
            host = (self.grammar.start if label is None
                    else self.grammar.rhs(label))
            masks = _HostMasks(host, self.grammar, self._skeletons)
            self._masks[label] = masks
        return masks

    def _compute_skeletons(self) -> None:
        bitmask = self.kernel == "bitmask"
        for lhs in self.grammar.bottom_up_order():
            rhs = self.grammar.rhs(lhs)
            pairs: Set[Tuple[int, int]] = set()
            if bitmask:
                masks = self._masks_for(lhs)
                ext_bits = masks.ext_bits
                for i, bit in enumerate(ext_bits):
                    reached = self._reach_bits(masks, False, 1 << bit)
                    for j, other in enumerate(ext_bits):
                        if i != j and reached >> other & 1:
                            pairs.add((i, j))
            else:
                adjacency = _expanded_adjacency(rhs, self.grammar,
                                                self._skeletons)
                for i, ext_node in enumerate(rhs.ext):
                    reached = _search(adjacency, [ext_node])
                    for j, other in enumerate(rhs.ext):
                        if i != j and other in reached:
                            pairs.add((i, j))
            self._skeletons[lhs] = frozenset(pairs)

    def skeleton(self, lhs: int) -> FrozenSet[Tuple[int, int]]:
        """The skeleton relation of nonterminal ``lhs`` (positions)."""
        try:
            return self._skeletons[lhs]
        except KeyError:
            raise QueryError(f"no skeleton for label {lhs}") from None

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """True if ``target_id`` is reachable from ``source_id``."""
        if source_id == target_id:
            return True
        source_rep = self.index.locate(source_id)
        target_rep = self.index.locate(target_id)

        # Longest common instance prefix of the two derivation paths.
        common = 0
        for eu, ev in zip(source_rep.edges, target_rep.edges):
            if eu != ev:
                break
            common += 1

        if self.kernel == "bitmask":
            return self._reachable_bits(source_rep, target_rep, common)

        source_sets = self._lift(source_rep, reverse=False)
        target_sets = self._lift(target_rep, reverse=True)

        # Check every shared host from the divergence point up to S.
        for level in range(common, -1, -1):
            host = self._host_at(source_rep.edges, level)
            adjacency = _expanded_adjacency(host, self.grammar,
                                            self._skeletons)
            reached = _search(adjacency, source_sets[level])
            if reached & set(target_sets[level]):
                return True
        return False

    # -- bitmask kernel -------------------------------------------------
    @staticmethod
    def _reach_bits(masks: _HostMasks, reverse: bool,
                    frontier: int) -> int:
        """Bits reachable from ``frontier`` through one host's rows.

        Decomposes the frontier into single bits and ORs their cached
        transitive-closure rows, filling the cache by wave BFS on the
        first search from each bit.  Reachability is union-
        decomposable, so the OR equals one BFS from the whole
        frontier — but across a batch every host pays each source bit
        at most once, which is where the ≥5x batch speed-up over the
        per-query set kernel comes from.
        """
        cache = masks.closure_rev if reverse else masks.closure_fwd
        rows = masks.rev if reverse else masks.fwd
        reached = 0
        while frontier:
            low = frontier & -frontier
            frontier &= frontier - 1
            bit = low.bit_length() - 1
            hit = cache.get(bit)
            if hit is None:
                hit = _search_bits(rows, low)
                cache[bit] = hit
            reached |= hit
        return reached

    def _labels_along(self, edges: Sequence[int]
                      ) -> List[Optional[int]]:
        """Host labels per level: ``[None, label_1, ..., label_n]``."""
        labels: List[Optional[int]] = [None]
        host = self.grammar.start
        for eid in edges:
            label = host.edge(eid).label
            labels.append(label)
            host = self.grammar.rhs(label)
        return labels

    def _reachable_bits(self, source_rep, target_rep,
                        common: int) -> bool:
        source_labels = self._labels_along(source_rep.edges)
        target_labels = self._labels_along(target_rep.edges)
        source_sets = self._lift_bits(source_rep, source_labels,
                                      reverse=False)
        target_sets = self._lift_bits(target_rep, target_labels,
                                      reverse=True)
        # The shared prefix means shared hosts (hence one bit space)
        # per level up to the divergence point.
        for level in range(common, -1, -1):
            masks = self._masks_for(source_labels[level])
            reached = self._reach_bits(masks, False, source_sets[level])
            if reached & target_sets[level]:
                return True
        return False

    def _lift_bits(self, rep, labels: Sequence[Optional[int]],
                   reverse: bool) -> List[int]:
        """Per-level bitmasks of exits (or entries, reversed).

        The bitmask twin of :meth:`_lift`: ``result[level]`` is a mask
        in the level host's bit space, holding the nodes from which
        the represented node is reachable (``reverse=True``) or which
        are reachable from it (``reverse=False``) through the subtree
        below.
        """
        edges = rep.edges
        depth = len(edges)
        sets = [0] * (depth + 1)
        masks = self._masks_for(labels[depth])
        sets[depth] = 1 << masks.bit_of[rep.node]
        for level in range(depth, 0, -1):
            reached = self._reach_bits(masks, reverse, sets[level])
            parent = self._masks_for(labels[level - 1])
            attachment = parent.host.edge(edges[level - 1]).att
            lifted = 0
            for position, bit in enumerate(masks.ext_bits):
                if reached >> bit & 1:
                    lifted |= 1 << parent.bit_of[attachment[position]]
            sets[level - 1] = lifted
            masks = parent
        return sets

    # -- legacy kernel --------------------------------------------------
    def _host_at(self, edges: Sequence[int], level: int) -> Hypergraph:
        """Host graph at depth ``level`` along an edge path."""
        return self.index._host_for(edges[:level])

    def _lift(self, rep, reverse: bool) -> List[Set[int]]:
        """Per-level node sets of exits (or entries, reversed).

        ``result[level]`` holds nodes of the host at depth ``level``
        from which the represented node is reachable (``reverse=True``)
        or which are reachable from it (``reverse=False``) through the
        subtree below; one entry per host on the path (depth 0 = S).
        """
        edges = rep.edges
        depth = len(edges)
        sets: List[Set[int]] = [set() for _ in range(depth + 1)]
        sets[depth] = {rep.node}
        for level in range(depth, 0, -1):
            host = self._host_at(edges, level)
            adjacency = _expanded_adjacency(host, self.grammar,
                                            self._skeletons,
                                            reverse=reverse)
            reached = _search(adjacency, sets[level])
            parent_edge_id = edges[level - 1]
            parent_host = self._host_at(edges, level - 1)
            attachment = parent_host.edge(parent_edge_id).att
            sets[level - 1] = {
                attachment[position]
                for position, ext_node in enumerate(host.ext)
                if ext_node in reached
            }
        return sets
