"""One-pass "speed-up" functions over the grammar (paper section V).

Courcelle–Mosbah-style *compatible* functions can be evaluated in one
bottom-up pass through an SL-HR grammar.  The paper lists counting
connected components among the well-known CMSO functions; we implement
it (plus node/edge counting, which the grammar supports directly via
:meth:`repro.core.SLHRGrammar.derived_counts`).

For every nonterminal the pass summarizes its right-hand side as

* a partition of the external nodes into undirected-connectivity
  classes (considering the subgraph ``val(A)``), and
* the number of connected components of ``val(A)`` that touch no
  external node (these are finished — nothing above can merge them).

A nonterminal edge in a host contributes its child partition (merging
the attached host nodes accordingly) and its closed-component count.
Evaluating the summary on the start graph yields the number of
connected components of ``val(G)`` in ``O(|G| alpha)`` — exponentially
faster than union-find over the decompressed graph when compression is
exponential.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.util.unionfind import UnionFind


class _Summary:
    """Connectivity summary of one rule: ext partition + closed count."""

    __slots__ = ("blocks", "closed")

    def __init__(self, blocks: List[Tuple[int, ...]], closed: int) -> None:
        #: Partition of external *positions* into connectivity classes.
        self.blocks = blocks
        #: Components of val(A) containing no external node.
        self.closed = closed


def _summarize(host: Hypergraph, grammar: SLHRGrammar,
               summaries: Dict[int, _Summary]) -> Tuple[UnionFind, int]:
    """Union-find over ``host`` nodes with nonterminals expanded.

    Returns the union-find and the total count of closed components
    contributed by nonterminal edges below this host.
    """
    components = UnionFind(host.nodes())
    closed_below = 0
    for _, edge in host.edges():
        if grammar.has_rule(edge.label):
            summary = summaries[edge.label]
            closed_below += summary.closed
            for block in summary.blocks:
                anchor = edge.att[block[0]]
                for position in block[1:]:
                    components.union(anchor, edge.att[position])
        else:
            anchor = edge.att[0]
            for node in edge.att[1:]:
                components.union(anchor, node)
    return components, closed_below


class ComponentQueries:
    """Connected-component counting without decompression."""

    def __init__(self, grammar: SLHRGrammar) -> None:
        self.grammar = grammar
        self._summaries = self._compute_summaries()

    def _compute_summaries(self) -> Dict[int, _Summary]:
        summaries: Dict[int, _Summary] = {}
        for lhs in self.grammar.bottom_up_order():
            rhs = self.grammar.rhs(lhs)
            components, closed_below = _summarize(rhs, self.grammar,
                                                  summaries)
            ext_positions: Dict[int, List[int]] = {}
            ext_roots = set()
            for position, node in enumerate(rhs.ext):
                root = components.find(node)
                ext_positions.setdefault(root, []).append(position)
                ext_roots.add(root)
            closed = closed_below
            for node in rhs.nodes():
                root = components.find(node)
                if root == node and root not in ext_roots:
                    closed += 1
            blocks = [tuple(positions) for positions in
                      ext_positions.values()]
            summaries[lhs] = _Summary(blocks, closed)
        return summaries

    def connected_components(self) -> int:
        """Number of connected components of ``val(G)``."""
        start = self.grammar.start
        components, closed_below = _summarize(start, self.grammar,
                                              self._summaries)
        return components.set_count + closed_below

    def node_count(self) -> int:
        """``|val(G)|_V`` (derived, not materialized)."""
        return self.grammar.derived_node_size()

    def edge_count(self) -> int:
        """Number of terminal edges of ``val(G)``."""
        return self.grammar.derived_edge_count()
