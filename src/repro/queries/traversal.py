"""Graph algorithms running directly on the compressed representation.

Paper section V: "Using [neighborhood queries], any arbitrary graph
algorithm can be performed on the compressed representation given by
an SL-HR grammar" — at the price of a slow-down per edge traversal.
This module provides the standard traversals as library functions so
downstream users do not have to re-derive them:

* :func:`bfs_distances` — single-source hop distances,
* :func:`shortest_path` — an actual node path (BFS parents),
* :func:`degree_histogram` — out-degree distribution,
* :func:`count_triangles` — directed triangle count (a classic
  neighborhood-only analytics kernel).

All operate purely through :class:`GrammarQueries` neighborhoods; none
materialize ``val(G)``.

Frontier bookkeeping uses flat ``bytearray`` visited rows indexed by
node ID (IDs are dense, ``1..node_count``) instead of hashed sets —
membership is one byte load, and the row is allocated once per
traversal.  Results are unchanged.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Optional

from repro.exceptions import QueryError
from repro.queries import GrammarQueries


def bfs_distances(queries: GrammarQueries, source: int,
                  max_hops: Optional[int] = None) -> Dict[int, int]:
    """Hop distances from ``source`` along directed edges."""
    total = queries.node_count()
    if not 1 <= source <= total:
        raise QueryError(f"source {source} out of range 1..{total}")
    distances = {source: 0}
    seen = bytearray(total + 1)
    seen[source] = 1
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_hops is not None and depth >= max_hops:
            continue
        for succ in queries.out_neighbors(node):
            if not seen[succ]:
                seen[succ] = 1
                distances[succ] = depth + 1
                frontier.append(succ)
    return distances


def shortest_path(queries: GrammarQueries, source: int,
                  target: int) -> Optional[List[int]]:
    """A shortest directed path (as node IDs), or None."""
    total = queries.node_count()
    for endpoint in (source, target):
        if not 1 <= endpoint <= total:
            raise QueryError(f"node {endpoint} out of range 1..{total}")
    if source == target:
        return [source]
    parents: Dict[int, int] = {source: source}
    seen = bytearray(total + 1)
    seen[source] = 1
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ in queries.out_neighbors(node):
            if seen[succ]:
                continue
            seen[succ] = 1
            parents[succ] = node
            if succ == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            frontier.append(succ)
    return None


def degree_histogram(queries: GrammarQueries) -> Counter:
    """Out-degree -> node count over all of ``val(G)``."""
    histogram: Counter = Counter()
    for node in range(1, queries.node_count() + 1):
        histogram[len(queries.out_neighbors(node))] += 1
    return histogram


def count_triangles(queries: GrammarQueries) -> int:
    """Number of directed triangles u -> v -> w -> u."""
    triangles = 0
    total = queries.node_count()
    for u in range(1, total + 1):
        for v in queries.out_neighbors(u):
            for w in queries.out_neighbors(v):
                if w != u and u in queries.out_neighbors(w):
                    triangles += 1
    return triangles // 3
