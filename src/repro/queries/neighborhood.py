"""Neighborhood queries over the grammar (paper section V, Prop. 4).

Given a node ID of ``val(G)``, compute its in-/out-/undirected
neighbors without decompressing: locate the node's G-representation,
then inspect the edges incident with it in its host graph.  Terminal
edges yield neighbors directly (internal neighbors by ID arithmetic,
external neighbors through ``getID``); a nonterminal edge incident at
attachment position ``p`` delegates to the recursive
``getNeighboring(e, p)`` of the paper, which walks *down* the rule for
the neighbors its derivation produces.

Runtime is ``O(log l + n·h)`` for ``n`` neighbors, matching
Proposition 4.

Directions apply to rank-2 terminal edges; the ``direction``
parameter selects outgoing (``att = (v, u)``), incoming
(``att = (u, v)``) or any incidence (which also covers terminal
hyperedges, should the input contain any).

With the default ``"bitmask"`` traversal kernel (see
:mod:`repro.queries.kernels`) the recursive descent is *memoized per
rule*: the terminal targets reachable from ``(label, position,
direction)`` depend only on the rule structure, never on the instance,
so they are flattened once into ``(relative edge path, node)`` pairs
and every later query over any instance of that rule replays the flat
list (one ``getID`` per neighbor) instead of re-walking the rule
graphs.  The ``"legacy"`` kernel keeps the original walk as the
differential oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.hypergraph import Edge
from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex
from repro.queries.kernels import default_kernel, validate_kernel


def _terminal_targets(edge: Edge, position: int,
                      direction: str) -> Iterable[int]:
    """Attachment positions adjacent to ``position`` on a terminal edge."""
    if direction == "out":
        if len(edge.att) == 2 and position == 0:
            yield 1
    elif direction == "in":
        if len(edge.att) == 2 and position == 1:
            yield 0
    elif direction == "any":
        for other in range(len(edge.att)):
            if other != position:
                yield other
    else:
        raise QueryError(f"unknown direction {direction!r}")


class NeighborhoodQueries:
    """In/out/any neighborhood evaluation on a :class:`GrammarIndex`."""

    def __init__(self, index: GrammarIndex,
                 kernel: Optional[str] = None) -> None:
        self.index = index
        self.grammar = index.grammar
        self.kernel = (default_kernel() if kernel is None
                       else validate_kernel(kernel))
        #: ``(label, position, direction)`` -> flattened descent:
        #: ``((relative edge path, target node), ...)``.
        self._descent_memo: Dict[Tuple[int, int, str],
                                 Tuple[Tuple[Tuple[int, ...], int],
                                       ...]] = {}
        #: Labeled twin: targets carry their terminal edge label.
        self._labeled_memo: Dict[Tuple[int, int],
                                 Tuple[Tuple[Tuple[int, ...], int, int],
                                       ...]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        """IDs of nodes reachable over one outgoing edge (``N+``)."""
        return self._neighbors(node_id, "out")

    def in_neighbors(self, node_id: int) -> List[int]:
        """IDs of nodes with an edge into ``node_id`` (``N-``)."""
        return self._neighbors(node_id, "in")

    def neighbors(self, node_id: int) -> List[int]:
        """Undirected neighborhood ``N(v)`` (any shared edge)."""
        return self._neighbors(node_id, "any")

    def out_edges(self, node_id: int) -> List[Tuple[int, int]]:
        """Labeled outgoing edges: sorted ``(label, target)`` pairs.

        The labeled variant of :meth:`out_neighbors` (same descent,
        same cost bound), keeping each edge's terminal label — the
        adjacency the RPQ product-automaton BFS steps on.  Parallel
        edges with the same label collapse; self-loops are included
        (a labeled self-loop can change the automaton state without
        leaving the node).
        """
        rep = self.index.locate(node_id)
        host = self.index.host_of(rep)
        result: Set[Tuple[int, int]] = set()
        path = list(rep.edges)
        for eid in host.incident(rep.node):
            edge = host.edge(eid)
            for position, node in enumerate(edge.att):
                if node != rep.node:
                    continue
                if self.grammar.has_rule(edge.label):
                    self._descend_labeled(path + [eid], position,
                                          result)
                elif len(edge.att) == 2 and position == 0:
                    result.add((edge.label,
                                self.index.get_id(path, edge.att[1])))
        return sorted(result)

    # ------------------------------------------------------------------
    # Implementation
    # ------------------------------------------------------------------
    def _neighbors(self, node_id: int, direction: str) -> List[int]:
        rep = self.index.locate(node_id)
        host = self.index.host_of(rep)
        result: Set[int] = set()
        path = list(rep.edges)
        for eid in host.incident(rep.node):
            edge = host.edge(eid)
            position = edge.att.index(rep.node)
            if self.grammar.has_rule(edge.label):
                self._descend(path + [eid], position, direction, result)
            else:
                for target in _terminal_targets(edge, position, direction):
                    result.add(self.index.get_id(path,
                                                 edge.att[target]))
        result.discard(node_id)
        return sorted(result)

    def _descend(self, path_to_edge: List[int], position: int,
                 direction: str, result: Set[int]) -> None:
        """The paper's ``getNeighboring(e, p)``: neighbors inside val(e).

        ``path_to_edge`` addresses the nonterminal edge instance (its
        last element is the edge itself); ``position`` is the
        attachment position of the queried node.  Iterative with an
        explicit stack (grammar height can be large).

        The bitmask kernel replays the rule's memoized flat target
        list instead (one walk per ``(label, position, direction)``
        per handle lifetime); answers are identical.
        """
        if self.kernel == "bitmask":
            label = self.index.label_of_path(path_to_edge)
            get_id = self.index.get_id
            for suffix, node in self._descent_targets(label, position,
                                                      direction):
                result.add(get_id(path_to_edge + list(suffix), node))
            return
        stack: List[Tuple[List[int], int]] = [(path_to_edge, position)]
        while stack:
            path, pos = stack.pop()
            label = self.index.label_of_path(path)
            rhs = self.grammar.rhs(label)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                local_pos = edge.att.index(entry)
                if self.grammar.has_rule(edge.label):
                    stack.append((path + [eid], local_pos))
                    continue
                for target in _terminal_targets(edge, local_pos,
                                                direction):
                    result.add(self.index.get_id(path,
                                                 edge.att[target]))

    def _descent_targets(self, label: int, position: int,
                         direction: str
                         ) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
        """Flattened descent of one rule: ``(edge path, node)`` pairs.

        Instance-independent: the relative edge path is appended to
        the instance's own path and resolved through ``getID``.
        Nested nonterminals reuse their own memo entries (prefixed),
        so a rule's flat list is assembled from its children's.
        """
        key = (label, position, direction)
        cached = self._descent_memo.get(key)
        if cached is not None:
            return cached
        targets: List[Tuple[Tuple[int, ...], int]] = []
        stack: List[Tuple[Tuple[int, ...], int, int]] = \
            [((), label, position)]
        while stack:
            suffix, lab, pos = stack.pop()
            rhs = self.grammar.rhs(lab)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                local_pos = edge.att.index(entry)
                if self.grammar.has_rule(edge.label):
                    child = self._descent_memo.get(
                        (edge.label, local_pos, direction))
                    if child is not None:
                        targets.extend((suffix + (eid,) + sub, node)
                                       for sub, node in child)
                    else:
                        stack.append((suffix + (eid,), edge.label,
                                      local_pos))
                    continue
                for target in _terminal_targets(edge, local_pos,
                                                direction):
                    targets.append((suffix, edge.att[target]))
        flat = tuple(targets)
        self._descent_memo[key] = flat
        return flat

    def _descend_labeled(self, path_to_edge: List[int], position: int,
                         result: Set[Tuple[int, int]]) -> None:
        """``getNeighboring`` keeping labels: (label, target) pairs."""
        if self.kernel == "bitmask":
            label = self.index.label_of_path(path_to_edge)
            get_id = self.index.get_id
            for suffix, edge_label, node in self._labeled_targets(
                    label, position):
                result.add((edge_label,
                            get_id(path_to_edge + list(suffix), node)))
            return
        stack: List[Tuple[List[int], int]] = [(path_to_edge, position)]
        while stack:
            path, pos = stack.pop()
            label = self.index.label_of_path(path)
            rhs = self.grammar.rhs(label)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                for local_pos, node in enumerate(edge.att):
                    if node != entry:
                        continue
                    if self.grammar.has_rule(edge.label):
                        stack.append((path + [eid], local_pos))
                    elif len(edge.att) == 2 and local_pos == 0:
                        result.add(
                            (edge.label,
                             self.index.get_id(path, edge.att[1])))

    def _labeled_targets(self, label: int, position: int
                         ) -> Tuple[Tuple[Tuple[int, ...], int, int],
                                    ...]:
        """Flattened labeled descent: ``(edge path, label, node)``."""
        key = (label, position)
        cached = self._labeled_memo.get(key)
        if cached is not None:
            return cached
        targets: List[Tuple[Tuple[int, ...], int, int]] = []
        stack: List[Tuple[Tuple[int, ...], int, int]] = \
            [((), label, position)]
        while stack:
            suffix, lab, pos = stack.pop()
            rhs = self.grammar.rhs(lab)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                for local_pos, node in enumerate(edge.att):
                    if node != entry:
                        continue
                    if self.grammar.has_rule(edge.label):
                        child = self._labeled_memo.get(
                            (edge.label, local_pos))
                        if child is not None:
                            targets.extend(
                                (suffix + (eid,) + sub, sub_label,
                                 sub_node)
                                for sub, sub_label, sub_node in child)
                        else:
                            stack.append((suffix + (eid,), edge.label,
                                          local_pos))
                    elif len(edge.att) == 2 and local_pos == 0:
                        targets.append((suffix, edge.label,
                                        edge.att[1]))
        flat = tuple(targets)
        self._labeled_memo[key] = flat
        return flat
