"""Neighborhood queries over the grammar (paper section V, Prop. 4).

Given a node ID of ``val(G)``, compute its in-/out-/undirected
neighbors without decompressing: locate the node's G-representation,
then inspect the edges incident with it in its host graph.  Terminal
edges yield neighbors directly (internal neighbors by ID arithmetic,
external neighbors through ``getID``); a nonterminal edge incident at
attachment position ``p`` delegates to the recursive
``getNeighboring(e, p)`` of the paper, which walks *down* the rule for
the neighbors its derivation produces.

Runtime is ``O(log l + n·h)`` for ``n`` neighbors, matching
Proposition 4.

Directions apply to rank-2 terminal edges; the ``direction``
parameter selects outgoing (``att = (v, u)``), incoming
(``att = (u, v)``) or any incidence (which also covers terminal
hyperedges, should the input contain any).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.core.hypergraph import Edge
from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex


def _terminal_targets(edge: Edge, position: int,
                      direction: str) -> Iterable[int]:
    """Attachment positions adjacent to ``position`` on a terminal edge."""
    if direction == "out":
        if len(edge.att) == 2 and position == 0:
            yield 1
    elif direction == "in":
        if len(edge.att) == 2 and position == 1:
            yield 0
    elif direction == "any":
        for other in range(len(edge.att)):
            if other != position:
                yield other
    else:
        raise QueryError(f"unknown direction {direction!r}")


class NeighborhoodQueries:
    """In/out/any neighborhood evaluation on a :class:`GrammarIndex`."""

    def __init__(self, index: GrammarIndex) -> None:
        self.index = index
        self.grammar = index.grammar

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        """IDs of nodes reachable over one outgoing edge (``N+``)."""
        return self._neighbors(node_id, "out")

    def in_neighbors(self, node_id: int) -> List[int]:
        """IDs of nodes with an edge into ``node_id`` (``N-``)."""
        return self._neighbors(node_id, "in")

    def neighbors(self, node_id: int) -> List[int]:
        """Undirected neighborhood ``N(v)`` (any shared edge)."""
        return self._neighbors(node_id, "any")

    def out_edges(self, node_id: int) -> List[Tuple[int, int]]:
        """Labeled outgoing edges: sorted ``(label, target)`` pairs.

        The labeled variant of :meth:`out_neighbors` (same descent,
        same cost bound), keeping each edge's terminal label — the
        adjacency the RPQ product-automaton BFS steps on.  Parallel
        edges with the same label collapse; self-loops are included
        (a labeled self-loop can change the automaton state without
        leaving the node).
        """
        rep = self.index.locate(node_id)
        host = self.index.host_of(rep)
        result: Set[Tuple[int, int]] = set()
        path = list(rep.edges)
        for eid in host.incident(rep.node):
            edge = host.edge(eid)
            for position, node in enumerate(edge.att):
                if node != rep.node:
                    continue
                if self.grammar.has_rule(edge.label):
                    self._descend_labeled(path + [eid], position,
                                          result)
                elif len(edge.att) == 2 and position == 0:
                    result.add((edge.label,
                                self.index.get_id(path, edge.att[1])))
        return sorted(result)

    # ------------------------------------------------------------------
    # Implementation
    # ------------------------------------------------------------------
    def _neighbors(self, node_id: int, direction: str) -> List[int]:
        rep = self.index.locate(node_id)
        host = self.index.host_of(rep)
        result: Set[int] = set()
        path = list(rep.edges)
        for eid in host.incident(rep.node):
            edge = host.edge(eid)
            position = edge.att.index(rep.node)
            if self.grammar.has_rule(edge.label):
                self._descend(path + [eid], position, direction, result)
            else:
                for target in _terminal_targets(edge, position, direction):
                    result.add(self.index.get_id(path,
                                                 edge.att[target]))
        result.discard(node_id)
        return sorted(result)

    def _descend(self, path_to_edge: List[int], position: int,
                 direction: str, result: Set[int]) -> None:
        """The paper's ``getNeighboring(e, p)``: neighbors inside val(e).

        ``path_to_edge`` addresses the nonterminal edge instance (its
        last element is the edge itself); ``position`` is the
        attachment position of the queried node.  Iterative with an
        explicit stack (grammar height can be large).
        """
        stack: List[Tuple[List[int], int]] = [(path_to_edge, position)]
        while stack:
            path, pos = stack.pop()
            label = self.index.label_of_path(path)
            rhs = self.grammar.rhs(label)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                local_pos = edge.att.index(entry)
                if self.grammar.has_rule(edge.label):
                    stack.append((path + [eid], local_pos))
                    continue
                for target in _terminal_targets(edge, local_pos,
                                                direction):
                    result.add(self.index.get_id(path,
                                                 edge.att[target]))

    def _descend_labeled(self, path_to_edge: List[int], position: int,
                         result: Set[Tuple[int, int]]) -> None:
        """``getNeighboring`` keeping labels: (label, target) pairs."""
        stack: List[Tuple[List[int], int]] = [(path_to_edge, position)]
        while stack:
            path, pos = stack.pop()
            label = self.index.label_of_path(path)
            rhs = self.grammar.rhs(label)
            entry = rhs.ext[pos]
            for eid in rhs.incident(entry):
                edge = rhs.edge(eid)
                for local_pos, node in enumerate(edge.att):
                    if node != entry:
                        continue
                    if self.grammar.has_rule(edge.label):
                        stack.append((path + [eid], local_pos))
                    elif len(edge.att) == 2 and local_pos == 0:
                        result.add(
                            (edge.label,
                             self.index.get_id(path, edge.att[1])))
