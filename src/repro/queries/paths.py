"""Regular path queries over SL-HR grammars (paper future work).

The paper's conclusion names regular path queries as the next query
class to support: "In the future we want to find more query classes
with this property (e.g., regular path queries)".  This module
implements them with the same skeleton technique as Theorem 6, lifted
to the product with a finite automaton:

For a DFA ``M`` over the edge-label alphabet and nodes ``s, t``, the
query asks whether some path from ``s`` to ``t`` spells a word of
``L(M)``.  Define per nonterminal ``A`` the *product skeleton*

    sk_M(A) ⊆ (ext-positions x Q)^2

with ``((i, q), (j, q'))`` present iff ``val(A)`` contains a path from
external node ``i`` to external node ``j`` whose label word drives
``M`` from state ``q`` to state ``q'``.  Product skeletons compose
exactly like plain skeletons and are computed bottom-up in
``O(|G| * |Q|^2)``; queries then run level-by-level like Theorem 6 —
the speed-up claim carries over with a ``|Q|^2`` factor.

Plain reachability is the special case of the one-state DFA accepting
``Sigma*``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, \
    Sequence, Set, Tuple

from repro.core.hypergraph import Hypergraph
from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex

#: A product-skeleton entry: ((ext_i, state), (ext_j, state')).
_ProductPair = Tuple[Tuple[int, int], Tuple[int, int]]


class LabelDFA:
    """A deterministic finite automaton over edge labels.

    States are integers ``0..n-1``; transitions map
    ``(state, label) -> state``.  Missing transitions reject (partial
    DFA).  Construct directly or via the small combinators below.
    """

    def __init__(self, num_states: int, start: int,
                 accepting: Iterable[int],
                 transitions: Mapping[Tuple[int, int], int]) -> None:
        if not 0 <= start < num_states:
            raise QueryError(f"start state {start} out of range")
        self.num_states = num_states
        self.start = start
        self.accepting = frozenset(accepting)
        for state in self.accepting:
            if not 0 <= state < num_states:
                raise QueryError(f"accepting state {state} out of range")
        self.transitions = dict(transitions)

    def step(self, state: int, label: int) -> int | None:
        """Next state on reading ``label``, or None (reject)."""
        return self.transitions.get((state, label))

    # ------------------------------------------------------------------
    # Combinators for common query shapes
    # ------------------------------------------------------------------
    @classmethod
    def any_path(cls, labels: Iterable[int]) -> "LabelDFA":
        """``Sigma*`` — plain reachability."""
        transitions = {(0, label): 0 for label in labels}
        return cls(1, 0, [0], transitions)

    @classmethod
    def word(cls, labels: Sequence[int]) -> "LabelDFA":
        """Exactly the label sequence ``labels``."""
        transitions = {(i, label): i + 1
                       for i, label in enumerate(labels)}
        return cls(len(labels) + 1, 0, [len(labels)], transitions)

    @classmethod
    def star(cls, label: int) -> "LabelDFA":
        """``label*`` (includes the empty path)."""
        return cls(1, 0, [0], {(0, label): 0})

    @classmethod
    def plus(cls, label: int) -> "LabelDFA":
        """``label+`` (at least one edge)."""
        return cls(2, 0, [1], {(0, label): 1, (1, label): 1})

    @classmethod
    def concat_star(cls, prefix: Sequence[int],
                    looping: int) -> "LabelDFA":
        """``prefix . looping*`` — a common RPQ shape."""
        n = len(prefix)
        transitions = {(i, label): i + 1
                       for i, label in enumerate(prefix)}
        transitions[(n, looping)] = n
        return cls(n + 1, 0, [n], transitions)


def _product_adjacency(
    host: Hypergraph,
    grammar,
    dfa: LabelDFA,
    skeletons: Dict[int, FrozenSet[_ProductPair]],
    reverse: bool = False,
) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
    """Adjacency of the (host-node x DFA-state) product digraph."""
    adjacency: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    def arc(src: Tuple[int, int], dst: Tuple[int, int]) -> None:
        if reverse:
            src, dst = dst, src
        adjacency.setdefault(src, []).append(dst)

    for _, edge in host.edges():
        if grammar.has_rule(edge.label):
            for (i, q), (j, q2) in skeletons[edge.label]:
                arc((edge.att[i], q), (edge.att[j], q2))
            continue
        if len(edge.att) != 2:
            raise QueryError(
                "regular path queries require a simple derived graph"
            )
        source, target = edge.att
        for state in range(dfa.num_states):
            nxt = dfa.step(state, edge.label)
            if nxt is not None:
                arc((source, state), (target, nxt))
    return adjacency


def _search(adjacency, sources) -> Set[Tuple[int, int]]:
    seen: Set[Tuple[int, int]] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        item = queue.popleft()
        for succ in adjacency.get(item, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


class RegularPathQueries:
    """RPQ evaluation on a :class:`GrammarIndex` for one DFA."""

    def __init__(self, index: GrammarIndex, dfa: LabelDFA) -> None:
        self.index = index
        self.grammar = index.grammar
        self.dfa = dfa
        self._skeletons = self._compute_skeletons()

    def _compute_skeletons(self) -> Dict[int, FrozenSet[_ProductPair]]:
        skeletons: Dict[int, FrozenSet[_ProductPair]] = {}
        for lhs in self.grammar.bottom_up_order():
            rhs = self.grammar.rhs(lhs)
            adjacency = _product_adjacency(rhs, self.grammar, self.dfa,
                                           skeletons)
            pairs: Set[_ProductPair] = set()
            for i, ext_node in enumerate(rhs.ext):
                for state in range(self.dfa.num_states):
                    reached = _search(adjacency, [(ext_node, state)])
                    for j, other in enumerate(rhs.ext):
                        for state2 in range(self.dfa.num_states):
                            if (other, state2) in reached and \
                                    (i, state) != (j, state2):
                                pairs.add(((i, state), (j, state2)))
            skeletons[lhs] = frozenset(pairs)
        return skeletons

    # ------------------------------------------------------------------
    # Query (mirrors ReachabilityQueries.reachable on the product)
    # ------------------------------------------------------------------
    def matches(self, source_id: int, target_id: int,
                start_state: Optional[int] = None,
                accepting: Optional[Iterable[int]] = None) -> bool:
        """True if a path from source to target spells a word of L(M).

        The empty path counts when the DFA accepts the empty word and
        ``source == target``.

        ``start_state`` / ``accepting`` override the DFA's own start
        and accepting states for this one query.  The product skeletons
        depend only on the DFA's *transitions*, so a single skeleton
        build answers arbitrary state-to-state probes — the sharded
        evaluator's boundary-closure construction relies on this.
        """
        start = self.dfa.start if start_state is None else start_state
        accept = (self.dfa.accepting if accepting is None
                  else frozenset(accepting))
        if not 0 <= start < self.dfa.num_states:
            raise QueryError(f"start state {start} out of range")
        for state in accept:
            if not 0 <= state < self.dfa.num_states:
                raise QueryError(
                    f"accepting state {state} out of range")
        if source_id == target_id and start in accept:
            return True
        source_rep = self.index.locate(source_id)
        target_rep = self.index.locate(target_id)
        common = 0
        for eu, ev in zip(source_rep.edges, target_rep.edges):
            if eu != ev:
                break
            common += 1
        source_sets = self._lift(source_rep, starting=True,
                                 start_state=start, accepting=accept)
        target_sets = self._lift(target_rep, starting=False,
                                 start_state=start, accepting=accept)
        for level in range(common, -1, -1):
            host = self.index._host_for(source_rep.edges[:level])
            adjacency = _product_adjacency(host, self.grammar, self.dfa,
                                           self._skeletons)
            reached = _search(adjacency, source_sets[level])
            if reached & target_sets[level]:
                return True
        return False

    def _lift(self, rep, starting: bool,
              start_state: Optional[int] = None,
              accepting: Optional[FrozenSet[int]] = None
              ) -> List[Set[Tuple[int, int]]]:
        """Per-level product sets, forward from the source (``starting``)
        or backward to the target (accepting states seed the search)."""
        start = self.dfa.start if start_state is None else start_state
        accept = (self.dfa.accepting if accepting is None
                  else accepting)
        edges = rep.edges
        depth = len(edges)
        sets: List[Set[Tuple[int, int]]] = [set()
                                            for _ in range(depth + 1)]
        if starting:
            sets[depth] = {(rep.node, start)}
        else:
            sets[depth] = {(rep.node, state) for state in accept}
        for level in range(depth, 0, -1):
            host = self.index._host_for(edges[:level])
            adjacency = _product_adjacency(host, self.grammar, self.dfa,
                                           self._skeletons,
                                           reverse=not starting)
            reached = _search(adjacency, sets[level])
            parent_host = self.index._host_for(edges[:level - 1])
            attachment = parent_host.edge(edges[level - 1]).att
            lifted: Set[Tuple[int, int]] = set()
            for position, ext_node in enumerate(host.ext):
                for state in range(self.dfa.num_states):
                    if (ext_node, state) in reached:
                        lifted.add((attachment[position], state))
            sets[level - 1] = lifted
        return sets
