"""Traversal-kernel selection: bitmask word ops vs legacy sets.

The query evaluators have two interchangeable in-shard traversal
implementations:

* ``"bitmask"`` (the default) — adjacency of every host graph is
  precomputed once per handle as integer bit-rows (one arbitrary-
  precision int per node, bit ``j`` set when node ``j`` is a direct
  successor), so BFS waves, the paper's ``E_i``/``F_i`` level sets and
  the skeleton relations are AND/OR word operations instead of
  dict-and-set frontier code.  The idiom is the one
  :class:`repro.partition.boundary.BoundaryClosure` proved out at the
  boundary layer, generalized to every host graph.
* ``"legacy"`` — the original per-query dict/set evaluation, kept as
  a differential oracle (``tests/test_bitmask_kernels.py`` holds the
  two bit-identical on every smoke corpus) and as the pre-PR baseline
  the ``check_bench_regression.py`` kernel gate measures against.

The default is process-wide: ``REPRO_TRAVERSAL_KERNEL=legacy`` in the
environment selects the oracle for a whole run, and
:func:`set_default_kernel` switches it programmatically (evaluators
read the default at construction time, so switch *before* building a
handle's index).  Individual evaluators also accept an explicit
``kernel=`` argument, which wins over the default.
"""

from __future__ import annotations

import os

from repro.exceptions import QueryError

KERNELS = ("bitmask", "legacy")

_default = os.environ.get("REPRO_TRAVERSAL_KERNEL", "bitmask")


def validate_kernel(name: str) -> str:
    """Return ``name`` if it names a kernel, raise otherwise."""
    if name not in KERNELS:
        raise QueryError(
            f"unknown traversal kernel {name!r}; expected one of "
            f"{', '.join(KERNELS)}")
    return name


def default_kernel() -> str:
    """The kernel evaluators pick when built without an override."""
    return validate_kernel(_default)


def set_default_kernel(name: str) -> str:
    """Set the process-wide default; returns the previous default.

    Affects evaluators constructed *afterwards* — already-built
    handles keep the kernel they were born with.
    """
    global _default
    previous = _default
    _default = validate_kernel(name)
    return previous
