"""Query evaluation over compressed graphs (paper section V).

The paper distinguishes *neighborhood queries* (traverse the compressed
graph edge by edge; any graph algorithm can run on top, with a
slow-down) and *speed-up queries* (evaluated in one pass through the
grammar, hence proportionally faster than on the decompressed graph).
Both families are implemented here — the paper describes them but
notes "the results in this section have not been implemented".

The front door for queries is :class:`repro.api.CompressedGraph`: one
long-lived handle whose lazily built, cached, thread-safe index
canonicalizes the grammar at most once per lifetime.
:class:`GrammarQueries` predates the facade and is kept as a
compatibility shim — constructing one wraps the grammar in a fresh
``CompressedGraph`` (eagerly building its index, matching the old
behavior) and delegates every query to it.
"""

from __future__ import annotations

from typing import List

from repro.core.grammar import SLHRGrammar
from repro.queries.cache import QueryCache
from repro.queries.components import ComponentQueries
from repro.queries.degrees import DegreeQueries
from repro.queries.index import GrammarIndex, GRepresentation
from repro.queries.kernels import default_kernel, set_default_kernel
from repro.queries.neighborhood import NeighborhoodQueries
from repro.queries.reachability import ReachabilityQueries

__all__ = [
    "ComponentQueries",
    "DegreeQueries",
    "GRepresentation",
    "GrammarIndex",
    "GrammarQueries",
    "NeighborhoodQueries",
    "QueryCache",
    "ReachabilityQueries",
    "default_kernel",
    "set_default_kernel",
]


class GrammarQueries:
    """All query families over one grammar (compatibility shim).

    Deprecated front door: delegates to
    :class:`repro.api.CompressedGraph`, which new code should use
    directly (it adds persistence, batching and lazy index reuse).
    Node IDs refer to the deterministic numbering of ``val(G)`` — the
    same numbering :func:`repro.core.derive` produces for the
    canonical grammar, so answers can be checked against the
    decompressed graph directly.
    """

    def __init__(self, grammar: SLHRGrammar) -> None:
        from repro.api import CompressedGraph
        self._handle = CompressedGraph.from_grammar(grammar)
        # Legacy behavior was eager: expose the canonical grammar and
        # the index right away (this builds the handle's lazy index).
        self.grammar = self._handle.canonical_grammar
        self.index = self._handle.index

    # -- neighborhood ---------------------------------------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        """Sorted out-neighbor IDs of ``node_id`` (paper's ``N+``)."""
        return self._handle.out_neighbors(node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        """Sorted in-neighbor IDs of ``node_id`` (paper's ``N-``)."""
        return self._handle.in_neighbors(node_id)

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted undirected neighborhood ``N(v)``."""
        return self._handle.neighbors(node_id)

    # -- speed-up queries -------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """(s,t)-reachability in ``O(|G|)`` (Theorem 6)."""
        return self._handle.reachable(source_id, target_id)

    def connected_components(self) -> int:
        """Number of connected components of ``val(G)`` (CMSO-style)."""
        return self._handle.connected_components()

    def degrees(self) -> DegreeQueries:
        """Degree-extrema evaluator (CMSO function, one pass)."""
        return self._handle.degrees()

    def node_count(self) -> int:
        """``|val(G)|_V`` without decompressing."""
        return self._handle.node_count()

    def edge_count(self) -> int:
        """Terminal edge count of ``val(G)`` without decompressing."""
        return self._handle.edge_count()
