"""Query evaluation over compressed graphs (paper section V).

The paper distinguishes *neighborhood queries* (traverse the compressed
graph edge by edge; any graph algorithm can run on top, with a
slow-down) and *speed-up queries* (evaluated in one pass through the
grammar, hence proportionally faster than on the decompressed graph).
Both families are implemented here — the paper describes them but
notes "the results in this section have not been implemented".

:class:`GrammarQueries` is the convenience facade: build it from any
grammar (it canonicalizes a copy so node IDs match ``val(G)``) and ask
away.
"""

from __future__ import annotations

from typing import List

from repro.core.grammar import SLHRGrammar
from repro.queries.components import ComponentQueries
from repro.queries.degrees import DegreeQueries
from repro.queries.index import GrammarIndex, GRepresentation
from repro.queries.neighborhood import NeighborhoodQueries
from repro.queries.reachability import ReachabilityQueries

__all__ = [
    "ComponentQueries",
    "DegreeQueries",
    "GRepresentation",
    "GrammarIndex",
    "GrammarQueries",
    "NeighborhoodQueries",
    "ReachabilityQueries",
]


class GrammarQueries:
    """All query families over one (canonicalized) grammar.

    Node IDs refer to the deterministic numbering of ``val(G)`` — the
    same numbering :func:`repro.core.derive` produces for the
    canonical grammar, so answers can be checked against the
    decompressed graph directly.
    """

    def __init__(self, grammar: SLHRGrammar) -> None:
        self.grammar = grammar.canonicalize()
        self.index = GrammarIndex(self.grammar)
        self._neighborhood = NeighborhoodQueries(self.index)
        self._reachability: ReachabilityQueries | None = None
        self._components: ComponentQueries | None = None
        self._degrees: DegreeQueries | None = None

    # -- neighborhood ---------------------------------------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        """Sorted out-neighbor IDs of ``node_id`` (paper's ``N+``)."""
        return self._neighborhood.out_neighbors(node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        """Sorted in-neighbor IDs of ``node_id`` (paper's ``N-``)."""
        return self._neighborhood.in_neighbors(node_id)

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted undirected neighborhood ``N(v)``."""
        return self._neighborhood.neighbors(node_id)

    # -- speed-up queries -------------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """(s,t)-reachability in ``O(|G|)`` (Theorem 6)."""
        if self._reachability is None:
            self._reachability = ReachabilityQueries(self.index)
        return self._reachability.reachable(source_id, target_id)

    def connected_components(self) -> int:
        """Number of connected components of ``val(G)`` (CMSO-style)."""
        if self._components is None:
            self._components = ComponentQueries(self.grammar)
        return self._components.connected_components()

    def degrees(self) -> DegreeQueries:
        """Degree-extrema evaluator (CMSO function, one pass)."""
        if self._degrees is None:
            self._degrees = DegreeQueries(self.grammar)
        return self._degrees

    def node_count(self) -> int:
        """``|val(G)|_V`` without decompressing."""
        return self.index.total_nodes

    def edge_count(self) -> int:
        """Terminal edge count of ``val(G)`` without decompressing."""
        return self.grammar.derived_edge_count()
