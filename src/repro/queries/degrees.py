"""Degree-extrema speed-up queries (paper section V, CMSO functions).

The paper lists "maximal and minimal degree" first among the
well-known CMSO functions evaluable in one bottom-up pass through the
grammar.  The pass works because internal nodes of a rule can never
gain edges from outside their instance: their degrees are *final*
inside ``val(A)``, while external nodes only accumulate per-position
contributions that the parent adds to its own counts.

Per nonterminal we therefore compute

* ``ext_out[i]`` / ``ext_in[i]`` — edges of ``val(A)`` leaving /
  entering the node merged at external position ``i``,
* the extrema of out-/in-degree over all nodes *finalized* inside
  ``val(A)`` (its internal nodes and everything below).

Evaluating the same summary over the start graph gives the degree
extrema of ``val(G)`` in ``O(|G|)`` — on a Fig.-13-style grammar that
is exponentially faster than scanning the derived graph.

Only simple derived graphs (rank-2 terminals) are supported, matching
section V's setting.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.exceptions import QueryError


class _Extrema(NamedTuple):
    """Running (max, min) over finalized nodes; None when empty."""

    max_out: Optional[int]
    min_out: Optional[int]
    max_in: Optional[int]
    min_in: Optional[int]
    max_total: Optional[int]
    min_total: Optional[int]

    @staticmethod
    def empty() -> "_Extrema":
        return _Extrema(None, None, None, None, None, None)

    def merged(self, other: "_Extrema") -> "_Extrema":
        def pick(a, b, op):
            if a is None:
                return b
            if b is None:
                return a
            return op(a, b)

        return _Extrema(
            pick(self.max_out, other.max_out, max),
            pick(self.min_out, other.min_out, min),
            pick(self.max_in, other.max_in, max),
            pick(self.min_in, other.min_in, min),
            pick(self.max_total, other.max_total, max),
            pick(self.min_total, other.min_total, min),
        )

    def with_node(self, out_degree: int, in_degree: int) -> "_Extrema":
        return self.merged(_Extrema(
            out_degree, out_degree, in_degree, in_degree,
            out_degree + in_degree, out_degree + in_degree,
        ))


class _Summary(NamedTuple):
    """Per-rule summary: ext contributions + finalized extrema."""

    ext_out: Tuple[int, ...]
    ext_in: Tuple[int, ...]
    finalized: _Extrema


def _summarize(host: Hypergraph, grammar: SLHRGrammar,
               summaries: Dict[int, _Summary],
               ) -> Tuple[Dict[int, int], Dict[int, int], _Extrema]:
    """Out/in contributions per host node plus children's extrema."""
    out: Dict[int, int] = {node: 0 for node in host.nodes()}
    into: Dict[int, int] = {node: 0 for node in host.nodes()}
    below = _Extrema.empty()
    for _, edge in host.edges():
        if grammar.has_rule(edge.label):
            summary = summaries[edge.label]
            below = below.merged(summary.finalized)
            for position, node in enumerate(edge.att):
                out[node] += summary.ext_out[position]
                into[node] += summary.ext_in[position]
            continue
        if len(edge.att) != 2:
            raise QueryError(
                "degree queries require a simple derived graph; found "
                f"a terminal edge of rank {len(edge.att)}"
            )
        out[edge.att[0]] += 1
        into[edge.att[1]] += 1
    return out, into, below


class DegreeQueries:
    """Degree extrema of ``val(G)`` without decompression."""

    def __init__(self, grammar: SLHRGrammar) -> None:
        self.grammar = grammar
        summaries: Dict[int, _Summary] = {}
        for lhs in grammar.bottom_up_order():
            rhs = grammar.rhs(lhs)
            out, into, below = _summarize(rhs, grammar, summaries)
            finalized = below
            ext_set = set(rhs.ext)
            for node in rhs.nodes():
                if node not in ext_set:
                    finalized = finalized.with_node(out[node],
                                                    into[node])
            summaries[lhs] = _Summary(
                ext_out=tuple(out[node] for node in rhs.ext),
                ext_in=tuple(into[node] for node in rhs.ext),
                finalized=finalized,
            )
        start_out, start_in, below = _summarize(grammar.start, grammar,
                                                summaries)
        extrema = below
        for node in grammar.start.nodes():
            extrema = extrema.with_node(start_out[node], start_in[node])
        self._extrema = extrema

    def _require(self, value: Optional[int]) -> int:
        if value is None:
            raise QueryError("degree extrema undefined: empty graph")
        return value

    def max_out_degree(self) -> int:
        """Largest out-degree in ``val(G)``."""
        return self._require(self._extrema.max_out)

    def min_out_degree(self) -> int:
        """Smallest out-degree in ``val(G)``."""
        return self._require(self._extrema.min_out)

    def max_in_degree(self) -> int:
        """Largest in-degree in ``val(G)``."""
        return self._require(self._extrema.max_in)

    def min_in_degree(self) -> int:
        """Smallest in-degree in ``val(G)``."""
        return self._require(self._extrema.min_in)

    def max_degree(self) -> int:
        """Largest total (in + out) degree in ``val(G)``."""
        return self._require(self._extrema.max_total)

    def min_degree(self) -> int:
        """Smallest total degree in ``val(G)`` (0 for isolated nodes)."""
        return self._require(self._extrema.min_total)
