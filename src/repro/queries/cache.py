"""Query-result LRU cache shared by the serving handles.

Serving workloads are skewed: a small set of hot nodes receives most of
the traffic, so memoizing query answers pays for itself long before the
grammar-side evaluators do.  Both :class:`repro.api.CompressedGraph`
and :class:`repro.sharding.ShardedCompressedGraph` embed one
:class:`QueryCache` per handle and consult it from every public query
method.

Design points:

* Keys are the canonical query tuples the ``batch()`` wire format uses
  — ``("reach", 4, 17)``, ``("out", 9)``, ``("components",)`` — so a
  cached single-shot query also hits for the same request inside a
  batch and vice versa.
* The cache is a plain LRU over an :class:`collections.OrderedDict`
  guarded by one lock; the handles' indexes are immutable after build,
  so entries never need invalidation — eviction is purely capacity
  driven.
* ``hits`` / ``misses`` counters are exposed next to the handles'
  ``canonicalizations`` counter so serving dashboards can watch both
  the index-build and the answer-reuse behavior of a handle.
* List-valued answers are stored once and *copied out* on every hit;
  callers may mutate what they receive without poisoning the cache.
* ``capacity=0`` disables caching entirely (every lookup is a miss and
  nothing is stored) — the benchmarks use that to measure the raw
  evaluation path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["QueryCache"]

#: Sentinel distinguishing "not cached" from a cached ``None`` answer
#: (``path`` legitimately returns ``None`` for unreachable pairs).
_MISSING = object()


class QueryCache:
    """A thread-safe LRU keyed by query tuples, with hit/miss counters."""

    __slots__ = ("capacity", "_entries", "_lock", "hits", "misses",
                 "evictions")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        #: Maximum number of cached answers (0 disables the cache).
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: Lookups answered from the cache.
        self.hits = 0
        #: Lookups that fell through to evaluation.
        self.misses = 0
        #: Entries dropped because the cache was full.
        self.evictions = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; counts the hit or miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._copy_out(value)

    def store(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """The memoization shape the handles use for every query."""
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        self.store(key, value)
        return self._copy_out(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def peek(self, key: Hashable) -> Tuple[bool, Any]:
        """Like :meth:`lookup` but without touching the counters/LRU."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return False, None
        return True, self._copy_out(value)

    @property
    def hit_rate(self) -> Optional[float]:
        """``hits / (hits + misses)``, or ``None`` before any lookup."""
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total

    def info(self) -> Dict[str, Any]:
        """Counters snapshot (the handles expose this as ``cache_info``)."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @staticmethod
    def _copy_out(value: Any) -> Any:
        """Shield cached containers from caller mutation."""
        if type(value) is list:
            return list(value)
        if type(value) is dict:
            return dict(value)
        return value

    def __repr__(self) -> str:
        return (f"QueryCache(capacity={self.capacity}, size={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
