"""Node-to-shard assignment strategies and their cut statistics.

A *partitioner* is any callable ``(graph, shards) -> {node: shard}``
covering every node with values in ``range(shards)``.  Four ship in
the registry:

``hash``
    Stable multiplicative hash of the node ID.  Balanced, stateless,
    deterministic across processes — and oblivious to the edges, so it
    cuts them indiscriminately (the expected cut ratio of a k-way hash
    split is ``(k-1)/k``).
``connectivity``
    Keeps connected components whole, bin-packing them largest-first
    onto the lightest shard.  Zero boundary edges whenever the graph
    has at least ``shards`` components; useless on a single giant
    component, which it refuses to split.
``bfs``
    BFS region growing: grow one region at a time, breadth-first from
    a fresh peripheral seed, until the region reaches its node budget.
    Each region is connected by construction, so every BFS tree edge is
    internal — on sparse or locally clustered graphs the cut shrinks
    far below the hash baseline, and a single giant component splits
    cleanly instead of degenerating to the dense-boundary regime.
``label``
    Capacity-constrained label propagation: nodes start in balanced
    ID-contiguous blocks, then repeatedly adopt the most common label
    among their neighbors unless the target shard is full.  A few
    deterministic sweeps let community structure pull the cut tight
    while the capacity bound keeps the shards balanced.

:func:`cut_statistics` scores any assignment — ``boundary_edges``,
``cut_ratio``, ``balance`` — so planners, benchmarks and the CLI can
compare strategies on equal terms.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List

from repro.core.hypergraph import Hypergraph
from repro.exceptions import GrammarError
from repro.util.unionfind import UnionFind

__all__ = [
    "PARTITIONERS",
    "Partitioner",
    "bfs_partition",
    "connectivity_partition",
    "cut_statistics",
    "hash_partition",
    "label_partition",
    "resolve_partitioner",
]

Partitioner = Callable[[Hypergraph, int], Dict[int, int]]

#: Knuth's multiplicative constant — a stable spread for consecutive
#: node IDs, independent of PYTHONHASHSEED.
_HASH_MIX = 2654435761

#: Label-propagation sweeps; convergence on small-world graphs is
#: fast, and determinism matters more than squeezing the last edge.
_LABEL_ROUNDS = 6


def hash_partition(graph: Hypergraph, shards: int) -> Dict[int, int]:
    """Assign each node by a stable multiplicative hash of its ID.

    The default partitioner: balanced, stateless and deterministic
    across processes (no reliance on ``hash()``), at the price of
    cutting edges indiscriminately.
    """
    return {node: ((node * _HASH_MIX) & 0xFFFFFFFF) % shards
            for node in graph.nodes()}


def connectivity_partition(graph: Hypergraph, shards: int
                           ) -> Dict[int, int]:
    """Keep connected components together; bin-pack them onto shards.

    Components (undirected, any edge rank) are sorted largest first
    and greedily placed on the currently lightest shard, so a graph
    with at least ``shards`` components yields **zero** boundary
    edges.  A component larger than the ideal shard is kept whole —
    splitting it would manufacture boundary edges, which is exactly
    what this partitioner exists to avoid.
    """
    components = UnionFind(graph.nodes())
    for _, edge in graph.edges():
        anchor = edge.att[0]
        for node in edge.att[1:]:
            components.union(anchor, node)
    members: Dict[int, List[int]] = {}
    for node in graph.nodes():
        members.setdefault(components.find(node), []).append(node)
    loads = [0] * shards
    assign: Dict[int, int] = {}
    ordered = sorted(members.values(),
                     key=lambda nodes: (-len(nodes), min(nodes)))
    for nodes in ordered:
        target = loads.index(min(loads))
        loads[target] += len(nodes)
        for node in nodes:
            assign[node] = target
    return assign


def _undirected_adjacency(graph: Hypergraph) -> Dict[int, List[int]]:
    """Sorted undirected neighbor lists (any edge rank, deduplicated)."""
    neighbors: Dict[int, set] = {node: set() for node in graph.nodes()}
    for _, edge in graph.edges():
        for node in edge.att:
            for other in edge.att:
                if other != node:
                    neighbors[node].add(other)
    return {node: sorted(adjacent)
            for node, adjacent in neighbors.items()}


def bfs_partition(graph: Hypergraph, shards: int) -> Dict[int, int]:
    """Grow balanced connected regions breadth-first (edge-cut aware).

    Shard ``i`` is grown from an unassigned seed (the lowest-degree
    node left, ties by ID — a peripheral start keeps the growth front
    short) by BFS over the undirected adjacency until it holds its
    budget of ``ceil(remaining / remaining_shards)`` nodes; the last
    shard absorbs whatever is left.  When a region's frontier dries up
    before the budget is met (the component was exhausted) a fresh
    seed continues the same region, so every node is always assigned.

    Regions are connected by construction: all of a region's internal
    BFS tree edges are intra-shard, which is what pushes the cut below
    the edge-oblivious hash baseline on graphs with any locality.
    """
    adjacency = _undirected_adjacency(graph)
    order = sorted(graph.nodes(),
                   key=lambda node: (len(adjacency[node]), node))
    unassigned = set(graph.nodes())
    assign: Dict[int, int] = {}
    remaining = len(unassigned)
    # Nodes never return to `unassigned`, so the next fresh seed is
    # found by advancing one monotonic cursor over `order` — O(n)
    # total across all seeds, even on forests of tiny components.
    cursor = 0
    for shard in range(shards):
        if not unassigned:
            break
        budget = -(-remaining // (shards - shard))  # ceil division
        grown = 0
        frontier: deque = deque()
        while grown < budget and unassigned:
            if not frontier:
                while order[cursor] not in unassigned:
                    cursor += 1
                seed = order[cursor]
                unassigned.discard(seed)
                assign[seed] = shard
                grown += 1
                frontier.append(seed)
                continue
            node = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor in unassigned:
                    unassigned.discard(neighbor)
                    assign[neighbor] = shard
                    grown += 1
                    frontier.append(neighbor)
                    if grown >= budget:
                        break
        remaining -= grown
    return assign


def label_partition(graph: Hypergraph, shards: int) -> Dict[int, int]:
    """Capacity-constrained label propagation (edge-cut aware).

    Nodes start in ``shards`` balanced ID-contiguous blocks.  Each
    sweep visits the nodes in ascending ID order; a node moves to the
    label most common among its undirected neighbors (ties: keep the
    current label if tied, else the smallest label) provided the
    winning shard has capacity left — ``ceil(n / shards)`` nodes, so
    balance survives propagation.  Sweeps stop after
    ``_LABEL_ROUNDS`` rounds or at the first sweep that moves
    nothing.  Fully deterministic: no RNG, no ``hash()``.
    """
    nodes = sorted(graph.nodes())
    if not nodes:
        return {}
    adjacency = _undirected_adjacency(graph)
    capacity = -(-len(nodes) // shards)  # ceil division
    assign: Dict[int, int] = {}
    loads = [0] * shards
    for position, node in enumerate(nodes):
        shard = min(position * shards // len(nodes), shards - 1)
        assign[node] = shard
        loads[shard] += 1
    for _ in range(_LABEL_ROUNDS):
        moved = 0
        for node in nodes:
            current = assign[node]
            counts: Dict[int, int] = {}
            for neighbor in adjacency[node]:
                label = assign[neighbor]
                counts[label] = counts.get(label, 0) + 1
            if not counts:
                continue
            best = max(counts.values())
            winners = sorted(label for label, count in counts.items()
                             if count == best)
            if current in winners:
                continue
            for winner in winners:
                if loads[winner] < capacity:
                    loads[current] -= 1
                    loads[winner] += 1
                    assign[node] = winner
                    moved += 1
                    break
        if not moved:
            break
    return assign


#: name -> partitioner; the CLI and ``ShardedCompressedGraph.compress``
#: accept either a name from here or any callable with this signature.
PARTITIONERS: Dict[str, Partitioner] = {
    "hash": hash_partition,
    "connectivity": connectivity_partition,
    "bfs": bfs_partition,
    "label": label_partition,
}


def resolve_partitioner(partitioner) -> tuple:
    """``(callable, name)`` for a registry name or a custom callable.

    Raises :class:`GrammarError` for an unknown name — the message
    lists the registry so CLI users see their options.
    """
    if callable(partitioner):
        return partitioner, getattr(partitioner, "__name__", "custom")
    resolved = PARTITIONERS.get(partitioner)
    if resolved is None:
        raise GrammarError(
            f"unknown partitioner {partitioner!r}; expected one "
            f"of {sorted(PARTITIONERS)} or a callable"
        )
    return resolved, partitioner


def cut_statistics(graph: Hypergraph, assign: Dict[int, int],
                   shards: int) -> Dict[str, float]:
    """Score an assignment: cut size, cut ratio, and shard balance.

    * ``boundary_edges`` — edges whose attachment spans two shards;
    * ``cut_ratio`` — that count over the total edge count (0.0 for an
      edgeless graph);
    * ``balance`` — the heaviest shard's node count over the ideal
      ``n / shards`` (1.0 is perfect; 2.0 means one shard carries
      twice its fair share).
    """
    boundary = 0
    for _, edge in graph.edges():
        owners = {assign[node] for node in edge.att}
        if len(owners) > 1:
            boundary += 1
    loads = [0] * shards
    for shard in assign.values():
        loads[shard] += 1
    total_nodes = len(assign)
    ideal = total_nodes / shards if shards else 0.0
    return {
        "boundary_edges": boundary,
        "cut_ratio": (boundary / graph.num_edges
                      if graph.num_edges else 0.0),
        "balance": (max(loads) / ideal if ideal else 1.0),
    }
