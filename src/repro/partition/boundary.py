"""Boundary topology: the pinned cross-shard summary and its closure.

When a partitioner cuts an edge, that edge cannot live inside any
shard grammar; it survives verbatim in the *boundary summary*, with
its endpoints pinned external so gRePair provably keeps their
identity.  This module owns everything built on that summary:

:class:`BoundaryGraph`
    The summary itself, in the shard-major global ID space: the raw
    boundary edges, the merged neighborhood maps (``out``/``into``/
    ``undirected``), the per-shard *exit* (has an outgoing boundary
    edge) and *entry* (has an incoming one) lists, the within-shard
    connectivity blocks ``components()`` merges, and which shards the
    boundary touches at all.
:class:`BoundaryClosure`
    The transitive closure of the *boundary graph* — the directed
    graph over boundary nodes whose edges are (a) the boundary edges
    themselves and (b) in-shard reachability between two boundary
    nodes of the same shard (one Theorem-6 probe each, shipped as a
    single ``batch()`` per shard).  Any cross-shard path decomposes
    as: an in-shard prefix to the first exit, a walk through this
    graph, and an in-shard suffix from the last entry — so with the
    closure in hand, every cross-shard ``reach`` costs one in-shard
    batch per endpoint shard plus O(1) closure lookups, instead of
    per-hop chaining.

    Rows are integer bitmasks over the sorted boundary-node list,
    and the byte encoding is canonical (sorted, delta-coded IDs +
    fixed-width little-endian rows), so a closure loaded from the
    "GRPS" container is byte-identical to a rebuilt one.
:class:`ProductClosure`
    The same construction lifted to the product with a pattern DFA:
    vertices are ``(boundary node, DFA state)`` pairs, arcs are (a)
    boundary edges stepping the DFA on their label and (b) in-shard
    RPQ state-to-state probes (one ``batch()`` per shard, exactly the
    reach-closure shape).  With it, a cross-shard RPQ costs one
    in-shard batch per endpoint shard plus O(1) lookups — the
    per-label boundary closure the sharded RPQ evaluator plans with.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, Iterable, List, Optional, \
    Sequence, Tuple

from repro.exceptions import EncodingError
from repro.util.varint import read_uvarint, write_uvarint

__all__ = ["BoundaryClosure", "BoundaryGraph", "ProductClosure"]


def _bits(mask: int) -> Iterable[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BoundaryGraph:
    """The cross-shard boundary summary, in global (shard-major) IDs.

    Immutable after construction; every map is sorted so downstream
    consumers (query merges, the closure builder, the codec) are
    deterministic.
    """

    __slots__ = ("edges", "blocks", "out", "into", "undirected",
                 "incident", "touched", "exits", "entries", "members",
                 "total_exits", "total_entries", "_bases")

    def __init__(self, edges: List[Tuple[int, Tuple[int, ...]]],
                 blocks: List[List[Tuple[int, ...]]],
                 bases: Sequence[int]) -> None:
        self.edges = edges
        self.blocks = blocks
        self._bases = list(bases)
        shard_count = len(self._bases)
        b_out: Dict[int, set] = {}
        b_in: Dict[int, set] = {}
        b_any: Dict[int, set] = {}
        for label, att in edges:
            if len(att) == 2:
                source, target = att
                b_out.setdefault(source, set()).add(target)
                b_in.setdefault(target, set()).add(source)
            for node in att:
                others = b_any.setdefault(node, set())
                others.update(other for other in att if other != node)
        #: node -> sorted boundary successors / predecessors / any.
        self.out = {node: sorted(v) for node, v in b_out.items()}
        self.into = {node: sorted(v) for node, v in b_in.items()}
        self.undirected = {node: sorted(v) for node, v in b_any.items()}
        #: Global IDs of every node incident with a boundary edge.
        self.incident = set(b_any)
        #: Shards at least one boundary edge touches; only these can
        #: be left or re-entered.
        self.touched = {self.owner(node) for node in self.incident}
        exits: List[List[int]] = [[] for _ in range(shard_count)]
        for node in sorted(self.out):
            exits[self.owner(node)].append(node)
        entries: List[List[int]] = [[] for _ in range(shard_count)]
        for node in sorted(self.into):
            entries[self.owner(node)].append(node)
        members: List[List[int]] = [[] for _ in range(shard_count)]
        for node in sorted(self.incident):
            members[self.owner(node)].append(node)
        #: Per-shard sorted boundary-node lists: sources of boundary
        #: edges (exits), targets (entries), and all incident nodes.
        self.exits = exits
        self.entries = entries
        self.members = members
        self.total_exits = sum(len(shard) for shard in exits)
        self.total_entries = sum(len(shard) for shard in entries)

    def owner(self, node: int) -> int:
        """Shard index owning a global node ID (no range checks)."""
        return bisect_right(self._bases, node - 1) - 1

    @property
    def edge_count(self) -> int:
        """Number of boundary edges (the partition's cut size)."""
        return len(self.edges)

    def closure_pairs(self) -> int:
        """In-shard reach probes a closure build costs (ordered pairs)."""
        return sum(len(nodes) * (len(nodes) - 1)
                   for nodes in self.members)


class BoundaryClosure:
    """Transitive closure over the boundary nodes, as bitmask rows.

    ``rows[i]`` has bit ``j`` set iff boundary node ``nodes[j]`` is
    reachable from ``nodes[i]`` through at least one boundary-graph
    edge (the relation is *not* reflexive; callers add the source
    themselves where identity matters).
    """

    __slots__ = ("nodes", "rows", "_index")

    def __init__(self, nodes: List[int], rows: List[int]) -> None:
        self.nodes = nodes
        self.rows = rows
        self._index = {node: position
                       for position, node in enumerate(nodes)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, boundary: BoundaryGraph, shards: Sequence[Any],
              bases: Sequence[int]) -> "BoundaryClosure":
        """Probe the shards and close the boundary graph.

        One ``shard.batch()`` per shard covers every ordered pair of
        that shard's boundary nodes (the in-shard edges); the boundary
        edges themselves need no probes.  Works identically over local
        :class:`repro.api.CompressedGraph` handles and socket-proxy
        shards — ``batch`` is the wire format.
        """
        nodes = sorted(boundary.incident)
        index = {node: position for position, node in enumerate(nodes)}
        adjacency = [0] * len(nodes)
        for source, targets in boundary.out.items():
            row = index[source]
            for target in targets:
                adjacency[row] |= 1 << index[target]
        for shard, members in enumerate(boundary.members):
            pairs = [(a, b) for a in members for b in members if a != b]
            if not pairs:
                continue
            base = bases[shard]
            answers = shards[shard].batch(
                [("reach", a - base, b - base) for a, b in pairs])
            for (a, b), reachable in zip(pairs, answers):
                if reachable:
                    adjacency[index[a]] |= 1 << index[b]
        rows: List[int] = []
        for start in range(len(nodes)):
            seen = 0
            frontier = adjacency[start]
            while frontier:
                seen |= frontier
                step = 0
                for bit in _bits(frontier):
                    step |= adjacency[bit]
                frontier = step & ~seen
            rows.append(seen)
        return cls(nodes, rows)

    # ------------------------------------------------------------------
    # Lookups (global node IDs in, global node IDs out)
    # ------------------------------------------------------------------
    def row_mask(self, node: int) -> int:
        """Bitmask of boundary nodes reachable from ``node``."""
        return self.rows[self._index[node]]

    def bit(self, node: int) -> int:
        """The single-bit mask of one boundary node."""
        return 1 << self._index[node]

    def mask_of(self, nodes: Iterable[int]) -> int:
        """The union mask of several boundary nodes."""
        mask = 0
        for node in nodes:
            mask |= 1 << self._index[node]
        return mask

    def nodes_in(self, mask: int) -> List[int]:
        """The boundary nodes a mask selects, ascending."""
        return [self.nodes[bit] for bit in _bits(mask)]

    def reaches(self, source: int, target: int) -> bool:
        """Whether ``target`` is closure-reachable from ``source``."""
        return bool(self.rows[self._index[source]]
                    & (1 << self._index[target]))

    # ------------------------------------------------------------------
    # Codec (the optional "GRPS" closure section)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical encoding: delta-coded IDs + fixed-width rows."""
        out = bytearray()
        write_uvarint(out, len(self.nodes))
        previous = 0
        for node in self.nodes:
            write_uvarint(out, node - previous)
            previous = node
        row_bytes = (len(self.nodes) + 7) // 8
        for row in self.rows:
            out.extend(row.to_bytes(row_bytes, "little"))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BoundaryClosure":
        """Decode a closure section; validates the exact length."""
        try:
            count, pos = read_uvarint(data, 0)
            nodes: List[int] = []
            previous = 0
            for _ in range(count):
                delta, pos = read_uvarint(data, pos)
                previous += delta
                nodes.append(previous)
            row_bytes = (count + 7) // 8
            rows: List[int] = []
            for _ in range(count):
                if pos + row_bytes > len(data):
                    raise EncodingError("truncated closure row")
                row = int.from_bytes(data[pos:pos + row_bytes],
                                     "little")
                if row >> count:
                    raise EncodingError(
                        "closure row has bits beyond the node count")
                rows.append(row)
                pos += row_bytes
        except (EncodingError, IndexError, ValueError) as exc:
            raise EncodingError(f"corrupt closure section: {exc}") \
                from None
        if pos != len(data):
            raise EncodingError(
                f"{len(data) - pos} trailing bytes in closure section")
        return cls(nodes, rows)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BoundaryClosure)
                and self.nodes == other.nodes
                and self.rows == other.rows)

    def __repr__(self) -> str:
        reachable = sum(row.bit_count() for row in self.rows)
        return (f"BoundaryClosure(nodes={len(self.nodes)}, "
                f"pairs={reachable})")


class ProductClosure:
    """Boundary closure in the product with a pattern DFA.

    Vertices are ``(boundary node, state)`` pairs laid out row-major —
    bit/row index ``position(node) * num_states + state`` — over the
    sorted boundary-node list.  ``rows[i]`` has bit ``j`` set iff
    product vertex ``j`` is reachable from vertex ``i`` through at
    least one arc (like :class:`BoundaryClosure`, the relation is not
    reflexive; callers add the source vertex where the empty path
    matters).
    """

    __slots__ = ("nodes", "num_states", "rows", "_index")

    def __init__(self, nodes: List[int], num_states: int,
                 rows: List[int]) -> None:
        self.nodes = nodes
        self.num_states = num_states
        self.rows = rows
        self._index = {node: position
                       for position, node in enumerate(nodes)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, boundary: BoundaryGraph, shards: Sequence[Any],
              bases: Sequence[int], pattern: str, num_states: int,
              step: Callable[[int, int], Optional[int]]
              ) -> "ProductClosure":
        """Probe the shards and close the product boundary graph.

        Arcs come from two sources: each boundary edge ``u -l-> v``
        contributes ``(u, q) -> (v, step(q, l))`` for every state the
        DFA can step on that label (``step`` maps a state and an *edge
        label ID* to the successor state or ``None``); and each shard
        answers one ``batch()`` of state-to-state RPQ probes
        ``("rpq", pattern, a, b, q, q2)`` covering every ordered pair
        of its boundary nodes and state pair — including ``a == b``
        with ``q != q2``, because an in-shard cycle can advance the
        automaton without leaving the node.
        """
        nodes = sorted(boundary.incident)
        index = {node: position for position, node in enumerate(nodes)}
        size = len(nodes) * num_states

        def vertex(node: int, state: int) -> int:
            return index[node] * num_states + state

        adjacency = [0] * size
        for label, att in boundary.edges:
            if len(att) != 2:
                continue
            source, target = att
            for state in range(num_states):
                nxt = step(state, label)
                if nxt is not None:
                    adjacency[vertex(source, state)] |= \
                        1 << vertex(target, nxt)
        for shard, members in enumerate(boundary.members):
            probes = [(a, b, q, q2)
                      for a in members for b in members
                      for q in range(num_states)
                      for q2 in range(num_states)
                      if not (a == b and q == q2)]
            if not probes:
                continue
            base = bases[shard]
            answers = shards[shard].batch(
                [("rpq", pattern, a - base, b - base, q, q2)
                 for a, b, q, q2 in probes])
            for (a, b, q, q2), matched in zip(probes, answers):
                if matched:
                    adjacency[vertex(a, q)] |= 1 << vertex(b, q2)
        rows: List[int] = []
        for start in range(size):
            seen = 0
            frontier = adjacency[start]
            while frontier:
                seen |= frontier
                hop = 0
                for bit in _bits(frontier):
                    hop |= adjacency[bit]
                frontier = hop & ~seen
            rows.append(seen)
        return cls(nodes, num_states, rows)

    # ------------------------------------------------------------------
    # Lookups (global node IDs + DFA states in)
    # ------------------------------------------------------------------
    def bit(self, node: int, state: int) -> int:
        """The single-bit mask of one ``(node, state)`` vertex."""
        return 1 << (self._index[node] * self.num_states + state)

    def row_mask(self, node: int, state: int) -> int:
        """Mask of product vertices reachable from ``(node, state)``."""
        return self.rows[self._index[node] * self.num_states + state]

    def mask_of(self, vertices: Iterable[Tuple[int, int]]) -> int:
        """The union mask of several ``(node, state)`` vertices."""
        mask = 0
        for node, state in vertices:
            mask |= 1 << (self._index[node] * self.num_states + state)
        return mask

    def vertices_in(self, mask: int) -> List[Tuple[int, int]]:
        """The ``(node, state)`` vertices a mask selects, ascending."""
        return [(self.nodes[bit // self.num_states],
                 bit % self.num_states)
                for bit in _bits(mask)]

    # ------------------------------------------------------------------
    # Codec (one entry of the "GRPS" RPQ-closure trailer section)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical encoding: the reach-closure layout + a state count."""
        out = bytearray()
        write_uvarint(out, self.num_states)
        write_uvarint(out, len(self.nodes))
        previous = 0
        for node in self.nodes:
            write_uvarint(out, node - previous)
            previous = node
        size = len(self.nodes) * self.num_states
        row_bytes = (size + 7) // 8
        for row in self.rows:
            out.extend(row.to_bytes(row_bytes, "little"))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProductClosure":
        """Decode a product-closure entry; validates the exact length."""
        try:
            num_states, pos = read_uvarint(data, 0)
            if num_states < 1:
                raise EncodingError("product closure needs >= 1 state")
            count, pos = read_uvarint(data, pos)
            nodes: List[int] = []
            previous = 0
            for _ in range(count):
                delta, pos = read_uvarint(data, pos)
                previous += delta
                nodes.append(previous)
            size = count * num_states
            row_bytes = (size + 7) // 8
            rows: List[int] = []
            for _ in range(size):
                if pos + row_bytes > len(data):
                    raise EncodingError("truncated product-closure row")
                row = int.from_bytes(data[pos:pos + row_bytes],
                                     "little")
                if row >> size:
                    raise EncodingError("product-closure row has bits "
                                        "beyond the vertex count")
                rows.append(row)
                pos += row_bytes
        except (EncodingError, IndexError, ValueError) as exc:
            raise EncodingError(
                f"corrupt product-closure section: {exc}") from None
        if pos != len(data):
            raise EncodingError(
                f"{len(data) - pos} trailing bytes in product-closure "
                f"section")
        return cls(nodes, num_states, rows)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ProductClosure)
                and self.nodes == other.nodes
                and self.num_states == other.num_states
                and self.rows == other.rows)

    def __repr__(self) -> str:
        reachable = sum(row.bit_count() for row in self.rows)
        return (f"ProductClosure(nodes={len(self.nodes)}, "
                f"states={self.num_states}, pairs={reachable})")
