"""The partition layer: partitioners, boundary topology, reach plans.

Everything between "one input graph" and "k independent shard
grammars" lives here, extracted from :mod:`repro.sharding` so each
concern is a module of its own:

``partitioners``
    The node-to-shard assignment zoo (``hash`` / ``connectivity`` /
    ``bfs`` / ``label``), the :data:`PARTITIONERS` registry, and
    :func:`cut_statistics` for scoring any assignment.
``plan``
    :func:`build_plan`: assignment -> pinned shard subgraphs + the
    boundary summary + degree extrema + cut statistics.
``boundary``
    :class:`BoundaryGraph` (the cross-shard summary in global IDs)
    and :class:`BoundaryClosure` (the persisted transitive closure
    that turns cross-shard ``reach`` into one in-shard batch per
    endpoint shard), plus :class:`ProductClosure` — the same closure
    in the product with a pattern DFA, serving cross-shard RPQs.
``planner``
    :class:`ReachPlanner`: the cost model choosing closure /
    chaining / BFS per query, shared by the in-process handle and
    the socket router.

:class:`repro.sharding.ShardedCompressedGraph` is the orchestration
glue on top of this layer.
"""

from repro.partition.boundary import (
    BoundaryClosure,
    BoundaryGraph,
    ProductClosure,
)
from repro.partition.partitioners import (
    PARTITIONERS,
    bfs_partition,
    connectivity_partition,
    cut_statistics,
    hash_partition,
    label_partition,
    resolve_partitioner,
)
from repro.partition.plan import PartitionPlan, build_plan
from repro.partition.planner import ReachPlan, ReachPlanner

__all__ = [
    "PARTITIONERS",
    "BoundaryClosure",
    "BoundaryGraph",
    "PartitionPlan",
    "ProductClosure",
    "ReachPlan",
    "ReachPlanner",
    "bfs_partition",
    "build_plan",
    "connectivity_partition",
    "cut_statistics",
    "hash_partition",
    "label_partition",
    "resolve_partitioner",
]
