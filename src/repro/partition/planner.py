"""Cost-based planning of cross-shard reachability queries.

The sharded handle used to hard-code one branch: chain boundary hops
when ``exits^2 <= |val|``, else BFS the merged neighborhoods.  The
planner replaces that with an explicit decision over *three* regimes,
priced from the boundary statistics every handle already has:

``closure``
    One in-shard Theorem-6 batch per endpoint shard plus O(1) hops in
    the :class:`repro.partition.boundary.BoundaryClosure`.  Per-query
    cost ``exits(S_s) + entries(S_t)`` probes — but the closure must
    first be built (``closure_pairs()`` probes, once per handle), so
    it is only eligible while that build fits ``closure_budget``.
``chaining``
    Per-hop boundary chaining; worst case it probes every exit from
    every entered boundary node: ``total_exits * total_entries``.
``bfs``
    Plain BFS over the merged (LRU-backed) neighborhoods; cost scales
    with the derived graph, ``~ total_nodes`` expansions.

:meth:`ReachPlanner.plan` returns the cheapest eligible strategy as a
:class:`ReachPlan` carrying the estimates, so tests, benchmarks and
the CLI can see *why* a regime was picked.  ``force`` pins a strategy
(differential suites exercise all three on the same handle); the
in-process handle and the socket router consult the same planner, so
served answers take the same route local ones do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.partition.boundary import BoundaryGraph

__all__ = ["ReachPlan", "ReachPlanner"]

#: ``closure_budget`` default: the build may cost up to this many
#: in-shard probes per derived-graph node.  One BFS fallback query
#: already costs ~``total_nodes`` expansions, so the build pays for
#: itself after ~``_BUDGET_PER_NODE`` cross-shard queries — cheap for
#: a long-lived serving handle, while still fencing off the dense
#: regime where the boundary rivals the graph itself.
_BUDGET_PER_NODE = 32
#: ...but never below this floor, so small graphs always qualify.
_BUDGET_FLOOR = 4096


@dataclass(frozen=True)
class ReachPlan:
    """One routing decision plus the estimates that produced it."""

    strategy: str                     # local | closure | chaining | bfs
    reason: str
    costs: Dict[str, float] = field(default_factory=dict)


class ReachPlanner:
    """Prices the cross-shard regimes for one sharded handle.

    Stateless between calls except for ``force`` (a strategy name that
    overrides the cost model; used by differential tests and
    benchmarks) and ``closure_budget`` (the probe budget a closure
    build may spend; ``0`` disables the closure entirely).
    """

    def __init__(self, boundary: BoundaryGraph, total_nodes: int,
                 closure_budget: Optional[int] = None) -> None:
        self._boundary = boundary
        self._total_nodes = total_nodes
        self.closure_budget = (
            max(_BUDGET_PER_NODE * total_nodes, _BUDGET_FLOOR)
            if closure_budget is None else closure_budget)
        #: Pin a strategy ("closure" / "chaining" / "bfs"), bypassing
        #: the cost model.  ``None`` restores cost-based planning.
        self.force: Optional[str] = None

    @property
    def closure_allowed(self) -> bool:
        """Whether a closure build fits the probe budget."""
        boundary = self._boundary
        return (boundary.edge_count > 0
                and boundary.closure_pairs() <= self.closure_budget)

    def rpq_closure_allowed(self, num_states: int) -> bool:
        """Whether a *product* closure build fits the same budget.

        A product closure probes every ordered boundary pair times
        every ordered state pair, so the reach-closure build cost
        scales by ``|Q|^2``; it competes for the same per-node probe
        budget the reach closure does.
        """
        boundary = self._boundary
        return (boundary.edge_count > 0
                and (boundary.closure_pairs() * num_states * num_states
                     <= self.closure_budget))

    def strategy(self, source_shard: int, target_shard: int,
                 closure_built: bool = False) -> str:
        """The strategy name alone — the hot-path probe.

        The reach dispatch calls this per query (twice per planned
        batch request), so it allocates nothing and formats nothing;
        :meth:`plan` wraps the same decision with the cost table and
        a human-readable reason.
        """
        boundary = self._boundary
        if source_shard not in boundary.touched:
            return "local"
        if (source_shard != target_shard
                and not boundary.entries[target_shard]):
            # Entering a shard requires a boundary edge landing in
            # it; without entries the answer is decidable for free.
            return "local"
        if self.force is not None:
            return self.force
        closure_cost = (len(boundary.exits[source_shard])
                        + len(boundary.entries[target_shard]))
        chaining_cost = (boundary.total_exits
                         * max(boundary.total_entries, 1))
        bfs_cost = self._total_nodes
        if ((closure_built or self.closure_allowed)
                and closure_cost <= chaining_cost
                and closure_cost <= bfs_cost):
            return "closure"
        return "chaining" if chaining_cost <= bfs_cost else "bfs"

    def rpq_strategy(self, source_shard: int, target_shard: int,
                     num_states: int,
                     closure_built: bool = False,
                     force: Optional[str] = None) -> str:
        """The cross-shard RPQ route: the reach decision, |Q|-scaled.

        Same regimes as :meth:`strategy`, with every estimate carrying
        the DFA factor the product construction costs: closure lookups
        scale by ``|Q|`` (state-to-state probes per endpoint), chaining
        by ``|Q|^2`` (product waves), BFS by ``|Q|`` (product vertices).
        ``force`` overrides per call (the differential tests pin all
        three routes on one handle without touching reach planning).
        """
        boundary = self._boundary
        if source_shard not in boundary.touched:
            return "local"
        if (source_shard != target_shard
                and not boundary.entries[target_shard]):
            return "local"
        pinned = force if force is not None else self.force
        if pinned is not None:
            return pinned
        closure_cost = (len(boundary.exits[source_shard])
                        + len(boundary.entries[target_shard])
                        ) * num_states
        chaining_cost = (boundary.total_exits
                         * max(boundary.total_entries, 1)
                         * num_states * num_states)
        bfs_cost = self._total_nodes * num_states
        if ((closure_built or self.rpq_closure_allowed(num_states))
                and closure_cost <= chaining_cost
                and closure_cost <= bfs_cost):
            return "closure"
        return "chaining" if chaining_cost <= bfs_cost else "bfs"

    def plan(self, source_shard: int, target_shard: int,
             closure_built: bool = False) -> ReachPlan:
        """One :meth:`strategy` decision plus costs and a reason.

        ``closure_built`` marks the build cost as sunk (the handle
        passes it so a warmed or loaded closure is always preferred
        over re-deriving the decision from the budget).
        """
        boundary = self._boundary
        strategy = self.strategy(source_shard, target_shard,
                                 closure_built)
        if strategy == "local":
            if source_shard not in boundary.touched:
                return ReachPlan(
                    "local", "no boundary edge touches the source "
                             "shard; it cannot be left")
            return ReachPlan(
                "local", "no boundary edge enters the target shard; "
                         "it cannot be reached from outside")
        costs: Dict[str, float] = {
            "closure": (len(boundary.exits[source_shard])
                        + len(boundary.entries[target_shard])),
            "chaining": float(boundary.total_exits
                              * max(boundary.total_entries, 1)),
            "bfs": float(self._total_nodes),
            "closure_build": float(boundary.closure_pairs()),
        }
        if self.force is not None:
            return ReachPlan(self.force,
                             f"forced to {self.force!r}", costs)
        if strategy == "closure":
            reason = ("closure build "
                      + ("already paid"
                         if closure_built else
                         f"({costs['closure_build']:.0f} probes) fits "
                         f"the budget ({self.closure_budget})")
                      + f"; per-query cost {costs['closure']:.0f} "
                        "probes beats the alternatives")
        elif strategy == "chaining":
            reason = (f"sparse boundary: chaining "
                      f"(~{costs['chaining']:.0f} probes) undercuts "
                      f"BFS (~{costs['bfs']:.0f} expansions)")
        else:
            reason = (f"dense boundary: BFS (~{costs['bfs']:.0f} "
                      f"expansions) undercuts chaining "
                      f"(~{costs['chaining']:.0f} probes)")
        return ReachPlan(strategy, reason, costs)
