"""The partition plan: shard subgraphs + boundary summary for a build.

``build_plan`` consumes a partitioner's assignment (input-graph node
IDs) and produces everything shard compression needs: the per-shard
subgraphs with their boundary nodes *pinned* external, the boundary
edge list, the within-shard connectivity classes of the boundary
nodes (the partition-time summary ``components()`` merges), and the
true degree extrema of the whole input.  (Cut statistics live in
:func:`repro.partition.partitioners.cut_statistics` for raw
assignments and ``ShardedCompressedGraph.partition_stats`` for built
handles — the plan does not duplicate them.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.hypergraph import Hypergraph
from repro.util.unionfind import UnionFind

__all__ = ["PartitionPlan", "build_plan"]


class PartitionPlan:
    """Everything the build needs, still in input-graph node IDs."""

    __slots__ = ("shards", "assign", "subgraphs", "boundary_edges",
                 "boundary_nodes", "blocks", "extrema", "degree_error",
                 "simple")

    def __init__(self, shards: int, assign: Dict[int, int],
                 subgraphs: List[Hypergraph],
                 boundary_edges: List[Tuple[int, Tuple[int, ...]]],
                 boundary_nodes: List[List[int]],
                 blocks: List[List[Tuple[int, ...]]],
                 extrema: Optional[Dict[str, int]],
                 degree_error: Optional[str],
                 simple: bool) -> None:
        self.shards = shards
        self.assign = assign
        self.subgraphs = subgraphs
        self.boundary_edges = boundary_edges
        self.boundary_nodes = boundary_nodes
        self.blocks = blocks
        self.extrema = extrema
        self.degree_error = degree_error
        self.simple = simple


def _degree_extrema(graph: Hypergraph
                    ) -> Tuple[Optional[Dict[str, int]], Optional[str]]:
    """True degree extrema of the input, matching ``DegreeQueries``.

    Computed in one pass at partition time; the per-shard grammars
    cannot answer this alone because boundary edges contribute to
    boundary nodes' degrees.  Mirrors
    :class:`repro.queries.degrees.DegreeQueries` exactly: rank-2
    multiplicity counting, and the same errors for hyperedges and
    empty graphs (raised lazily from the sharded handle's ``degree``).
    """
    if graph.node_size == 0:
        return None, "degree extrema undefined: empty graph"
    out: Dict[int, int] = {node: 0 for node in graph.nodes()}
    into: Dict[int, int] = {node: 0 for node in graph.nodes()}
    for _, edge in graph.edges():
        if len(edge.att) != 2:
            return None, (
                "degree queries require a simple derived graph; found "
                f"a terminal edge of rank {len(edge.att)}"
            )
        out[edge.att[0]] += 1
        into[edge.att[1]] += 1
    totals = {node: out[node] + into[node] for node in out}
    return {
        "max_out": max(out.values()),
        "min_out": min(out.values()),
        "max_in": max(into.values()),
        "min_in": min(into.values()),
        "max": max(totals.values()),
        "min": min(totals.values()),
    }, None


def build_plan(graph: Hypergraph, assign: Dict[int, int],
               shards: int) -> PartitionPlan:
    """Split ``graph`` into shard subgraphs + the boundary summary."""
    subgraphs = [Hypergraph() for _ in range(shards)]
    for node in sorted(graph.nodes()):
        subgraphs[assign[node]].add_node(node)
    boundary_edges: List[Tuple[int, Tuple[int, ...]]] = []
    boundary_sets: List[Set[int]] = [set() for _ in range(shards)]
    intra_unions: List[UnionFind] = [UnionFind(g.nodes())
                                     for g in subgraphs]
    for _, edge in graph.edges():
        owners = {assign[node] for node in edge.att}
        if len(owners) == 1:
            owner = next(iter(owners))
            subgraphs[owner].add_edge(edge.label, edge.att)
            anchor = edge.att[0]
            for node in edge.att[1:]:
                intra_unions[owner].union(anchor, node)
        else:
            boundary_edges.append((edge.label, edge.att))
            for node in edge.att:
                boundary_sets[assign[node]].add(node)
    boundary_nodes = [sorted(nodes) for nodes in boundary_sets]
    # Pin the boundary: external nodes are never folded into rules, so
    # these nodes keep their IDs in the shard start graphs.
    for subgraph, pinned in zip(subgraphs, boundary_nodes):
        subgraph.set_external(pinned)
    # Within-shard connectivity classes of the boundary nodes — the
    # partition-time summary that lets components() merge shard counts
    # without ever decompressing.
    blocks: List[List[Tuple[int, ...]]] = []
    for shard, pinned in enumerate(boundary_nodes):
        by_root: Dict[int, List[int]] = {}
        for node in pinned:
            by_root.setdefault(intra_unions[shard].find(node),
                               []).append(node)
        blocks.append([tuple(group) for group in
                       sorted(by_root.values())])
    extrema, degree_error = _degree_extrema(graph)
    simple = all(len(edge.att) == 2 for _, edge in graph.edges())
    return PartitionPlan(shards, assign, subgraphs, boundary_edges,
                         boundary_nodes, blocks, extrema, degree_error,
                         simple)
