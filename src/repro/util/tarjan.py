"""Iterative Tarjan strongly-connected-components algorithm.

Theorem 6 of the paper builds, for every nonterminal, a *skeleton graph*
whose construction starts by condensing the right-hand side into its
strongly connected components "in linear time (e.g., using Tarjan's
algorithm [36])".  Python's default recursion limit makes the classic
recursive formulation unusable on graphs with long paths, so this is the
standard explicit-stack variant.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence


def strongly_connected_components(
    nodes: Iterable[Hashable],
    successors: Mapping[Hashable, Sequence[Hashable]],
) -> List[List[Hashable]]:
    """Compute SCCs of the directed graph (``nodes``, ``successors``).

    Parameters
    ----------
    nodes:
        All nodes of the graph (isolated nodes included).
    successors:
        Adjacency mapping; nodes absent from the mapping are treated as
        having no outgoing edges.  Successors not listed in ``nodes`` are
        still visited (the node set is taken as the union).

    Returns
    -------
    list of lists
        The components in *reverse topological order* of the condensation
        (i.e., a component appears before any component it can reach
        through... is emitted when completed, which is reverse
        topological order: every edge of the condensation goes from a
        later to an earlier component in the returned list).
    """
    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = 0

    def neighbors(node: Hashable) -> Sequence[Hashable]:
        return successors.get(node, ())

    for root in nodes:
        if root in index_of:
            continue
        # Each work item is (node, iterator position) simulated with an
        # explicit index into the successor list.
        work: List[List] = [[root, 0]]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            succ = neighbors(node)
            while child_index < len(succ):
                child = succ[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1][1] = child_index
                    work.append([child, 0])
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def condensation(
    nodes: Iterable[Hashable],
    successors: Mapping[Hashable, Sequence[Hashable]],
) -> "tuple[Dict[Hashable, int], List[List[Hashable]], Dict[int, set]]":
    """Condense a digraph into its SCC DAG.

    Returns ``(component_of, components, dag_successors)`` where
    ``component_of`` maps each node to its component index,
    ``components`` lists members per index, and ``dag_successors`` maps a
    component index to the set of successor component indices (no
    self-loops).
    """
    components = strongly_connected_components(nodes, successors)
    component_of: Dict[Hashable, int] = {}
    for idx, members in enumerate(components):
        for member in members:
            component_of[member] = idx
    dag: Dict[int, set] = {idx: set() for idx in range(len(components))}
    for node, succ in successors.items():
        src = component_of.get(node)
        if src is None:
            continue
        for child in succ:
            dst = component_of.get(child)
            if dst is not None and dst != src:
                dag[src].add(dst)
    return component_of, components, dag
