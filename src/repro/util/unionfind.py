"""Disjoint-set forest (union-find).

Used for:

* detecting disconnected components of the start graph before the
  virtual-edge pass of gRePair (paper section III-A),
* the CMSO-style connected-components speed-up query, and
* several dataset generators.

Union by size with path compression; amortized near-constant per
operation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    Elements are added lazily by :meth:`find`/:meth:`union` or eagerly
    via the constructor / :meth:`add`.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._count = 0
        for element in elements:
            self.add(element)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._count += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns True if a merge happened, False if they already shared a
        set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> Iterator[List[Hashable]]:
        """Yield the current sets as lists (order unspecified)."""
        buckets: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            buckets.setdefault(self.find(element), []).append(element)
        yield from buckets.values()
