"""MSB-first bit stream I/O.

The grammar serialization of the paper (section III-C2) is defined at the
bit level: one bit marks terminal/nonterminal edges, one bit marks
external nodes, and integers are stored as Elias delta codes.  These two
classes provide the byte-packing substrate for that format and for the
k2-tree bit arrays.

Bits are packed most-significant-bit first, which makes the hex dump of a
stream readable left-to-right and matches the usual presentation of
universal codes.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import EncodingError


class BitWriter:
    """Accumulates single bits and fixed-width integers into bytes.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bit(1)
    >>> w.write_bits(0b101, 3)
    >>> w.to_bytes().hex()
    'd0'
    """

    def __init__(self) -> None:
        self._buffer: bytearray = bytearray()
        self._current: int = 0
        self._filled: int = 0  # bits currently held in _current (0..7)
        self._length: int = 0  # total bits written

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1)."""
        self._current = (self._current << 1) | (1 if bit else 0)
        self._filled += 1
        self._length += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first.

        Raises :class:`EncodingError` if ``value`` does not fit in
        ``width`` bits or either argument is negative.
        """
        if width < 0 or value < 0:
            raise EncodingError(
                f"write_bits requires non-negative arguments, got "
                f"value={value}, width={width}"
            )
        if width and value >> width:
            raise EncodingError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_bools(self, bits: Iterable[bool]) -> None:
        """Append an iterable of booleans as bits."""
        for bit in bits:
            self.write_bit(1 if bit else 0)

    def extend(self, other: "BitWriter") -> None:
        """Append every bit written to ``other`` onto this writer."""
        reader = BitReader(other.to_bytes(), len(other))
        for _ in range(len(other)):
            self.write_bit(reader.read_bit())

    def to_bytes(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary.

        The writer remains usable; padding is not added to the internal
        state.
        """
        out = bytearray(self._buffer)
        if self._filled:
            out.append(self._current << (8 - self._filled))
        return bytes(out)

    def bit_length(self) -> int:
        """Alias of ``len(self)`` for readability at call sites."""
        return self._length


class BitReader:
    """Reads bits MSB-first from a bytes object produced by a writer.

    Parameters
    ----------
    data:
        The packed bytes.
    bit_length:
        Number of valid bits in ``data``.  Defaults to ``8 * len(data)``;
        passing the writer's exact bit length makes end-of-stream checks
        precise instead of byte-granular.
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._limit = 8 * len(data) if bit_length is None else bit_length
        if self._limit > 8 * len(data):
            raise EncodingError(
                f"bit_length {self._limit} exceeds data size "
                f"{8 * len(data)} bits"
            )
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._limit - self._pos

    def read_bit(self) -> int:
        """Read one bit; raises :class:`EncodingError` past the end."""
        if self._pos >= self._limit:
            raise EncodingError("bit stream exhausted")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise EncodingError(f"negative width {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_bools(self, count: int) -> List[bool]:
        """Read ``count`` bits as a list of booleans."""
        return [bool(self.read_bit()) for _ in range(count)]

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary (no-op if aligned)."""
        rem = self._pos & 7
        if rem:
            skip = 8 - rem
            if self._pos + skip > self._limit:
                self._pos = self._limit
            else:
                self._pos += skip
