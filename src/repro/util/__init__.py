"""Low-level substrate utilities shared across the library.

This subpackage deliberately has no dependencies on the rest of
:mod:`repro`; the core, encoding and query layers build on top of it.

Modules
-------
bitio
    MSB-first bit stream writer/reader used by all binary encoders.
elias
    Elias gamma and delta universal integer codes (the paper's rule
    format stores node IDs and labels as delta codes, ref. [27]).
varint
    LEB128 variable-length integers for container headers.
unionfind
    Disjoint-set forest with union by size and path compression.
tarjan
    Iterative Tarjan strongly-connected-components algorithm used by the
    skeleton-graph construction of Theorem 6.
"""

from repro.util.bitio import BitReader, BitWriter
from repro.util.elias import (
    decode_delta,
    decode_gamma,
    encode_delta,
    encode_gamma,
)
from repro.util.tarjan import strongly_connected_components
from repro.util.unionfind import UnionFind
from repro.util.varint import read_uvarint, write_uvarint

__all__ = [
    "BitReader",
    "BitWriter",
    "UnionFind",
    "decode_delta",
    "decode_gamma",
    "encode_delta",
    "encode_gamma",
    "read_uvarint",
    "strongly_connected_components",
    "write_uvarint",
]
