"""LEB128 unsigned varints for byte-aligned container headers.

The grammar container format (see :mod:`repro.encoding.container`) stores
section lengths and counts as varints so small grammars stay small while
large ones are unbounded.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import EncodingError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (>= 0) to ``out`` in LEB128 encoding."""
    if value < 0:
        raise EncodingError(f"uvarint requires value >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Read one LEB128 varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EncodingError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise EncodingError("varint too long (corrupt stream?)")


def uvarint_bytes(value: int) -> bytes:
    """Return the LEB128 encoding of ``value`` as a fresh bytes object."""
    buf = bytearray()
    write_uvarint(buf, value)
    return bytes(buf)
