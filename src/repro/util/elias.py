"""Elias gamma and delta universal codes.

The paper's rule encoding ("we store an edge list for every production,
encoding the nodes using a variable-length delta-code", section III-C2,
citing Elias [27]) uses the Elias delta code for positive integers.  We
implement both gamma and delta:

* gamma(n): ``floor(log2 n)`` zero bits, then the binary representation
  of ``n`` (which starts with a 1).
* delta(n): gamma(``floor(log2 n) + 1``) followed by the binary
  representation of ``n`` without its leading 1 bit.

Both code only integers ``n >= 1``; the helpers below raise
:class:`EncodingError` on smaller values so off-by-one bugs surface
immediately rather than corrupting a stream.
"""

from __future__ import annotations

from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter


def _check_positive(value: int) -> None:
    if value < 1:
        raise EncodingError(f"Elias codes require n >= 1, got {value}")


def encode_gamma(writer: BitWriter, value: int) -> None:
    """Append the Elias gamma code of ``value`` (>= 1) to ``writer``."""
    _check_positive(value)
    width = value.bit_length()
    writer.write_bits(0, width - 1)
    writer.write_bits(value, width)


def decode_gamma(reader: BitReader) -> int:
    """Read one Elias gamma code from ``reader``."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value


def encode_delta(writer: BitWriter, value: int) -> None:
    """Append the Elias delta code of ``value`` (>= 1) to ``writer``."""
    _check_positive(value)
    width = value.bit_length()
    encode_gamma(writer, width)
    if width > 1:
        # Binary representation of value minus its leading 1 bit.
        writer.write_bits(value - (1 << (width - 1)), width - 1)


def decode_delta(reader: BitReader) -> int:
    """Read one Elias delta code from ``reader``."""
    width = decode_gamma(reader)
    if width == 1:
        return 1
    return (1 << (width - 1)) | reader.read_bits(width - 1)


def delta_length(value: int) -> int:
    """Number of bits the delta code of ``value`` occupies.

    Useful for size accounting without materializing a stream.
    """
    _check_positive(value)
    width = value.bit_length()
    gamma_width = 2 * width.bit_length() - 1
    return gamma_width + width - 1


def gamma_length(value: int) -> int:
    """Number of bits the gamma code of ``value`` occupies."""
    _check_positive(value)
    return 2 * value.bit_length() - 1
