"""repro.rpq — regular path queries over the compressed grammar.

The RPQ subsystem in three layers:

``regex``
    The pattern language: regex over edge labels (literals, ``.``,
    concatenation, ``|``, ``*``, ``+``, ``?``, parentheses) compiled
    through Thompson NFA -> subset construction -> minimization into a
    canonical, alphabet-independent :class:`PatternDFA`.  Equivalent
    patterns share one canonical :attr:`PatternDFA.key`, which is what
    query caches and skeleton memos key on.
``engine``
    :class:`PatternEngine`: per-handle evaluation with one memoized
    product-skeleton build per canonical DFA
    (:class:`repro.queries.paths.RegularPathQueries`) and a cost-gated
    product-automaton BFS fallback for DFAs large relative to the
    grammar.
``counts``
    :class:`PatternCounts`: GraphZip-style labeled pattern counts
    (single labels, digrams, out-stars) via one bottom-up grammar pass
    per label.

Served end to end as ``QueryKind.RPQ`` and
``QueryKind.PATTERN_COUNT`` — see :mod:`repro.serving.protocol` — and
evaluated over shards with a per-(node, state) product boundary
closure (:class:`repro.partition.boundary.ProductClosure`).
"""

from repro.rpq.counts import PATTERN_COUNT_KINDS, PatternCounts
from repro.rpq.engine import PatternEngine
from repro.rpq.regex import (
    OTHER,
    PatternDFA,
    cache_key,
    compile_pattern,
    parse,
)

__all__ = [
    "OTHER",
    "PATTERN_COUNT_KINDS",
    "PatternCounts",
    "PatternDFA",
    "PatternEngine",
    "cache_key",
    "compile_pattern",
    "parse",
]
