"""GraphZip-style pattern counts evaluated on the grammar.

The companion workload to RPQ: aggregate occurrence counts of tiny
labeled patterns — single labels, labeled digrams, out-stars — over
``val(G)``, computed with one bottom-up grammar pass per label and
*without* decompression (the same idiom as
:mod:`repro.queries.degrees`).

Per rule and per label ``l`` we accumulate each node's
``(out_l, in_l)`` degree **with multiplicity** — own terminal
``l``-edges plus the per-external-position contribution vectors of
child nonterminals.  A node's counts are final in the host where it is
internal (no ancestor edge can attach to an internal node), so
whole-graph aggregates are occurrence-weighted sums over rule bodies::

    count = sum_over_hosts  occ(host) * contribution(host)

where ``occ`` is how many instances of the host the full derivation
expands (1 for the start graph).

Supported sub-kinds (the ``pattern_count`` query's first argument):

``("label", a)``
    Number of ``a``-labeled edges in ``val(G)``.
``("digram", a, b)``
    Number of length-2 label paths ``a . b``:
    ``sum_v in_a(v) * out_b(v)`` (with edge multiplicity).
``("star", a, k)``
    Number of nodes with at least ``k`` outgoing ``a``-edges.
``("node_out", a, v)`` / ``("node_in", a, v)``
    One node's ``a``-labeled out-/in-degree with multiplicity — the
    per-node probe the sharded evaluator batches to correct boundary
    double-counts.

Label arguments are *names*; a name not registered in the alphabet
counts zero (essential for shards that never saw a label).
"""

from __future__ import annotations

import threading
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex

#: Sub-kinds in the order reported by error messages.
PATTERN_COUNT_KINDS = ("digram", "label", "node_in", "node_out", "star")

#: Sub-kind -> (positional arity, description used in arity errors).
_ARITY = {
    "label": (1, "a label name"),
    "digram": (2, "two label names"),
    "star": (2, "a label name and a threshold"),
    "node_out": (2, "a label name and a node ID"),
    "node_in": (2, "a label name and a node ID"),
}


def validate_args(sub_kind, args) -> Tuple:
    """Shared ``pattern_count`` request validation.

    Both evaluators — the grammar-pass :class:`PatternCounts` and the
    sharded sum-plus-boundary-corrections path — raise identical
    errors, so the four executors and the differential suites see one
    error vocabulary.
    """
    arity = _ARITY.get(sub_kind)
    if arity is None:
        raise QueryError(
            f"unknown pattern_count kind {sub_kind!r}; expected one "
            f"of {list(PATTERN_COUNT_KINDS)}")
    expected_count, expected = arity
    if len(args) != expected_count:
        raise QueryError(
            f"pattern_count {sub_kind!r} needs {expected}, "
            f"got {len(args)} argument(s)")
    for name in args[:2 if sub_kind == "digram" else 1]:
        if not isinstance(name, str):
            raise QueryError(
                f"pattern_count label must be a name string, "
                f"got {type(name).__name__}")
    if sub_kind == "star":
        k = args[1]
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise QueryError(
                f"pattern_count star threshold must be a "
                f"non-negative integer, got {k!r}")
    return args


class _Summary(NamedTuple):
    """One rule body's label-degree bookkeeping for one label."""

    nodes: Dict[int, Tuple[int, int]]  # node -> (out, in) multiplicity
    ext_out: Tuple[int, ...]
    ext_in: Tuple[int, ...]
    edge_count: int  # terminal edges with the label in this body


class PatternCounts:
    """Pattern-count evaluation on a :class:`GrammarIndex`."""

    def __init__(self, index: GrammarIndex, alphabet) -> None:
        self._index = index
        self._grammar = index.grammar
        self._alphabet = alphabet
        self._lock = threading.RLock()
        self._order = list(self._grammar.bottom_up_order())
        self._by_name: Dict[str, int] = {}
        for label in alphabet.terminals():
            name = alphabet.name(label)
            if name is not None:
                self._by_name[name] = label
        self._occurrences: Optional[Dict[Optional[int], int]] = None
        self._summaries: Dict[Optional[int],
                              Dict[Optional[int], _Summary]] = {}

    # ------------------------------------------------------------------
    # Public surface (the ``pattern_count`` query)
    # ------------------------------------------------------------------
    def count(self, sub_kind, *args):
        """Evaluate one ``pattern_count`` request."""
        validate_args(sub_kind, args)
        if sub_kind == "label":
            return self._label_total(self._resolve(args[0]))
        if sub_kind == "digram":
            return self._digram_total(self._resolve(args[0]),
                                      self._resolve(args[1]))
        if sub_kind == "star":
            return self._star_total(self._resolve(args[0]), args[1])
        name, node = args
        out, into = self._node_degrees(self._resolve(name), node)
        return out if sub_kind == "node_out" else into

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _label_total(self, label: Optional[int]) -> int:
        if label is None:
            return 0
        occurrences = self._occ()
        summaries = self._summary(label)
        return sum(occurrences[host] * summaries[host].edge_count
                   for host in occurrences)

    def _digram_total(self, first: Optional[int],
                      second: Optional[int]) -> int:
        if first is None or second is None:
            return 0
        occurrences = self._occ()
        in_summaries = self._summary(first)
        out_summaries = self._summary(second)
        total = 0
        for host, weight in occurrences.items():
            contribution = 0
            for node in self._internal_nodes(host):
                into = in_summaries[host].nodes[node][1]
                if into:
                    contribution += (
                        into * out_summaries[host].nodes[node][0])
            total += weight * contribution
        return total

    def _star_total(self, label: Optional[int], k: int) -> int:
        if label is None:
            return 0 if k > 0 else self._index.total_nodes
        occurrences = self._occ()
        summaries = self._summary(label)
        total = 0
        for host, weight in occurrences.items():
            hits = sum(1 for node in self._internal_nodes(host)
                       if summaries[host].nodes[node][0] >= k)
            total += weight * hits
        return total

    def _node_degrees(self, label: Optional[int],
                      node: int) -> Tuple[int, int]:
        rep = self._index.locate(node)
        if label is None:
            return 0, 0
        host = (self._index.label_of_path(rep.edges)
                if rep.edges else None)
        return self._summary(label)[host].nodes[rep.node]

    # ------------------------------------------------------------------
    # Bottom-up machinery
    # ------------------------------------------------------------------
    def _hosts(self) -> List[Optional[int]]:
        """Rule bodies bottom-up, then the start graph (key None)."""
        return self._order + [None]

    def _body(self, host: Optional[int]):
        return (self._grammar.start if host is None
                else self._grammar.rhs(host))

    def _internal_nodes(self, host: Optional[int]):
        body = self._body(host)
        if host is None:
            return list(body.nodes())
        external = set(body.ext)
        return [node for node in body.nodes() if node not in external]

    def _occ(self) -> Dict[Optional[int], int]:
        """Instance count of every host in the full derivation."""
        with self._lock:
            if self._occurrences is None:
                uses: Dict[Optional[int], Dict[int, int]] = {}
                for host in self._hosts():
                    counts: Dict[int, int] = {}
                    for _, edge in self._body(host).edges():
                        if self._grammar.has_rule(edge.label):
                            counts[edge.label] = \
                                counts.get(edge.label, 0) + 1
                    uses[host] = counts
                occurrences: Dict[Optional[int], int] = {None: 1}
                for lhs in reversed(self._order):
                    occurrences[lhs] = sum(
                        weight * uses[user].get(lhs, 0)
                        for user, weight in occurrences.items())
                self._occurrences = occurrences
            return self._occurrences

    def _summary(self, label: int) -> Dict[Optional[int], _Summary]:
        """Per-host label-degree summaries for one terminal label."""
        with self._lock:
            cached = self._summaries.get(label)
            if cached is not None:
                return cached
            summaries: Dict[Optional[int], _Summary] = {}
            for host in self._hosts():
                body = self._body(host)
                nodes = {node: [0, 0] for node in body.nodes()}
                edge_count = 0
                for _, edge in body.edges():
                    if self._grammar.has_rule(edge.label):
                        child = summaries[edge.label]
                        for pos, att_node in enumerate(edge.att):
                            nodes[att_node][0] += child.ext_out[pos]
                            nodes[att_node][1] += child.ext_in[pos]
                        continue
                    if len(edge.att) != 2:
                        raise QueryError(
                            "pattern counts require a simple derived "
                            "graph (rank-2 edges only); "
                            "found a hyperedge")
                    if edge.label == label:
                        edge_count += 1
                        nodes[edge.att[0]][0] += 1
                        nodes[edge.att[1]][1] += 1
                ext = () if host is None else body.ext
                summaries[host] = _Summary(
                    nodes={node: (out, into)
                           for node, (out, into) in nodes.items()},
                    ext_out=tuple(nodes[node][0] for node in ext),
                    ext_in=tuple(nodes[node][1] for node in ext),
                    edge_count=edge_count,
                )
            self._summaries[label] = summaries
            return summaries

    # ------------------------------------------------------------------
    # Argument plumbing
    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> Optional[int]:
        return self._by_name.get(name)
