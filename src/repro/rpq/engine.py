"""The RPQ evaluation engine: memoized skeleton builds + BFS fallback.

One :class:`PatternEngine` lives per compressed handle.  It keeps a
product-skeleton evaluator (:class:`repro.queries.paths.
RegularPathQueries`) per *canonical* pattern DFA, so every equivalent
pattern text — ``a|b``, ``b|a``, ``(a)|b`` — shares one skeleton
build; :attr:`builds` counts the builds that actually happened (the
cache-correctness tests and the bench's skeleton-size accounting read
it through ``CompressedGraph.rpq_info``).

Skeleton precomputation costs ``O(|G| * |Q|^2)`` and each query after
that costs near-nothing, but for a DFA large relative to the grammar
the build can exceed what a direct search would pay.  Like
:class:`repro.partition.planner.ReachPlanner`, the engine is
cost-gated: when ``|G| * |Q|`` outweighs ``FALLBACK_FACTOR *
total_nodes``, queries run as a product-automaton BFS over the
compressed index instead (labeled adjacency expanded on demand via
``NeighborhoodQueries.out_edges`` — still no decompression).  ``force``
overrides the gate for tests and benchmarks.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.exceptions import QueryError
from repro.queries.index import GrammarIndex
from repro.queries.neighborhood import NeighborhoodQueries
from repro.queries.paths import RegularPathQueries
from repro.rpq.regex import PatternDFA, compile_pattern


class PatternEngine:
    """Per-handle RPQ evaluation with per-canonical-DFA memoization."""

    #: Build skeletons while ``|G| * |Q| <= FACTOR * total_nodes``.
    FALLBACK_FACTOR = 8

    def __init__(self, index: GrammarIndex, alphabet,
                 neighborhood: NeighborhoodQueries) -> None:
        self._index = index
        self._alphabet = alphabet
        self._neighborhood = neighborhood
        self._evaluators: Dict[Tuple, RegularPathQueries] = {}
        self._lock = threading.RLock()
        #: Skeleton builds performed (equivalent patterns share one).
        self.builds = 0
        #: Strategy override: None (cost model), "skeleton" or "bfs".
        self.force: Optional[str] = None

    # ------------------------------------------------------------------
    # Strategy
    # ------------------------------------------------------------------
    def use_skeletons(self, dfa: PatternDFA) -> bool:
        """Whether this DFA runs on skeletons or the BFS fallback."""
        if self.force == "skeleton":
            return True
        if self.force == "bfs":
            return False
        if dfa.key in self._evaluators:
            return True  # already paid for
        build_cost = self._index.grammar.size * dfa.num_states
        search_cost = max(1, self._index.total_nodes)
        return build_cost <= self.FALLBACK_FACTOR * search_cost

    def evaluator(self, dfa: PatternDFA) -> RegularPathQueries:
        """The memoized skeleton evaluator for one canonical DFA."""
        with self._lock:
            cached = self._evaluators.get(dfa.key)
            if cached is None:
                grounded = dfa.ground(self._alphabet)
                cached = RegularPathQueries(self._index, grounded)
                self._evaluators[dfa.key] = cached
                self.builds += 1
            return cached

    def info(self) -> Dict[str, int]:
        """Build/size accounting (benchmarks, cache-correctness tests)."""
        with self._lock:
            entries = sum(
                sum(len(pairs) for pairs in
                    evaluator._skeletons.values())
                for evaluator in self._evaluators.values())
            return {
                "skeleton_builds": self.builds,
                "cached_dfas": len(self._evaluators),
                "skeleton_entries": entries,
            }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, pattern: str, source: int, target: int,
                from_state: Optional[int] = None,
                to_state: Optional[int] = None) -> bool:
        """Does some source->target path spell a word of the pattern?

        ``from_state`` / ``to_state`` override the canonical DFA's
        start and accepting states (the sharded evaluator's probe
        surface); omitted, the query is the plain RPQ.
        """
        dfa = compile_pattern(pattern)
        start, accept = _resolve_states(dfa, from_state, to_state)
        total = self._index.total_nodes
        for node in (source, target):
            if not isinstance(node, int) or isinstance(node, bool) \
                    or not 1 <= node <= total:
                raise QueryError(
                    f"node ID {node} out of range 1..{total}")
        if self.use_skeletons(dfa):
            return self.evaluator(dfa).matches(
                source, target, start_state=start, accepting=accept)
        return self._bfs_matches(dfa, source, target, start, accept)

    def _bfs_matches(self, dfa: PatternDFA, source: int, target: int,
                     start: int, accept: FrozenSet[int]) -> bool:
        """Product-automaton BFS, expanding labeled adjacency lazily."""
        if source == target and start in accept:
            return True
        name_of = self._alphabet.name
        out_edges = self._neighborhood.out_edges
        adjacency: Dict[int, list] = {}
        seen: Set[Tuple[int, int]] = {(source, start)}
        queue = deque(seen)
        while queue:
            node, state = queue.popleft()
            edges = adjacency.get(node)
            if edges is None:
                edges = out_edges(node)
                adjacency[node] = edges
            for label, successor in edges:
                next_state = dfa.step_name(state, name_of(label))
                if next_state is None:
                    continue
                if successor == target and next_state in accept:
                    return True
                item = (successor, next_state)
                if item not in seen:
                    seen.add(item)
                    queue.append(item)
        return False


def _resolve_states(dfa: PatternDFA, from_state: Optional[int],
                    to_state: Optional[int]
                    ) -> Tuple[int, FrozenSet[int]]:
    """Validate and apply the optional state overrides."""
    start = dfa.start if from_state is None else from_state
    if not isinstance(start, int) or isinstance(start, bool) or \
            not 0 <= start < dfa.num_states:
        raise QueryError(
            f"rpq from_state {start!r} out of range "
            f"0..{dfa.num_states - 1}")
    if to_state is None:
        return start, dfa.accepting
    if not isinstance(to_state, int) or isinstance(to_state, bool) or \
            not 0 <= to_state < dfa.num_states:
        raise QueryError(
            f"rpq to_state {to_state!r} out of range "
            f"0..{dfa.num_states - 1}")
    return start, frozenset((to_state,))
