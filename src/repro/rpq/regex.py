"""The RPQ regex front end: pattern text -> canonical pattern DFA.

Grammar (whitespace between tokens is ignored)::

    pattern := alt
    alt     := concat ("|" concat)*
    concat  := postfix*                  (empty -> the empty word)
    postfix := atom ("*" | "+" | "?")*
    atom    := NAME | "<" any text ">" | "." | "(" alt ")"

``NAME`` is a maximal run of label-name characters
(``A-Z a-z 0-9 _ : / # -``), so multi-character edge labels like
``rdf:type`` or ``prop/7`` are single tokens; names containing other
characters can be quoted as ``<name>``.  ``.`` matches any edge label.

Compilation is the textbook chain — Thompson NFA, subset construction,
partition-refinement minimization — but over a *symbolic* alphabet:
the names mentioned in the pattern plus one rest-class symbol
(:data:`OTHER`) standing for every label the pattern does not name.
That makes the result independent of any concrete graph alphabet, so
the canonical form (minimal DFA, states renumbered by BFS discovery
order) can be computed once per pattern text and shared across
handles; equivalent patterns such as ``a|b`` and ``b|a`` produce the
same :attr:`PatternDFA.key` and therefore share cache entries and
skeleton builds everywhere.  :meth:`PatternDFA.ground` instantiates
the symbolic DFA against one alphabet's terminal labels, yielding the
:class:`repro.queries.paths.LabelDFA` the product-skeleton engine
consumes.

Malformed patterns raise :class:`repro.exceptions.QueryError` (a
``ReproError``), so the CLI reports them on stderr with exit code 2
and the serving layer returns them on the per-request error channel.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, \
    Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.queries.paths import LabelDFA
from repro.util.varint import read_uvarint, write_uvarint

#: Symbolic rest-class: any edge label the pattern does not name.
OTHER: Tuple[str, ...] = ("other",)

#: A symbolic DFA input: ``("lit", name)`` or :data:`OTHER`.
Symbol = Tuple[str, ...]

_NAME_CHARS = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    "0123456789_:/#-"
)


def _lit(name: str) -> Symbol:
    return ("lit", name)


# ----------------------------------------------------------------------
# AST (exposed for the differential test suite's reference matcher)
# ----------------------------------------------------------------------
class Node:
    """Base class of the tiny pattern AST."""


class Lit(Node):
    def __init__(self, name: str) -> None:
        self.name = name


class Any(Node):
    pass


class Concat(Node):
    def __init__(self, items: List[Node]) -> None:
        self.items = items


class Alt(Node):
    def __init__(self, items: List[Node]) -> None:
        self.items = items


class Star(Node):
    def __init__(self, item: Node) -> None:
        self.item = item


class Plus(Node):
    def __init__(self, item: Node) -> None:
        self.item = item


class Opt(Node):
    def __init__(self, item: Node) -> None:
        self.item = item


# ----------------------------------------------------------------------
# Lexer + recursive-descent parser
# ----------------------------------------------------------------------
def _tokenize(pattern: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(pattern):
        char = pattern[pos]
        if char.isspace():
            pos += 1
            continue
        if char in "|*+?().":
            tokens.append((char, char))
            pos += 1
            continue
        if char == "<":
            end = pattern.find(">", pos + 1)
            if end < 0:
                raise QueryError(
                    f"malformed pattern {pattern!r}: unterminated "
                    f"'<' quote at position {pos}")
            tokens.append(("name", pattern[pos + 1:end]))
            pos = end + 1
            continue
        if char in _NAME_CHARS:
            end = pos
            while end < len(pattern) and pattern[end] in _NAME_CHARS:
                end += 1
            tokens.append(("name", pattern[pos:end]))
            pos = end
            continue
        raise QueryError(
            f"malformed pattern {pattern!r}: unexpected character "
            f"{char!r} at position {pos}")
    return tokens


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.tokens = _tokenize(pattern)
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][0]
        return None

    def fail(self, message: str) -> QueryError:
        return QueryError(
            f"malformed pattern {self.pattern!r}: {message}")

    def parse(self) -> Node:
        node = self.alt()
        if self.pos != len(self.tokens):
            kind, text = self.tokens[self.pos]
            raise self.fail(f"unexpected {text!r}")
        return node

    def alt(self) -> Node:
        items = [self.concat()]
        while self.peek() == "|":
            self.pos += 1
            items.append(self.concat())
        return items[0] if len(items) == 1 else Alt(items)

    def concat(self) -> Node:
        items: List[Node] = []
        while self.peek() in ("name", ".", "("):
            items.append(self.postfix())
        return items[0] if len(items) == 1 else Concat(items)

    def postfix(self) -> Node:
        node = self.atom()
        while self.peek() in ("*", "+", "?"):
            op = self.tokens[self.pos][0]
            self.pos += 1
            node = {"*": Star, "+": Plus, "?": Opt}[op](node)
        return node

    def atom(self) -> Node:
        kind = self.peek()
        if kind == "name":
            name = self.tokens[self.pos][1]
            self.pos += 1
            return Lit(name)
        if kind == ".":
            self.pos += 1
            return Any()
        if kind == "(":
            self.pos += 1
            node = self.alt()
            if self.peek() != ")":
                raise self.fail("expected ')'")
            self.pos += 1
            return node
        if kind in ("*", "+", "?"):
            raise self.fail(f"dangling {self.tokens[self.pos][1]!r}")
        raise self.fail("expected a label, '.', or '('")


def parse(pattern: str) -> Node:
    """Parse ``pattern`` to its AST; raises QueryError when malformed."""
    if not isinstance(pattern, str):
        raise QueryError(
            f"pattern must be a string, got {type(pattern).__name__}")
    return _Parser(pattern).parse()


def pattern_names(node: Node) -> Set[str]:
    """Every label name the pattern mentions literally."""
    names: Set[str] = set()
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, Lit):
            names.add(item.name)
        elif isinstance(item, (Concat, Alt)):
            stack.extend(item.items)
        elif isinstance(item, (Star, Plus, Opt)):
            stack.append(item.item)
    return names


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------
_ANY = ("any",)  # NFA-only wildcard; expanded during determinization


class _NFA:
    def __init__(self) -> None:
        self.eps: Dict[int, List[int]] = {}
        self.edges: Dict[int, List[Tuple[Symbol, int]]] = {}
        self.count = 0

    def state(self) -> int:
        self.count += 1
        return self.count - 1

    def add_eps(self, src: int, dst: int) -> None:
        self.eps.setdefault(src, []).append(dst)

    def add_edge(self, src: int, symbol: Symbol, dst: int) -> None:
        self.edges.setdefault(src, []).append((symbol, dst))


def _build_nfa(node: Node, nfa: _NFA) -> Tuple[int, int]:
    """Thompson fragment for ``node``; returns (entry, exit) states."""
    if isinstance(node, Lit):
        entry, exit_ = nfa.state(), nfa.state()
        nfa.add_edge(entry, _lit(node.name), exit_)
        return entry, exit_
    if isinstance(node, Any):
        entry, exit_ = nfa.state(), nfa.state()
        nfa.add_edge(entry, _ANY, exit_)
        return entry, exit_
    if isinstance(node, Concat):
        entry = exit_ = nfa.state()
        for item in node.items:
            sub_entry, sub_exit = _build_nfa(item, nfa)
            nfa.add_eps(exit_, sub_entry)
            exit_ = sub_exit
        return entry, exit_
    if isinstance(node, Alt):
        entry, exit_ = nfa.state(), nfa.state()
        for item in node.items:
            sub_entry, sub_exit = _build_nfa(item, nfa)
            nfa.add_eps(entry, sub_entry)
            nfa.add_eps(sub_exit, exit_)
        return entry, exit_
    if isinstance(node, (Star, Plus, Opt)):
        entry, exit_ = nfa.state(), nfa.state()
        sub_entry, sub_exit = _build_nfa(node.item, nfa)
        nfa.add_eps(entry, sub_entry)
        nfa.add_eps(sub_exit, exit_)
        if isinstance(node, (Star, Opt)):
            nfa.add_eps(entry, exit_)
        if isinstance(node, (Star, Plus)):
            nfa.add_eps(sub_exit, sub_entry)
        return entry, exit_
    raise QueryError(f"unknown pattern node {type(node).__name__}")


def _eps_closure(nfa: _NFA, states: Iterable[int]) -> FrozenSet[int]:
    seen = set(states)
    stack = list(seen)
    while stack:
        state = stack.pop()
        for succ in nfa.eps.get(state, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return frozenset(seen)


def _symbol_order(symbol: Symbol) -> Tuple[int, str]:
    """Sort key placing literal symbols (by name) before OTHER."""
    if symbol == OTHER:
        return (1, "")
    return (0, symbol[1])


def _determinize(nfa: _NFA, entry: int, exit_: int,
                 names: Set[str]) -> Tuple[int, FrozenSet[int],
                                           Dict[Tuple[int, Symbol], int]]:
    """Subset construction over {named symbols} + OTHER."""
    symbols = sorted([_lit(name) for name in names] + [OTHER],
                     key=_symbol_order)
    start = _eps_closure(nfa, [entry])
    subset_ids: Dict[FrozenSet[int], int] = {start: 0}
    worklist = [start]
    transitions: Dict[Tuple[int, Symbol], int] = {}
    while worklist:
        subset = worklist.pop()
        src = subset_ids[subset]
        for symbol in symbols:
            move: Set[int] = set()
            for state in subset:
                for edge_symbol, dst in nfa.edges.get(state, ()):
                    # ANY edges fire on every input symbol; literal
                    # edges only on their own name (never on OTHER).
                    if edge_symbol == _ANY or edge_symbol == symbol:
                        move.add(dst)
            if not move:
                continue
            closure = _eps_closure(nfa, move)
            if closure not in subset_ids:
                subset_ids[closure] = len(subset_ids)
                worklist.append(closure)
            transitions[(src, symbol)] = subset_ids[closure]
    accepting = frozenset(index for subset, index in subset_ids.items()
                          if exit_ in subset)
    return len(subset_ids), accepting, transitions


def _minimize(num_states: int, accepting: FrozenSet[int],
              transitions: Dict[Tuple[int, Symbol], int],
              names: Set[str]) -> Tuple[int, int, FrozenSet[int],
                                        Dict[Tuple[int, Symbol], int]]:
    """Moore partition refinement with an implicit dead state.

    Useless states (those that cannot reach acceptance) refine into the
    dead state's block and are dropped with it, leaving a partial
    minimal DFA.  Returns (num_states, start, accepting, transitions)
    with states renumbered canonically: BFS discovery order from the
    start state, expanding transitions in sorted symbol order (literal
    names ascending, OTHER last).
    """
    symbols = sorted([_lit(name) for name in names] + [OTHER],
                     key=_symbol_order)
    dead = num_states
    block = [1 if state in accepting else 0
             for state in range(num_states)] + [0]

    def target_block(state: int, symbol: Symbol) -> int:
        if state == dead:
            return block[dead]
        return block[transitions.get((state, symbol), dead)]

    while True:
        signatures: Dict[Tuple, int] = {}
        next_block = [0] * (num_states + 1)
        for state in range(num_states + 1):
            signature = (block[state],
                         tuple(target_block(state, symbol)
                               for symbol in symbols))
            if signature not in signatures:
                signatures[signature] = len(signatures)
            next_block[state] = signatures[signature]
        if next_block == block:
            break
        block = next_block

    dead_block = block[dead]
    if block[0] == dead_block:
        # The empty language: unreachable in this regex algebra (every
        # pattern matches at least one word), kept for safety.
        return 1, 0, frozenset(), {}

    # Canonical renumbering by BFS discovery order.
    order: Dict[int, int] = {block[0]: 0}
    queue = [block[0]]
    minimal: Dict[Tuple[int, Symbol], int] = {}
    while queue:
        src_block = queue.pop(0)
        src = order[src_block]
        # Any member state represents the block.
        member = next(state for state in range(num_states)
                      if block[state] == src_block)
        for symbol in symbols:
            dst_state = transitions.get((member, symbol))
            if dst_state is None:
                continue
            dst_block = block[dst_state]
            if dst_block == dead_block:
                continue
            if dst_block not in order:
                order[dst_block] = len(order)
                queue.append(dst_block)
            minimal[(src, symbol)] = order[dst_block]
    minimal_accepting = frozenset(
        order[block[state]] for state in accepting
        if block[state] in order)
    return len(order), 0, minimal_accepting, minimal


# ----------------------------------------------------------------------
# The canonical symbolic DFA
# ----------------------------------------------------------------------
class PatternDFA:
    """A minimal, canonically numbered DFA over pattern symbols.

    Alphabet-independent: inputs are the label names the pattern
    mentions plus :data:`OTHER` for every other label.  Equivalent
    patterns (over the same mentioned-name set) share one canonical
    form, exposed as the hashable :attr:`key`.
    """

    def __init__(self, num_states: int, start: int,
                 accepting: Iterable[int],
                 transitions: Mapping[Tuple[int, Symbol], int]) -> None:
        self.num_states = num_states
        self.start = start
        self.accepting = frozenset(accepting)
        self.transitions = dict(transitions)
        self.names = frozenset(symbol[1]
                               for _, symbol in self.transitions
                               if symbol != OTHER)
        self.key: Tuple = (
            num_states, start, tuple(sorted(self.accepting)),
            tuple(sorted((state, symbol, dst) for (state, symbol), dst
                         in self.transitions.items())),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternDFA) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def step_name(self, state: int, name: Optional[str]) -> Optional[int]:
        """Next state after reading an edge whose label is ``name``."""
        if name is not None and name in self.names:
            return self.transitions.get((state, _lit(name)))
        return self.transitions.get((state, OTHER))

    def accepts(self, word: Sequence[Optional[str]]) -> bool:
        """True when the label-name sequence ``word`` is in L(M)."""
        state: Optional[int] = self.start
        for name in word:
            state = self.step_name(state, name)
            if state is None:
                return False
        return state in self.accepting

    def ground_names(self, label_names: Mapping[int, Optional[str]]
                     ) -> LabelDFA:
        """Instantiate over concrete labels via a label->name mapping.

        Labels whose name the pattern mentions follow that literal's
        transitions; every other label (including unnamed ones) follows
        the OTHER rest-class.
        """
        transitions: Dict[Tuple[int, int], int] = {}
        for label, name in label_names.items():
            for state in range(self.num_states):
                dst = self.step_name(state, name)
                if dst is not None:
                    transitions[(state, label)] = dst
        return LabelDFA(max(1, self.num_states), self.start,
                        self.accepting, transitions)

    def ground(self, alphabet) -> LabelDFA:
        """Instantiate over one :class:`Alphabet`'s terminal labels."""
        return self.ground_names({label: alphabet.name(label)
                                  for label in alphabet.terminals()})

    # ------------------------------------------------------------------
    # Serialization (for the GRPS product-closure trailer)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        out = bytearray()
        write_uvarint(out, self.num_states)
        write_uvarint(out, self.start)
        write_uvarint(out, len(self.accepting))
        for state in sorted(self.accepting):
            write_uvarint(out, state)
        names = sorted(self.names)
        write_uvarint(out, len(names))
        for name in names:
            encoded = name.encode("utf-8")
            write_uvarint(out, len(encoded))
            out.extend(encoded)
        entries = sorted((state, symbol, dst) for (state, symbol), dst
                         in self.transitions.items())
        write_uvarint(out, len(entries))
        for state, symbol, dst in entries:
            write_uvarint(out, state)
            # Symbol index: position in the sorted name list, or
            # len(names) for OTHER.
            index = (len(names) if symbol == OTHER
                     else names.index(symbol[1]))
            write_uvarint(out, index)
            write_uvarint(out, dst)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PatternDFA":
        from repro.exceptions import EncodingError

        try:
            num_states, pos = read_uvarint(data, 0)
            start, pos = read_uvarint(data, pos)
            count, pos = read_uvarint(data, pos)
            accepting = []
            for _ in range(count):
                state, pos = read_uvarint(data, pos)
                accepting.append(state)
            count, pos = read_uvarint(data, pos)
            names: List[str] = []
            for _ in range(count):
                length, pos = read_uvarint(data, pos)
                if pos + length > len(data):
                    raise EncodingError("truncated pattern DFA name")
                names.append(data[pos:pos + length].decode("utf-8"))
                pos += length
            count, pos = read_uvarint(data, pos)
            transitions: Dict[Tuple[int, Symbol], int] = {}
            for _ in range(count):
                state, pos = read_uvarint(data, pos)
                index, pos = read_uvarint(data, pos)
                dst, pos = read_uvarint(data, pos)
                symbol = (OTHER if index == len(names)
                          else _lit(names[index]))
                transitions[(state, symbol)] = dst
        except (ValueError, IndexError, UnicodeDecodeError) as exc:
            raise EncodingError(
                f"corrupt pattern DFA section: {exc}") from None
        if pos != len(data):
            raise EncodingError(
                f"{len(data) - pos} trailing bytes after pattern DFA")
        return cls(num_states, start, accepting, transitions)


@lru_cache(maxsize=512)
def compile_pattern(pattern: str) -> PatternDFA:
    """Compile pattern text to its canonical :class:`PatternDFA`.

    Memoized on the pattern text: repeated requests (cache keys, probe
    frames, per-shard grounding) parse and minimize once per process.
    """
    ast = parse(pattern)
    names = pattern_names(ast)
    nfa = _NFA()
    entry, exit_ = _build_nfa(ast, nfa)
    num_states, accepting, transitions = _determinize(
        nfa, entry, exit_, names)
    return PatternDFA(*_minimize(num_states, accepting, transitions,
                                 names))


def cache_key(pattern) -> Tuple:
    """The LRU/dedup key component for a pattern argument.

    Canonical whenever the pattern compiles — ``a|b`` and ``b|a`` map
    to the same key — and a raw fallback otherwise, so malformed
    patterns surface their error at evaluation time instead of
    breaking key computation during batch planning.
    """
    try:
        return compile_pattern(pattern).key
    except (QueryError, TypeError):
        return ("raw", pattern)
