"""Named dataset registry: one stand-in per row of Tables I-III.

Sizes are scaled down from the paper's datasets (pure-Python gRePair is
polynomial but slow; DESIGN.md section 3 records the substitution).
The *relative* characteristics are preserved: family-typical structure,
label-count regimes and the ordering of FP-equivalence-class fractions.

Every entry is a zero-argument factory returning
``(Hypergraph, Alphabet)``; :func:`load_dataset` memoizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.datasets.rdf import (
    identica_graph,
    jamendo_graph,
    properties_graph,
    types_graph,
)
from repro.datasets.synthetic import (
    coauthorship_graph,
    communication_graph,
    copy_model_graph,
)
from repro.datasets.versions import (
    dblp_version_graph,
    game_state_versions,
)
from repro.exceptions import DatasetError

GraphFactory = Callable[[], Tuple[Hypergraph, Alphabet]]


@dataclass(frozen=True)
class Dataset:
    """Registry entry: a named graph family stand-in."""

    name: str
    family: str  # "network" | "rdf" | "version"
    paper_reference: str  # the dataset it stands in for
    factory: GraphFactory


def _network(name: str, ref: str, factory: GraphFactory) -> Dataset:
    return Dataset(name, "network", ref, factory)


def _rdf(name: str, ref: str, factory: GraphFactory) -> Dataset:
    return Dataset(name, "rdf", ref, factory)


def _version(name: str, ref: str, factory: GraphFactory) -> Dataset:
    return Dataset(name, "version", ref, factory)


#: All dataset stand-ins, keyed by name.  Table I (network graphs):
DATASETS: Dict[str, Dataset] = {}

for _entry in [
    _network("ca-astroph", "CA-AstroPh (dense co-authorship)",
             lambda: coauthorship_graph(900, new_author_rate=0.35,
                                        max_authors=6, seed=101)),
    _network("ca-condmat", "CA-CondMat (medium co-authorship)",
             lambda: coauthorship_graph(900, new_author_rate=0.55,
                                        max_authors=4, seed=102)),
    _network("ca-grqc", "CA-GrQc (small co-authorship)",
             lambda: coauthorship_graph(450, new_author_rate=0.5,
                                        max_authors=4, seed=103)),
    _network("email-enron", "Email-Enron (corporate e-mail)",
             lambda: communication_graph(1500, 5200, sender_exp=2.0,
                                         receiver_exp=1.6, seed=104)),
    _network("email-euall", "Email-EuAll (sparse e-mail, many hubs)",
             lambda: communication_graph(4000, 6000, sender_exp=2.6,
                                         receiver_exp=1.2, seed=105)),
    _network("notredame", "NotreDame (web graph)",
             lambda: copy_model_graph(2000, out_degree=5,
                                      copy_prob=0.75, seed=106)),
    _network("wiki-talk", "Wiki-Talk (talk-page activity)",
             lambda: communication_graph(5000, 8000, sender_exp=2.8,
                                         receiver_exp=1.1, seed=107)),
    _network("wiki-vote", "Wiki-Vote (small dense voting)",
             lambda: communication_graph(900, 5000, sender_exp=1.8,
                                         receiver_exp=1.5, seed=108)),
    # Table II (RDF graphs):
    _rdf("rdf-properties-en", "1: Specific mapping-based properties (en)",
         lambda: properties_graph(1800, predicates=71, templates=18,
                                  seed=201)),
    _rdf("rdf-types-ru", "2: Mapping-based types (ru) - 79 classes",
         lambda: types_graph(6000, classes=25, class_exp=2.2, seed=202)),
    _rdf("rdf-types-es", "3: Mapping-based types (es) - 336 classes",
         lambda: types_graph(7000, classes=90, class_exp=2.0, seed=203)),
    _rdf("rdf-types-de", "4: Mapping-based types (de with en)",
         lambda: types_graph(9000, classes=90, class_exp=1.6, seed=204)),
    _rdf("rdf-identica", "5: Identica microblog",
         lambda: identica_graph(1200, seed=205)),
    _rdf("rdf-jamendo", "6: Jamendo music metadata",
         lambda: jamendo_graph(260, seed=206)),
    # Table III (version graphs):
    _version("tic-tac-toe", "Tic-Tac-Toe winning positions (3 labels)",
             lambda: game_state_versions(700, templates=4, labels=3,
                                         template_nodes=5,
                                         template_edges=7, seed=301)),
    _version("chess", "Chess legal moves (12 labels)",
             lambda: game_state_versions(700, templates=220, labels=12,
                                         template_nodes=7,
                                         template_edges=10, seed=302)),
    _version("dblp60-70", "DBLP co-authorship 1960-1970 (11 versions)",
             lambda: dblp_version_graph(11, 30, seed=303)),
    _version("dblp60-90", "DBLP co-authorship 1960-1990 (31 versions)",
             lambda: dblp_version_graph(31, 30, new_author_rate=0.72,
                                        seed=304)),
]:
    DATASETS[_entry.name] = _entry

_CACHE: Dict[str, Tuple[Hypergraph, Alphabet]] = {}


def load_dataset(name: str) -> Tuple[Hypergraph, Alphabet]:
    """Instantiate (and memoize) the named dataset stand-in."""
    try:
        dataset = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if name not in _CACHE:
        _CACHE[name] = dataset.factory()
    return _CACHE[name]


def names_by_family(family: str) -> List[str]:
    """Dataset names of one family, in registry order."""
    return [d.name for d in DATASETS.values() if d.family == family]
