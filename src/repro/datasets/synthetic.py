"""Synthetic network-graph generators (stand-ins for Table I).

Each generator reproduces the structural signature of one SNAP family
used in the paper:

* :func:`coauthorship_graph` — CA-AstroPh / CA-CondMat / CA-GrQc:
  papers arrive over time, each contributing a small author clique
  with preferential attachment; co-authorship graphs are unions of
  such cliques (symmetric directed edges, as SNAP publishes them).
* :func:`communication_graph` — Email-Enron / Email-EuAll / Wiki-Talk
  / Wiki-Vote: heavy-tailed activity where a few hubs send/receive
  most messages (Zipf-distributed endpoints).
* :func:`copy_model_graph` — NotreDame: the classic web-graph copy
  model (a new page copies a fraction of the out-links of a random
  existing page), which produces the shared-adjacency redundancy web
  compressors exploit.
* :func:`random_graph` — Erdos-Renyi control (near-incompressible).

All generators are seeded, deterministic, and return
``(Hypergraph, Alphabet)`` with a single edge label.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import DatasetError


def _finish(n: int, edges: Set[Tuple[int, int]],
            label_name: str = "edge") -> Tuple[Hypergraph, Alphabet]:
    alphabet = Alphabet()
    label = alphabet.add_terminal(2, label_name)
    graph = Hypergraph()
    for _ in range(n):
        graph.add_node()
    for u, v in sorted(edges):
        graph.add_edge(label, (u, v))
    return graph, alphabet


def _zipf_node(rng: random.Random, n: int, exponent: float) -> int:
    """A 1-based node index with approximately Zipf(exponent) weight."""
    # Inverse-CDF sampling of a bounded Pareto; cheap and good enough.
    u = rng.random()
    value = int(n * (u ** exponent)) + 1
    return min(value, n)


def random_graph(n: int, m: int, seed: int = 0) -> Tuple[Hypergraph,
                                                         Alphabet]:
    """Erdos-Renyi style digraph with ``m`` distinct edges."""
    if m > n * (n - 1):
        raise DatasetError(f"cannot place {m} distinct edges on {n} nodes")
    rng = random.Random(seed)
    edges: Set[Tuple[int, int]] = set()
    while len(edges) < m:
        u = rng.randrange(1, n + 1)
        v = rng.randrange(1, n + 1)
        if u != v:
            edges.add((u, v))
    return _finish(n, edges)


def coauthorship_graph(papers: int, new_author_rate: float = 0.55,
                       max_authors: int = 5,
                       seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Preferential-attachment co-authorship network (CA-*).

    Every paper draws 2..``max_authors`` authors; each is a fresh
    author with probability ``new_author_rate``, otherwise an existing
    author chosen proportionally to prior appearances.  The paper's
    clique is added with both edge directions (SNAP ships symmetric
    pairs and the paper treats them "as lists of directed edges").
    """
    rng = random.Random(seed)
    appearances: List[int] = []  # multiset of author IDs, by appearance
    num_authors = 0
    edges: Set[Tuple[int, int]] = set()
    for _ in range(papers):
        team_size = rng.randint(2, max_authors)
        team: Set[int] = set()
        while len(team) < team_size:
            if not appearances or rng.random() < new_author_rate:
                num_authors += 1
                team.add(num_authors)
            else:
                team.add(rng.choice(appearances))
        for author in team:
            appearances.append(author)
        members = sorted(team)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.add((u, v))
                edges.add((v, u))
    return _finish(max(num_authors, 1), edges)


def communication_graph(n: int, m: int, sender_exp: float = 2.2,
                        receiver_exp: float = 1.4,
                        seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Heavy-tailed communication network (Email-*, Wiki-*).

    Senders are strongly skewed (few very active accounts), receivers
    moderately so; the result has the hub-dominated degree profile of
    e-mail and wiki-talk graphs.
    """
    rng = random.Random(seed)
    edges: Set[Tuple[int, int]] = set()
    attempts = 0
    while len(edges) < m and attempts < 50 * m:
        attempts += 1
        u = _zipf_node(rng, n, sender_exp)
        v = _zipf_node(rng, n, receiver_exp)
        if u != v:
            edges.add((u, v))
    return _finish(n, edges)


def copy_model_graph(n: int, out_degree: int = 5, copy_prob: float = 0.7,
                     seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Web-graph copy model (NotreDame).

    Node ``t`` picks a random earlier *prototype* page and copies each
    of its out-links with probability ``copy_prob``, filling the rest
    of its ``out_degree`` slots with uniform random earlier pages.
    Copying makes consecutive adjacency lists overlap heavily — the
    regularity both LM and k2-trees (and gRePair) exploit.
    """
    rng = random.Random(seed)
    out_links: List[List[int]] = [[] for _ in range(n + 1)]
    edges: Set[Tuple[int, int]] = set()
    for t in range(2, n + 1):
        targets: Set[int] = set()
        prototype = rng.randrange(1, t)
        for link in out_links[prototype]:
            if len(targets) >= out_degree:
                break
            if rng.random() < copy_prob and link != t:
                targets.add(link)
        while len(targets) < min(out_degree, t - 1):
            candidate = rng.randrange(1, t)
            if candidate != t:
                targets.add(candidate)
        out_links[t] = sorted(targets)
        for v in targets:
            edges.add((t, v))
    return _finish(n, edges)
