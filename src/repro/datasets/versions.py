"""Version-graph builders (stand-ins for Table III and Figs. 13/14).

A *version graph* is the disjoint union of multiple versions of the
same graph (paper section IV-A).  The paper uses:

* **Tic-Tac-Toe / Chess** — collections of small labeled game-state
  graphs (from the subdue datasets); massively repetitive for TTT
  (``|[~FP]| = 9``!), diverse for Chess.
* **DBLP60-70 / DBLP60-90** — yearly snapshots of a growing
  co-authorship network, disjoint-unioned.
* **Fig. 13** — 8..4096 identical copies of one tiny graph ("a
  directed circle with four nodes and one of the two possible diagonal
  edges"): the exponential-compression showcase.

Builders here create those shapes from the seeded generators of
:mod:`repro.datasets.synthetic`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import DatasetError


def disjoint_union(
    graphs: Sequence[Tuple[Hypergraph, Alphabet]],
) -> Tuple[Hypergraph, Alphabet]:
    """Disjoint union; labels are unified by *name* across versions."""
    union_alphabet = Alphabet()
    union = Hypergraph()
    for graph, alphabet in graphs:
        label_map: Dict[int, int] = {}
        for label in alphabet:
            name = alphabet.name(label) or f"label/{label}"
            label_map[label] = union_alphabet.ensure_terminal(
                name, alphabet.rank(label)
            )
        node_map: Dict[int, int] = {}
        for node in sorted(graph.nodes()):
            node_map[node] = union.add_node()
        for _, edge in graph.edges():
            union.add_edge(label_map[edge.label],
                           tuple(node_map[n] for n in edge.att))
    return union, union_alphabet


def fig13_base_graph() -> Tuple[Hypergraph, Alphabet]:
    """The paper's Fig. 13 unit: 4-node directed circle + one diagonal."""
    alphabet = Alphabet()
    label = alphabet.add_terminal(2, "edge")
    graph = Hypergraph()
    a, b, c, d = (graph.add_node() for _ in range(4))
    graph.add_edge(label, (a, b))
    graph.add_edge(label, (b, c))
    graph.add_edge(label, (c, d))
    graph.add_edge(label, (d, a))
    graph.add_edge(label, (a, c))  # one of the two possible diagonals
    return graph, alphabet


def identical_copies(base: Tuple[Hypergraph, Alphabet],
                     count: int) -> Tuple[Hypergraph, Alphabet]:
    """``count`` disjoint identical copies of ``base`` (Fig. 13)."""
    if count < 1:
        raise DatasetError(f"count must be >= 1, got {count}")
    return disjoint_union([base] * count)


# ----------------------------------------------------------------------
# DBLP-style growing co-authorship snapshots
# ----------------------------------------------------------------------
def coauthorship_snapshots(
    years: int,
    papers_per_year: int,
    new_author_rate: float = 0.8,
    max_authors: int = 3,
    seed: int = 0,
) -> List[Tuple[Hypergraph, Alphabet]]:
    """Cumulative yearly snapshots of one growing co-author network.

    Snapshot ``i`` contains all papers of years ``0..i`` — successive
    versions are near-identical (the whole point of version-graph
    compression).  Node IDs are stable across snapshots, mirroring the
    DBLP author-ID construction in the paper.
    """
    rng = random.Random(seed)
    appearances: List[int] = []
    num_authors = 0
    edges: Set[Tuple[int, int]] = set()
    snapshots: List[Tuple[Hypergraph, Alphabet]] = []
    for _ in range(years):
        for _ in range(papers_per_year):
            team_size = rng.randint(2, max_authors)
            team: Set[int] = set()
            while len(team) < team_size:
                if not appearances or rng.random() < new_author_rate:
                    num_authors += 1
                    team.add(num_authors)
                else:
                    team.add(rng.choice(appearances))
            appearances.extend(team)
            members = sorted(team)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    edges.add((u, v))
        alphabet = Alphabet()
        label = alphabet.add_terminal(2, "coauthor")
        graph = Hypergraph()
        for _ in range(num_authors):
            graph.add_node()
        for u, v in sorted(edges):
            graph.add_edge(label, (u, v))
        snapshots.append((graph, alphabet))
    return snapshots


def dblp_version_graph(years: int, papers_per_year: int,
                       new_author_rate: float = 0.8,
                       seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Disjoint union of cumulative snapshots (DBLP60-70 / DBLP60-90)."""
    return disjoint_union(coauthorship_snapshots(
        years, papers_per_year, new_author_rate=new_author_rate, seed=seed
    ))


# ----------------------------------------------------------------------
# Game-state version graphs (Tic-Tac-Toe / Chess stand-ins)
# ----------------------------------------------------------------------
def game_state_versions(
    states: int,
    templates: int,
    labels: int,
    template_nodes: int = 5,
    template_edges: int = 6,
    seed: int = 0,
) -> Tuple[Hypergraph, Alphabet]:
    """Union of many small labeled graphs drawn from few templates.

    Tic-Tac-Toe's winning-position graph is extremely repetitive (the
    paper measures only 9 FP-equivalence classes on 5634 nodes): a
    handful of position shapes repeated over and over.  We model this
    as ``states`` copies sampled from ``templates`` distinct random
    labeled template graphs.  Chess is the same construction with many
    more templates and labels.
    """
    rng = random.Random(seed)
    template_pool: List[Tuple[Hypergraph, Alphabet]] = []
    for t in range(templates):
        alphabet = Alphabet()
        label_ids = [alphabet.ensure_terminal(f"move/{i}", 2)
                     for i in range(labels)]
        graph = Hypergraph()
        nodes = [graph.add_node() for _ in range(template_nodes)]
        placed: Set[Tuple[int, int, int]] = set()
        while len(placed) < template_edges:
            u, v = rng.sample(nodes, 2)
            label = rng.choice(label_ids)
            if (label, u, v) in placed:
                continue
            placed.add((label, u, v))
            graph.add_edge(label, (u, v))
        template_pool.append((graph, alphabet))
    chosen = [template_pool[rng.randrange(templates)]
              for _ in range(states)]
    return disjoint_union(chosen)
