"""Synthetic RDF graph generators (stand-ins for Table II).

The paper's RDF datasets fall into three structural regimes, and its
headline RDF result — representations *orders of magnitude* smaller
than k2-trees on the DBpedia "types" graphs — is explicitly attributed
to "the majority of their nodes being laid out in a star pattern: few
hub nodes of very high degree are connected to nodes, most of which
are only connected to the hub node" (section IV-C2).  The generators
reproduce those regimes:

* :func:`types_graph` — a single ``rdf:type`` predicate, every
  instance pointing to one of a few dozen class hubs: giant stars,
  tiny ``|[~FP]|`` (the paper reports 79 / 336 / 335 classes).
* :func:`properties_graph` — infobox properties: tens of predicates,
  subjects attach both unique literals and shared (Zipf-popular)
  object values; moderately star-ish, large ``|[~FP]|``.
* :func:`jamendo_graph` — a linked-data schema (artist -> record ->
  track -> signal chains plus tag/metadata edges), ~25 predicates,
  highly regular per-entity substructure.

All return ``(Hypergraph, Alphabet)`` with named predicates.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.datasets.io import graph_from_triples


def types_graph(instances: int, classes: int = 40,
                class_exp: float = 1.8,
                seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """DBpedia mapping-based *types* stand-in: one predicate, hub stars.

    Each instance gets exactly one ``rdf:type`` edge to a class chosen
    with Zipf skew (a handful of classes dominate, as in DBpedia).
    """
    rng = random.Random(seed)

    def triples():
        for i in range(instances):
            u = rng.random()
            cls = min(int(classes * (u ** class_exp)), classes - 1)
            yield (f"instance/{i}", "rdf:type", f"class/{cls}")

    graph, alphabet, _ = graph_from_triples(triples())
    return graph, alphabet


def properties_graph(subjects: int, predicates: int = 30,
                     templates: int = 15,
                     shared_pool: int = 250, shared_prob: float = 0.6,
                     seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """DBpedia *specific mapping-based properties* stand-in.

    Infobox data is template-driven: subjects of the same kind (films,
    people, places...) carry the same predicate set.  Each subject is
    assigned one of ``templates`` infobox templates (Zipf-popular);
    the template fixes its predicate list; each property value points
    either to a shared popular object (Zipf over a pool — countries,
    years, genres) or to a subject-unique literal node.  Repeated
    template stars with shared hubs are what gRePair exploits on the
    real dataset.
    """
    rng = random.Random(seed)
    template_preds: List[List[int]] = []
    for _ in range(templates):
        size = rng.randint(3, 6)
        template_preds.append(sorted(rng.sample(range(predicates),
                                                min(size, predicates))))

    def triples():
        for s in range(subjects):
            u = rng.random()
            template = min(int(templates * (u ** 1.8)), templates - 1)
            for p in template_preds[template]:
                if rng.random() < shared_prob:
                    v = rng.random()
                    value = min(int(shared_pool * (v ** 2.0)),
                                shared_pool - 1)
                    obj = f"value/{p}/{value}"
                else:
                    obj = f"literal/{s}/{p}"
                yield (f"subject/{s}", f"prop/{p}", obj)

    graph, alphabet, _ = graph_from_triples(triples())
    return graph, alphabet


def jamendo_graph(artists: int, seed: int = 0) -> Tuple[Hypergraph,
                                                        Alphabet]:
    """Jamendo linked-data stand-in: regular entity chains.

    Schema (a simplification of the Music Ontology layout of the real
    dataset): every artist made 1-3 records; every record has 3-8
    tracks; every track has one signal; entities carry metadata edges
    (name, date, biography, tag) to shared or unique value nodes.
    """
    rng = random.Random(seed)
    tags = [f"tag/{i}" for i in range(60)]
    dates = [f"date/{1990 + i}" for i in range(25)]

    def triples():
        track_id = 0
        record_id = 0
        for a in range(artists):
            artist = f"artist/{a}"
            yield (artist, "foaf:name", f"name/artist/{a}")
            yield (artist, "bio:event", rng.choice(dates))
            for _ in range(rng.randint(1, 3)):
                record = f"record/{record_id}"
                record_id += 1
                yield (artist, "foaf:made", record)
                yield (record, "dc:title", f"title/{record}")
                yield (record, "mo:tag", rng.choice(tags))
                yield (record, "dc:date", rng.choice(dates))
                for _ in range(rng.randint(3, 8)):
                    track = f"track/{track_id}"
                    track_id += 1
                    yield (record, "mo:track", track)
                    yield (track, "dc:title", f"title/{track}")
                    yield (track, "mo:publishedSignal",
                           f"signal/{track_id}")

    graph, alphabet, _ = graph_from_triples(triples())
    return graph, alphabet


def identica_graph(notices: int, users: int = 0,
                   seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Identica microblog stand-in: notice -> creator/date/content.

    Small graph, ~12 predicates, each notice a fixed little star of
    metadata plus a user link (users are shared hubs).
    """
    rng = random.Random(seed)
    if users <= 0:
        users = max(10, notices // 8)
    weekdays = [f"date/{d}" for d in range(120)]

    def triples():
        for i in range(notices):
            notice = f"notice/{i}"
            user = f"user/{rng.randrange(users)}"
            yield (notice, "sioc:has_creator", user)
            yield (notice, "dcterms:created", rng.choice(weekdays))
            yield (notice, "sioc:content", f"content/{i}")
            if rng.random() < 0.3:
                other = f"notice/{rng.randrange(notices)}"
                if other != notice:
                    yield (notice, "sioc:reply_of", other)
            if rng.random() < 0.2:
                yield (user, "foaf:name", f"name/user/{user}")

    graph, alphabet, _ = graph_from_triples(triples())
    return graph, alphabet


def star_burst_graph(hubs: int, spokes_per_hub: int,
                     predicates: int = 1,
                     seed: int = 0) -> Tuple[Hypergraph, Alphabet]:
    """Pure star pattern (the extreme the paper's types graphs approach).

    ``hubs`` centers, each with ``spokes_per_hub`` private leaves.
    Useful for ablations: gRePair should reach near-constant size per
    hub while k2-trees pay per edge.
    """
    rng = random.Random(seed)

    def triples():
        leaf = 0
        for h in range(hubs):
            for _ in range(spokes_per_hub):
                predicate = f"p/{rng.randrange(predicates)}"
                yield (f"leaf/{leaf}", predicate, f"hub/{h}")
                leaf += 1

    graph, alphabet, _ = graph_from_triples(triples())
    return graph, alphabet


__all__: List[str] = [
    "identica_graph",
    "jamendo_graph",
    "properties_graph",
    "star_burst_graph",
    "types_graph",
]
