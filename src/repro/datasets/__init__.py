"""Dataset substrate: generators and loaders for the evaluation graphs.

The paper evaluates on three graph families (section IV-A): network
graphs from SNAP, RDF graphs from DBpedia/Identica/Jamendo, and
version graphs built from DBLP and game-state datasets.  None of those
can be fetched in this offline environment, so this subpackage
provides seeded generators that reproduce each family's *structural
signature* — the property gRePair's behaviour depends on (see
DESIGN.md section 3 for the substitution rationale).

:mod:`registry` exposes the named stand-ins used by the benchmark
suite, one per dataset row of the paper's Tables I-III.
"""

from repro.datasets.io import (
    graph_from_pairs,
    graph_from_triples,
    read_edge_list,
    write_edge_list,
)
from repro.datasets.registry import DATASETS, Dataset, load_dataset
from repro.datasets.rdf import jamendo_graph, properties_graph, types_graph
from repro.datasets.synthetic import (
    coauthorship_graph,
    communication_graph,
    copy_model_graph,
    random_graph,
)
from repro.datasets.versions import (
    coauthorship_snapshots,
    disjoint_union,
    fig13_base_graph,
    game_state_versions,
    identical_copies,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "coauthorship_graph",
    "coauthorship_snapshots",
    "communication_graph",
    "copy_model_graph",
    "disjoint_union",
    "fig13_base_graph",
    "game_state_versions",
    "graph_from_pairs",
    "graph_from_triples",
    "identical_copies",
    "jamendo_graph",
    "load_dataset",
    "properties_graph",
    "random_graph",
    "read_edge_list",
    "types_graph",
    "write_edge_list",
]
