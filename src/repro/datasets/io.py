"""Graph construction from edge pairs / RDF triples, and edge-list I/O.

The paper's pipeline maps RDF triples ``(s, p, o)`` to integer node
pairs with an edge labeled ``p`` via a dictionary (section IV-C2); the
dictionary itself is out of scope for all size comparisons.  These
helpers perform exactly that mapping for arbitrary hashable subjects /
objects and string predicates.

Hypergraph restrictions are enforced on ingestion: self-loops are
dropped (attachments must be repetition-free) and duplicate
(label, source, target) triples are collapsed — both match the
treatment of the SNAP edge lists in the paper ("we considered all of
them to be lists of directed edges").
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import DatasetError


def graph_from_pairs(
    pairs: Iterable[Tuple[Hashable, Hashable]],
    label_name: str = "edge",
) -> Tuple[Hypergraph, Alphabet, Dict[Hashable, int]]:
    """Build an unlabeled (single-label) digraph from (u, v) pairs.

    Returns the graph, its alphabet and the value -> node-ID
    dictionary.  Self-loops and duplicates are dropped.
    """
    triples = ((u, label_name, v) for u, v in pairs)
    return graph_from_triples(triples)


def graph_from_triples(
    triples: Iterable[Tuple[Hashable, str, Hashable]],
) -> Tuple[Hypergraph, Alphabet, Dict[Hashable, int]]:
    """Build a labeled digraph from RDF-style (s, p, o) triples.

    Subjects and objects share one node dictionary (RDF resources can
    appear in both roles).  Returns (graph, alphabet, dictionary).
    """
    alphabet = Alphabet()
    graph = Hypergraph()
    dictionary: Dict[Hashable, int] = {}
    seen = set()

    def node_of(value: Hashable) -> int:
        existing = dictionary.get(value)
        if existing is None:
            existing = graph.add_node()
            dictionary[value] = existing
        return existing

    for subject, predicate, obj in triples:
        if subject == obj:
            continue  # self-loop: outside the hypergraph model
        label = alphabet.ensure_terminal(predicate, rank=2)
        source = node_of(subject)
        target = node_of(obj)
        key = (label, source, target)
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(label, (source, target))
    return graph, alphabet, dictionary


def write_edge_list(graph: Hypergraph, alphabet: Alphabet,
                    path: Union[str, Path]) -> None:
    """Write ``source target label-name`` lines (rank-2 edges only)."""
    lines: List[str] = []
    for _, edge in graph.edges():
        if len(edge.att) != 2:
            raise DatasetError("edge lists support rank-2 edges only")
        name = alphabet.name(edge.label) or str(edge.label)
        lines.append(f"{edge.att[0]}\t{edge.att[1]}\t{name}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(
    path: Union[str, Path],
) -> Tuple[Hypergraph, Alphabet, Dict[Hashable, int]]:
    """Read a file of ``source target [label]`` lines.

    Lines starting with ``#`` are comments; the label column defaults
    to ``edge``.  Node tokens are kept as strings in the returned
    dictionary.
    """
    def parse():
        for raw in Path(path).read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"malformed edge-list line: {raw!r}")
            label = parts[2] if len(parts) > 2 else "edge"
            yield parts[0], label, parts[1]

    return graph_from_triples(parse())
