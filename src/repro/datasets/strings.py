"""Strings and trees as graphs (paper section VI).

The paper's conclusion observes that "gRePair over string- and
tree-graphs obtains similar compression ratios as the original
specialized versions for strings and trees".  These converters embed
both shapes into the hypergraph model:

* a string ``w = a1 a2 ... an`` becomes the path graph with ``n + 1``
  nodes and one ``ai``-labeled edge per position;
* an ordered tree becomes a graph with one child-edge per tree edge,
  labeled by the child's symbol (the standard first-child encoding is
  unnecessary because hyperedges are ordered).

``bench_string_graphs.py`` uses them to compare gRePair against
classic string RePair on the same data.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import DatasetError

#: A tree is a (symbol, children) pair; leaves have no children.
Tree = Tuple[str, Sequence["Tree"]]


def string_to_graph(text: Union[str, Sequence[str]],
                    ) -> Tuple[Hypergraph, Alphabet]:
    """Embed a string as a labeled path graph.

    Accepts a plain string (one symbol per character) or a sequence of
    symbol names.
    """
    if not text:
        raise DatasetError("cannot embed the empty string")
    alphabet = Alphabet()
    graph = Hypergraph()
    previous = graph.add_node()
    for symbol in text:
        label = alphabet.ensure_terminal(str(symbol), rank=2)
        nxt = graph.add_node()
        graph.add_edge(label, (previous, nxt))
        previous = nxt
    return graph, alphabet


def graph_to_string(graph: Hypergraph,
                    alphabet: Alphabet) -> List[str]:
    """Inverse of :func:`string_to_graph` (for round-trip tests).

    Expects a single directed path; raises otherwise.
    """
    indegree: Dict[int, int] = {node: 0 for node in graph.nodes()}
    successor: Dict[int, Tuple[int, int]] = {}
    for _, edge in graph.edges():
        if len(edge.att) != 2:
            raise DatasetError("not a string graph (hyperedge found)")
        source, target = edge.att
        if source in successor:
            raise DatasetError("not a path (branching source)")
        successor[source] = (target, edge.label)
        indegree[target] += 1
    starts = [node for node in graph.nodes()
              if indegree[node] == 0 and node in successor]
    if len(starts) != 1:
        raise DatasetError("not a single path")
    symbols: List[str] = []
    node = starts[0]
    while node in successor:
        node, label = successor[node]
        symbols.append(alphabet.name(label) or str(label))
    if len(symbols) != graph.num_edges:
        raise DatasetError("disconnected or cyclic string graph")
    return symbols


def tree_to_graph(tree: Tree) -> Tuple[Hypergraph, Alphabet]:
    """Embed an ordered labeled tree as a graph.

    Each tree node becomes a graph node; each parent-child relation
    becomes a directed edge labeled with the child's symbol.  (The
    root's symbol labels a rank-1 marker edge so no information is
    lost.)
    """
    alphabet = Alphabet()
    graph = Hypergraph()

    root_symbol, _ = tree
    root = graph.add_node()
    marker = alphabet.ensure_terminal(f"root:{root_symbol}", rank=1)
    graph.add_edge(marker, (root,))

    stack: List[Tuple[int, Tree]] = [(root, tree)]
    while stack:
        parent, (_, children) = stack.pop()
        for child in children:
            symbol, _ = child
            label = alphabet.ensure_terminal(symbol, rank=2)
            node = graph.add_node()
            graph.add_edge(label, (parent, node))
            stack.append((node, child))
    return graph, alphabet


def balanced_binary_tree(depth: int, symbols: Sequence[str] = ("a", "b"),
                         ) -> Tree:
    """A full binary tree of the given depth with alternating symbols.

    Highly repetitive — the tree analogue of ``(ab)^n`` — so both
    TreeRePair and gRePair should compress it to logarithmic size.
    """
    if depth < 0:
        raise DatasetError(f"depth must be >= 0, got {depth}")

    def build(level: int) -> Tree:
        symbol = symbols[level % len(symbols)]
        if level == depth:
            return (symbol, ())
        return (symbol, (build(level + 1), build(level + 1)))

    return build(0)


def repeated_string(unit: str, count: int) -> str:
    """``unit`` repeated ``count`` times (RePair's best case)."""
    if count < 1:
        raise DatasetError(f"count must be >= 1, got {count}")
    return unit * count
