"""Benchmark smoke corpora shared by the bench suite and CI tooling.

One small, seeded instance per dataset family — large enough for the
engines' behavior to be representative, small enough that the whole
sweep runs in seconds.  ``benchmarks/bench_incremental_passes.py``
benchmarks them, ``scripts/check_bench_regression.py`` gates changes
against ``benchmarks/BENCH_baseline.json`` computed over them, and the
differential test suite asserts the incremental engine's zero-re-count
guarantee on every one of them.

Keep the definitions stable: the committed baseline encodes their
expected pass counts and compression ratios.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.datasets.rdf import (
    identica_graph,
    properties_graph,
    star_burst_graph,
    types_graph,
)
from repro.datasets.synthetic import (
    coauthorship_graph,
    communication_graph,
    copy_model_graph,
    random_graph,
)
from repro.datasets.versions import (
    dblp_version_graph,
    fig13_base_graph,
    identical_copies,
)

Builder = Callable[[], Tuple[Hypergraph, Alphabet]]

#: name -> builder, insertion order is the canonical report order.
SMOKE_CORPORA: Dict[str, Builder] = {
    "er-random": lambda: random_graph(200, 600, seed=41),
    "coauthorship": lambda: coauthorship_graph(150, seed=42),
    "communication": lambda: communication_graph(250, 750, seed=43),
    "copy-model": lambda: copy_model_graph(200, seed=44),
    "rdf-types": lambda: types_graph(500, seed=45),
    "rdf-properties": lambda: properties_graph(120, seed=46),
    "rdf-starburst": lambda: star_burst_graph(6, 50, seed=47),
    "rdf-identica": lambda: identica_graph(120, seed=48),
    "version-copies": lambda: identical_copies(fig13_base_graph(), 128),
    "version-dblp": lambda: dblp_version_graph(4, 12, seed=49),
}


def build(name: str) -> Tuple[Hypergraph, Alphabet]:
    """Materialize one smoke corpus by name."""
    return SMOKE_CORPORA[name]()
