"""Report collector: accumulates table rows across benchmark tests.

pytest captures stdout per test, so the bench modules do not print
directly; they append formatted rows to the module-level
:class:`Report` singleton, and ``benchmarks/conftest.py`` dumps every
section in ``pytest_terminal_summary`` (which is never captured) and
into ``benchmarks/results/report.txt``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List


class Report:
    """Process-wide ordered collection of report sections."""

    _sections: Dict[str, List[str]] = {}

    @classmethod
    def add(cls, section: str, line: str) -> None:
        """Append one formatted line under ``section``."""
        cls._sections.setdefault(section, []).append(line)

    @classmethod
    def sections(cls) -> Dict[str, List[str]]:
        """All sections in insertion order."""
        return dict(cls._sections)

    @classmethod
    def clear(cls) -> None:
        """Reset (used by unit tests of the harness)."""
        cls._sections.clear()

    @classmethod
    def render(cls) -> str:
        """The full report as one string."""
        blocks = []
        for section, lines in cls._sections.items():
            underline = "=" * len(section)
            blocks.append(f"\n{section}\n{underline}")
            blocks.extend(lines)
        return "\n".join(blocks)

    @classmethod
    def dump(cls, path: Path) -> None:
        """Write the rendered report to ``path``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(cls.render() + "\n", encoding="utf-8")
