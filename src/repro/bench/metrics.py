"""Size metrics shared by the benchmark suite.

Sizes follow the paper's methodology (section IV):

* compression is reported in **bpe** (bits per edge) against the
  original edge count — ``8 * bytes / |E|``;
* gRePair sizes are the *serialized container* bytes with label names
  excluded (the dictionary is out of scope for all contenders, as in
  the paper's RDF methodology);
* baseline sizes are their own serialized formats.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines import HNCompressor, K2Compressor, \
    ListMergeCompressor
from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.core.pipeline import CompressionResult, GRePairSettings, \
    compress
from repro.core.repair import CompressionStats
from repro.encoding import encode_grammar


def bits_per_edge(num_bytes: int, num_edges: int) -> float:
    """bpe as used throughout the paper's evaluation."""
    if num_edges <= 0:
        return 0.0
    return 8.0 * num_bytes / num_edges


def compression_stats(
    graph: Hypergraph,
    alphabet: Alphabet,
    settings: Optional[GRePairSettings] = None,
) -> Tuple[CompressionStats, CompressionResult]:
    """Run gRePair and return the engine's instrumentation counters.

    The counters (counting passes, re-count passes, settle rounds,
    replacements, queue operations — see
    :class:`repro.core.repair.CompressionStats`) back the engine
    regression checks: the incremental engine must report zero
    ``recount_passes`` on every corpus, and the pass/queue-op budget is
    tracked against ``benchmarks/BENCH_baseline.json``.
    """
    result = compress(graph, alphabet, settings, validate=False)
    return result.stats_obj, result


def grepair_bytes(
    graph: Hypergraph,
    alphabet: Alphabet,
    settings: Optional[GRePairSettings] = None,
) -> Tuple[int, CompressionResult]:
    """Compress with gRePair; return (serialized bytes, result)."""
    result = compress(graph, alphabet, settings, validate=False)
    blob = encode_grammar(result.grammar, include_names=False)
    return blob.total_bytes, result


def baseline_sizes(graph: Hypergraph, alphabet: Alphabet,
                   include_lm_hn: Optional[bool] = None) -> Dict[str,
                                                                 int]:
    """Byte sizes of the baselines applicable to ``graph``.

    LM and HN support unlabeled graphs only; by default they run
    exactly when the graph has a single edge label, matching the
    paper's comparison matrix ("LM and HN have not been extended to
    RDF graphs").
    """
    sizes = {"k2": len(K2Compressor().compress(graph))}
    if include_lm_hn is None:
        include_lm_hn = len(set(
            edge.label for _, edge in graph.edges()
        )) <= 1
    if include_lm_hn:
        sizes["lm"] = len(ListMergeCompressor().compress(graph))
        sizes["hn"] = len(HNCompressor().compress(graph))
    return sizes
