"""Benchmark support: size metrics and the report collector.

The pytest-benchmark suite in ``benchmarks/`` regenerates every table
and figure of the paper's evaluation; this subpackage holds the size
accounting (bpe as defined in section IV) and small helpers the bench
modules share.
"""

from repro.bench.corpora import SMOKE_CORPORA
from repro.bench.metrics import (
    CompressionStats,
    baseline_sizes,
    bits_per_edge,
    compression_stats,
    grepair_bytes,
)
from repro.bench.report import Report

__all__ = [
    "CompressionStats",
    "Report",
    "SMOKE_CORPORA",
    "baseline_sizes",
    "bits_per_edge",
    "compression_stats",
    "grepair_bytes",
]
