"""Benchmark support: size metrics and the report collector.

The pytest-benchmark suite in ``benchmarks/`` regenerates every table
and figure of the paper's evaluation; this subpackage holds the size
accounting (bpe as defined in section IV) and small helpers the bench
modules share.
"""

from repro.bench.metrics import (
    baseline_sizes,
    bits_per_edge,
    grepair_bytes,
)
from repro.bench.report import Report

__all__ = [
    "Report",
    "baseline_sizes",
    "bits_per_edge",
    "grepair_bytes",
]
