"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HypergraphError(ReproError):
    """Raised when a hypergraph invariant is violated.

    Examples: attaching an edge to an unknown node, duplicate nodes in an
    attachment sequence, removing a node that still has incident edges.
    """


class GrammarError(ReproError):
    """Raised when an SL-HR grammar invariant is violated.

    Examples: two rules for one nonterminal, cyclic nonterminal references,
    rank mismatch between a nonterminal and its right-hand side.
    """


class EncodingError(ReproError):
    """Raised on malformed serialized data or encoder misuse."""


class QueryError(ReproError):
    """Raised on invalid query arguments (e.g. node ID out of range)."""


class ShardUnavailable(QueryError):
    """Raised when every replica of one logical shard failed a query.

    Deliberately a :class:`QueryError`: batch execution already turns
    those into *per-request* errors, so queries owned by an
    unreachable shard error individually while the rest of the batch
    keeps answering — a dead shard never aborts a batch or hangs a
    client.
    """


class ManifestError(ReproError):
    """Raised on an invalid or inconsistent cluster manifest."""


class DatasetError(ReproError):
    """Raised by dataset generators and loaders on invalid parameters."""
